"""Benchmark harness regenerating every table and figure of the paper.

The ``benchmarks/`` directory at the repository root contains one
pytest-benchmark module per table/figure; this subpackage holds the shared
machinery they use: method sweeps, query workload generation, row
formatting and JSON result persistence (consumed by EXPERIMENTS.md).
"""

from repro.bench.harness import (
    BENCH_METHODS,
    compress_all,
    format_table,
    random_edge_queries,
    random_neighbor_queries,
    save_results,
)

__all__ = [
    "BENCH_METHODS",
    "compress_all",
    "format_table",
    "random_edge_queries",
    "random_neighbor_queries",
    "save_results",
]
