"""Render a human-readable summary from the benchmark JSON results.

`pytest benchmarks/ --benchmark-only` drops one JSON file per table/figure
under ``benchmarks/out/``; this module folds them into the summary the CLI
``report`` command prints and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

from repro.bench.harness import BENCH_METHODS, format_table, results_dir


def load_results(directory: Optional[pathlib.Path] = None) -> Dict[str, object]:
    """All available result payloads, keyed by benchmark name."""
    directory = directory or results_dir()
    out: Dict[str, object] = {}
    for path in sorted(directory.glob("*.json")):
        out[path.stem] = json.loads(path.read_text())
    return out


def render_table4(results: Dict[str, object]) -> Optional[str]:
    """The compression-ratio matrix, if the bench has run."""
    data = results.get("table4_compression_ratio")
    if not data:
        return None
    rows: List[List[str]] = []
    for dataset in sorted(data):
        entry = data[dataset]
        ratios = entry["ratios"]
        rows.append(
            [dataset]
            + [f"{ratios[m]:.2f}" for m in BENCH_METHODS]
            + [f"{entry['improvement_over_second_best_pct']:+.1f}%"]
        )
    return format_table(
        ["dataset"] + list(BENCH_METHODS) + ["impr."],
        rows,
        title="Table IV -- bits/contact",
    )


def render_access_times(results: Dict[str, object]) -> Optional[str]:
    """Neighbor-query latency matrix, if the bench has run."""
    data = results.get("table5_access_time")
    if not data:
        return None
    methods = sorted(next(iter(data.values())))
    rows = [
        [dataset] + [f"{data[dataset][m]['neighbors_us']:.1f}" for m in methods]
        for dataset in sorted(data)
    ]
    return format_table(
        ["dataset"] + methods,
        rows,
        title="Table V -- neighbor queries (microseconds)",
    )


def render_best_zeta(results: Dict[str, object]) -> Optional[str]:
    """Figure 7 optima, if the bench has run."""
    data = results.get("fig7_zeta_codes")
    if not data:
        return None
    rows = [[key, str(entry["best_k"])] for key, entry in sorted(data.items())]
    return format_table(
        ["graph@granularity", "best zeta k"],
        rows,
        title="Figure 7 -- optimal zeta parameters",
    )


def render_summary(directory: Optional[pathlib.Path] = None) -> str:
    """Everything available, concatenated; explains how to produce the rest."""
    results = load_results(directory)
    if not results:
        return (
            "no benchmark results found; run\n"
            "  pytest benchmarks/ --benchmark-only\n"
            "to produce them"
        )
    sections = [
        f"benchmark results: {len(results)} artefacts "
        f"({', '.join(sorted(results))})"
    ]
    for renderer in (render_table4, render_access_times, render_best_zeta):
        block = renderer(results)
        if block:
            sections.append(block)
    return "\n\n".join(sections)
