"""Export benchmark figure series as CSV for external plotting.

The figure benches persist their series as JSON under ``benchmarks/out/``;
this module flattens them into tidy CSV files (one observation per row)
that gnuplot / pandas / spreadsheets ingest directly, so the paper's plots
can be redrawn from a reproduction run without touching Python.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Dict, List, Optional, Tuple

from repro.bench.report import load_results
from repro.storage.atomic import atomic_write_text


def _rows_fig2(data: Dict) -> Tuple[List[str], List[List]]:
    header = ["strategy", "gap_below", "cumulative_fraction"]
    rows = []
    for strategy, points in data.items():
        for threshold, fraction in sorted(
            (int(k), v) for k, v in points.items()
        ):
            rows.append([strategy, threshold, fraction])
    return header, rows


def _rows_fig6(data: Dict) -> Tuple[List[str], List[List]]:
    header = ["dataset", "aggregation", "bits_per_contact"]
    rows = []
    for dataset, series in data.items():
        for level, bits in series.items():
            rows.append([dataset, level, bits])
    return header, rows


def _rows_fig7(data: Dict) -> Tuple[List[str], List[List]]:
    header = ["dataset_granularity", "zeta_k", "timestamp_bits_per_contact"]
    rows = []
    for key, entry in data.items():
        for k, bits in sorted((int(k), v) for k, v in entry["sizes"].items()):
            rows.append([key, k, bits])
    return header, rows


def _rows_fig3(data: Dict) -> Tuple[List[str], List[List]]:
    header = ["dataset", "gap_bin_center", "density"]
    rows = []
    for dataset, entry in data.items():
        for center, density in entry.get("distribution", []):
            rows.append([dataset, center, density])
    return header, rows


_EXPORTERS = {
    "fig2_gap_strategies": _rows_fig2,
    "fig3_gap_distributions": _rows_fig3,
    "fig6_aggregation_levels": _rows_fig6,
    "fig7_zeta_codes": _rows_fig7,
}


def export_figures(
    out_dir: pathlib.Path,
    results_dir: Optional[pathlib.Path] = None,
) -> List[pathlib.Path]:
    """Write one CSV per available figure series; returns the paths."""
    results = load_results(results_dir)
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    for name, exporter in _EXPORTERS.items():
        data = results.get(name)
        if not data:
            continue
        header, rows = exporter(data)
        path = out_dir / f"{name}.csv"
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(header)
        writer.writerows(rows)
        atomic_write_text(path, buffer.getvalue())
        written.append(path)
    return written
