"""LaTeX export of the headline tables.

A reproduction repository's results end up back in papers; this module
renders the Table IV matrix and the Table V access-time matrix from
``benchmarks/out/`` as LaTeX tabulars, with the winner per row bolded the
way the original typesets it.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional

from repro.bench.harness import BENCH_METHODS
from repro.bench.report import load_results
from repro.storage.atomic import atomic_write_text

_COMPETITORS = [m for m in BENCH_METHODS if m not in ("Raw", "Gzip")]


def _escape(text: str) -> str:
    return text.replace("_", r"\_").replace("%", r"\%").replace("#", r"\#")


def latex_table4(results: Dict[str, object]) -> Optional[str]:
    """Table IV as a LaTeX tabular (bits/contact, best method bolded)."""
    data = results.get("table4_compression_ratio")
    if not data:
        return None
    lines: List[str] = []
    columns = "l" + "r" * len(BENCH_METHODS) + "r"
    lines.append(r"\begin{tabular}{" + columns + "}")
    lines.append(r"\toprule")
    header = ["Graph"] + [_escape(m) for m in BENCH_METHODS] + ["Impr."]
    lines.append(" & ".join(header) + r" \\")
    lines.append(r"\midrule")
    for dataset in sorted(data):
        entry = data[dataset]
        ratios = entry["ratios"]
        best = min(ratios[m] for m in _COMPETITORS)
        cells = [_escape(dataset)]
        for method in BENCH_METHODS:
            value = f"{ratios[method]:.2f}"
            if method in _COMPETITORS and ratios[method] == best:
                value = r"\textbf{" + value + "}"
            cells.append(value)
        cells.append(f"{entry['improvement_over_second_best_pct']:+.1f}\\%")
        lines.append(" & ".join(cells) + r" \\")
    lines.append(r"\bottomrule")
    lines.append(r"\end{tabular}")
    return "\n".join(lines)


def latex_access_times(results: Dict[str, object]) -> Optional[str]:
    """Table V (neighbor queries) as a LaTeX tabular in microseconds."""
    data = results.get("table5_access_time")
    if not data:
        return None
    methods = sorted(next(iter(data.values())))
    lines: List[str] = []
    lines.append(r"\begin{tabular}{l" + "r" * len(methods) + "}")
    lines.append(r"\toprule")
    lines.append(" & ".join(["Graph"] + [_escape(m) for m in methods]) + r" \\")
    lines.append(r"\midrule")
    for dataset in sorted(data):
        row = data[dataset]
        fastest = min(row[m]["neighbors_us"] for m in methods)
        cells = [_escape(dataset)]
        for method in methods:
            value = f"{row[method]['neighbors_us']:.1f}"
            if row[method]["neighbors_us"] == fastest:
                value = r"\textbf{" + value + "}"
            cells.append(value)
        lines.append(" & ".join(cells) + r" \\")
    lines.append(r"\bottomrule")
    lines.append(r"\end{tabular}")
    return "\n".join(lines)


def export_latex(
    out_dir: pathlib.Path,
    results_dir: Optional[pathlib.Path] = None,
) -> List[pathlib.Path]:
    """Write the available LaTeX tables; returns the paths written."""
    results = load_results(results_dir)
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: List[pathlib.Path] = []
    for name, renderer in (
        ("table4_compression_ratio.tex", latex_table4),
        ("table5_access_time.tex", latex_access_times),
    ):
        block = renderer(results)
        if block:
            path = out_dir / name
            atomic_write_text(path, block + "\n")
            written.append(path)
    return written
