"""Shared benchmark machinery: sweeps, workloads, formatting, persistence."""

from __future__ import annotations

import json
import os
import pathlib
import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.baselines import get_compressor
from repro.baselines.interface import CompressedTemporalGraph
from repro.graph.model import TemporalGraph

#: Method sweep order of Tables IV and V.
BENCH_METHODS = (
    "Raw",
    "Gzip",
    "EveLog",
    "EdgeLog",
    "CET",
    "CAS",
    "ckd-trees",
    "T-ABT",
    "ChronoGraph",
)

#: Environment knob scaling every dataset in the benches (1.0 = defaults).
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


def bench_scale(default: float = 0.3) -> float:
    """Dataset scale used by the benchmark modules."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return default
    scale = float(raw)
    if scale <= 0:
        raise ValueError(f"{SCALE_ENV_VAR} must be positive, got {raw}")
    return scale


def compress_all(
    graph: TemporalGraph, methods: Sequence[str] = BENCH_METHODS
) -> Dict[str, Tuple[CompressedTemporalGraph, float]]:
    """Compress ``graph`` with every method; returns name -> (result, seconds)."""
    out: Dict[str, Tuple[CompressedTemporalGraph, float]] = {}
    for name in methods:
        compressor = get_compressor(name)
        start = time.perf_counter()
        compressed = compressor.compress(graph)
        out[name] = (compressed, time.perf_counter() - start)
    return out


def random_neighbor_queries(
    graph: TemporalGraph, count: int, seed: int = 0
) -> List[Tuple[int, int, int]]:
    """(u, t_start, t_end) tuples mimicking the paper's random accesses."""
    rng = random.Random(seed)
    span = max(1, graph.lifetime)
    t0 = graph.t_min
    out: List[Tuple[int, int, int]] = []
    for _ in range(count):
        t1 = t0 + rng.randrange(span)
        out.append(
            (
                rng.randrange(max(1, graph.num_nodes)),
                t1,
                t1 + rng.randrange(span // 10 + 1),
            )
        )
    return out


def random_edge_queries(
    graph: TemporalGraph, count: int, seed: int = 0
) -> List[Tuple[int, int, int, int]]:
    """(u, v, t_start, t_end) tuples; half target existing edges."""
    rng = random.Random(seed)
    span = max(1, graph.lifetime)
    t0 = graph.t_min
    contacts = graph.contacts
    out: List[Tuple[int, int, int, int]] = []
    for i in range(count):
        if contacts and i % 2 == 0:
            c = contacts[rng.randrange(len(contacts))]
            u, v = c.u, c.v
        else:
            u = rng.randrange(max(1, graph.num_nodes))
            v = rng.randrange(max(1, graph.num_nodes))
        t1 = t0 + rng.randrange(span)
        out.append((u, v, t1, t1 + rng.randrange(span // 10 + 1)))
    return out


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width text table matching the paper's row/column layout."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def results_dir() -> pathlib.Path:
    """Where benchmark modules drop machine-readable results."""
    path = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "out"
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_results(name: str, payload: object) -> pathlib.Path:
    """Persist a benchmark's results as JSON under ``benchmarks/out/``."""
    from repro.storage.atomic import atomic_write_text

    path = results_dir() / f"{name}.json"
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
