"""CG007: every unbounded query loop must reach a checkpoint poll.

The deadline machinery of :mod:`repro.runtime.context` only works if the
query plane actually polls it: a loop that decodes, walks or scans without
ever reaching ``QueryContext.checkpoint`` (directly, through
:func:`repro.runtime.context.checkpoint_ambient`, or through a bulk reader
that polls the :data:`repro.bits.kernels.CheckpointHook`) can outrun any
budget the caller set.  This rule closes that gap whole-program:

1. *Entry points* are the methods of ``CompressedChronoGraph`` /
   ``SegmentedChronoGraph`` that enter a ``query_scope`` -- the documented
   shape of every governed query entry point.
2. A *polling* function either calls ``checkpoint`` /
   ``checkpoint_ambient``, or touches the kernels checkpoint hook
   (``_checkpoint_hook`` / ``get_checkpoint_hook``) the bulk readers
   chunk against.  Polling propagates up the cross-module call graph
   (:mod:`repro.analysis.callgraph`): calling a poller is itself a poll.
3. Every function reachable from an entry point is walked for loops.
   All ``while`` loops count; ``for`` loops count when their body does
   real per-iteration work (any call outside a small trivial-builtin
   whitelist).  A counted loop with no poll anywhere in its body -- not
   even through a resolved callee -- is a finding.

Call resolution over-approximates (see the call-graph module), so a loop
is credited with a poll if *any* candidate callee polls; the rule errs
toward accepting, never toward noise from unrelated same-named helpers.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.framework import Finding, Project, Rule, register

__all__ = ["CheckpointCoverageRule"]

#: Classes whose query_scope-entering methods are the governed entry points.
_ENTRY_CLASSES = ("CompressedChronoGraph", "SegmentedChronoGraph")

#: Direct poll call names (QueryContext.checkpoint and the ambient helper).
_POLL_CALLS = {"checkpoint", "checkpoint_ambient"}

#: Touching the decode checkpoint hook is how the bulk readers poll.
_HOOK_NAMES = {"_checkpoint_hook", "get_checkpoint_hook"}

#: Per-iteration calls that do not constitute "real work": a for loop whose
#: body only shuffles already-decoded values is bounded by its iterable and
#: needs no poll of its own.
_TRIVIAL_CALLS = {
    "abs", "acquire", "add", "append", "bisect_left", "bisect_right",
    "bool", "chr", "dict", "discard", "enumerate", "extend", "format",
    "frozenset", "get", "hasattr", "insert", "int", "isinstance", "items",
    "join", "keys", "len", "list", "max", "min", "next", "ord", "pop",
    "popleft", "range", "release", "repr", "reversed", "set", "setdefault",
    "sorted", "startswith", "str", "sum", "tuple", "update", "values",
    "zip",
}


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _touches_hook(node: ast.AST) -> bool:
    """Whether ``node``'s subtree reads the kernels checkpoint hook."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _HOOK_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _HOOK_NAMES:
            return True
    return False


@register
class CheckpointCoverageRule(Rule):
    """CG007: unbounded loops on query paths must poll a checkpoint."""

    id = "CG007"
    name = "checkpoint-coverage"
    summary = (
        "Every unbounded loop reachable from a CompressedChronoGraph / "
        "SegmentedChronoGraph query entry point must reach a "
        "QueryContext.checkpoint poll, checkpoint_ambient, or a bulk "
        "reader that polls the kernels checkpoint hook."
    )

    def finish(self, project: Project) -> List[Finding]:
        """Find entry points, fixpoint poll facts, then audit every loop."""
        graph = project.callgraph
        entries = self._entry_points(graph)
        if not entries:
            return []
        polls = self._poll_fixpoint(graph)
        origin = self._reachable_with_origin(graph, entries)
        findings: List[Finding] = []
        for qualname in sorted(origin):
            info = graph.functions[qualname]
            if not info.module.startswith("repro."):
                continue  # only production modules owe polls
            if self._direct_poll(info.node):
                # The function manages its own checkpoint discipline
                # (e.g. the hook-chunked bulk readers, whose `*_plain`
                # kernels it strides); its loops are its business.
                continue
            for loop in self._significant_loops(info.node):
                if self._loop_polls(loop, info, graph, polls):
                    continue
                findings.append(
                    self.finding(
                        info.source,
                        loop,
                        f"unbounded loop in `{qualname}` (reachable from "
                        f"query entry point `{origin[qualname]}`) never "
                        "polls a QueryContext checkpoint; call "
                        "ctx.checkpoint()/checkpoint_ambient() or route "
                        "the work through a bulk reader",
                    )
                )
        return findings

    # -- entry points and reachability ------------------------------------

    def _entry_points(self, graph) -> List:
        """Methods of the graph classes whose body enters a query_scope."""
        out = []
        for cls in _ENTRY_CLASSES:
            for info in graph.methods_of(cls):
                for node in ast.walk(info.node):
                    if isinstance(node, ast.withitem) and isinstance(
                        node.context_expr, ast.Call
                    ):
                        if _call_name(node.context_expr) == "query_scope":
                            out.append(info)
                            break
        return out

    def _reachable_with_origin(
        self, graph, entries: List
    ) -> Dict[str, str]:
        """qualname -> one entry point it is reachable from (for messages)."""
        origin: Dict[str, str] = {}
        for entry in sorted(entries, key=lambda i: i.qualname):
            # Exact edges only: the bare-name fallback would sweep the
            # encode plane and half the project into "reachable from a
            # query" through names like `extend` or `get`.  The walk also
            # stops at functions that poll directly -- their callees (the
            # ``*_plain`` kernels, table fills) run inside the stride the
            # poller enforces, so their loops are governed by design.
            frontier = [entry]
            while frontier:
                info = frontier.pop()
                if info.qualname in origin:
                    continue
                origin[info.qualname] = entry.qualname
                if self._direct_poll(info.node):
                    continue
                frontier.extend(graph.callees(info, fallback=False))
        return origin

    # -- poll facts --------------------------------------------------------

    def _direct_poll(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _call_name(sub) in _POLL_CALLS:
                return True
        return _touches_hook(node)

    def _poll_fixpoint(self, graph) -> Set[str]:
        """Qualnames of functions that poll, directly or transitively."""
        polls: Set[str] = {
            qualname
            for qualname, info in graph.functions.items()
            if self._direct_poll(info.node)
        }
        adjacency: Dict[str, Tuple[str, ...]] = {
            qualname: tuple(c.qualname for c in graph.callees(info))
            for qualname, info in graph.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname, callees in adjacency.items():
                if qualname in polls:
                    continue
                if any(c in polls for c in callees):
                    polls.add(qualname)
                    changed = True
        return polls

    # -- loop audit --------------------------------------------------------

    def _significant_loops(self, func: ast.AST) -> List[ast.AST]:
        """The loops in ``func`` that owe a poll (see module docstring)."""
        out: List[ast.AST] = []
        for node in ast.walk(func):
            if isinstance(node, ast.While):
                out.append(node)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._does_real_work(node):
                    out.append(node)
        return out

    def _does_real_work(self, loop: ast.AST) -> bool:
        for stmt in loop.body + getattr(loop, "orelse", []):
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                name = _call_name(sub)
                if name and name not in _TRIVIAL_CALLS:
                    return True
        return False

    def _loop_polls(
        self, loop: ast.AST, info, graph, polls: Set[str]
    ) -> bool:
        """Whether the loop body reaches a poll (directly or via a callee).

        The loop's iterable expression earns credit too: a ``for`` over a
        polling generator checkpoints on every ``next``.
        """
        parts: List[ast.AST] = list(loop.body) + list(
            getattr(loop, "orelse", [])
        )
        it = getattr(loop, "iter", None)
        if it is not None:
            parts.append(it)
        for stmt in parts:
            if self._direct_poll(stmt):
                return True
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                for callee in graph.resolve(sub, info):
                    if callee.qualname in polls:
                        return True
        return False
