"""CG006: no full-buffer copies on the decode path.

The zero-copy contract of the bits/core decode plane (see
``repro.bits.bitio`` "Buffer contract") is that container bytes are
sliced as memoryviews all the way from the mapped (or heap-loaded)
container into the readers -- ``bytes(section)`` on a 100 MB stream
silently re-materialises what mmap loading exists to avoid, and one such
call undoes the memory win for every caller.  This rule flags the three
ways full-buffer copies have crept back in historically:

* ``bytes(x)`` / ``bytearray(x)`` where ``x`` is an expression (not a
  literal size or byte string): copies the whole source buffer;
* ``Path.read_bytes()``: slurps a file the loader should map or walk
  incrementally.

Scope is ``repro/bits`` and ``repro/core`` only -- the decode plane.
``repro/storage`` (which owns durable artifacts and may materialise
them) and ``repro/testing`` (which plants corrupt bytes on purpose) are
deliberately out of scope.  Sanctioned copies -- a UTF-8 name about to be
decoded, pickling a mapped graph across a process boundary, the encoder
finalising a writer -- carry ``# repro: noqa[CG006]`` with the reason in
a comment.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.framework import Finding, Rule, SourceFile, register

__all__ = ["BufferCopyRule"]

#: Path prefixes (under ``src/``) forming the zero-copy decode plane.
_SCOPE_SEGMENTS = (("repro", "bits"), ("repro", "core"))


def _in_scope(source: SourceFile) -> bool:
    parts = source.parts
    for scope in _SCOPE_SEGMENTS:
        for i in range(len(parts) - len(scope)):
            if tuple(parts[i:i + len(scope)]) == scope:
                return True
    return False


#: Variable names that denote a size (``bytearray(length)`` zero-fills a
#: fresh buffer, it does not copy one).  Kept deliberately short: an
#: ambiguous name is flagged and the author decides (noqa or rename).
_SIZE_NAMES = {"length", "size", "count", "n", "nbytes", "num_bytes"}


def _is_copying_arg(arg: ast.expr) -> bool:
    """Whether a ``bytes``/``bytearray`` argument copies an existing buffer.

    Literal sizes (``bytearray(8)``), size-named variables
    (``bytearray(length)``), byte literals (``bytes(b"..")``) and
    generator-style constructions (``bytes(x & 0xFF for ...)``) build
    fresh content; a plain name, attribute, subscript or call result is
    an existing buffer being duplicated.
    """
    if isinstance(arg, ast.Constant):
        return False
    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.List, ast.Tuple)):
        return False
    if isinstance(arg, ast.Name) and arg.id in _SIZE_NAMES:
        return False
    return True


@register
class BufferCopyRule(Rule):
    """CG006: decode-path code must slice views, never copy buffers."""

    id = "CG006"
    name = "buffer-copy"
    summary = (
        "repro/bits and repro/core must not materialise full-buffer "
        "copies: no bytes(buf)/bytearray(buf) of existing buffers and no "
        "Path.read_bytes() -- slice memoryviews (or map the file) "
        "instead; sanctioned copies carry `# repro: noqa[CG006]`."
    )

    def applies(self, source: SourceFile) -> bool:
        """Only the zero-copy decode plane is in scope."""
        return _in_scope(source)

    def check(self, source: SourceFile) -> List[Finding]:
        """Flag buffer-copying constructors and whole-file reads."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("bytes", "bytearray")
                and len(node.args) == 1
                and not node.keywords
                and _is_copying_arg(node.args[0])
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"`{func.id}(...)` duplicates an existing buffer "
                        "on the decode path; slice a memoryview instead "
                        "(or mark a sanctioned copy with "
                        "`# repro: noqa[CG006]`)",
                    )
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "read_bytes"
                and not node.args
                and not node.keywords
            ):
                findings.append(
                    self.finding(
                        source,
                        node,
                        "`.read_bytes()` slurps the whole file onto the "
                        "heap; map it (`_map_readonly`) or stream it "
                        "incrementally",
                    )
                )
        return findings
