"""CG003: decode/parse paths must raise the :mod:`repro.errors` taxonomy.

Callers distinguish corrupt input (``FormatError``), resource-bound hits
(``LimitExceededError``) and API misuse (``DomainError``) by type; a bare
``ValueError`` or leaked ``struct.error`` collapses those cases and breaks
``except FormatError`` recovery in the persistence layer.  The taxonomy
classes subclass ``ValueError`` so migrated raises stay
backward-compatible -- raising the builtin directly is what is banned.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.framework import Finding, Rule, SourceFile, register

__all__ = ["ExceptionTaxonomyRule"]

#: Builtin exceptions that decode paths must not raise directly.
_BANNED_BUILTINS = {"ValueError", "EOFError"}

#: ``module.attr`` exceptions banned in raise position.
_BANNED_ATTRS = {("struct", "error")}


def _in_scope(source: SourceFile) -> bool:
    parts = source.parts
    for sub in ("bits", "core"):
        try:
            i = parts.index(sub)
        except ValueError:
            continue
        if i > 0 and parts[i - 1] == "repro":
            return True
    return False


@register
class ExceptionTaxonomyRule(Rule):
    """CG003: no bare builtin exceptions on repro.bits / repro.core paths."""

    id = "CG003"
    name = "exception-taxonomy"
    summary = (
        "Code under repro/bits and repro/core must raise repro.errors "
        "classes (FormatError, LimitExceededError, DomainError subtypes), "
        "never bare ValueError/EOFError/struct.error."
    )

    def applies(self, source: SourceFile) -> bool:
        """Only repro/bits and repro/core paths are in scope."""
        return _in_scope(source)

    def check(self, source: SourceFile) -> List[Finding]:
        """Flag every ``raise`` of a banned builtin exception."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = self._banned_name(target)
            if name is not None:
                findings.append(
                    self.finding(
                        source,
                        node,
                        f"raises bare `{name}`; use the repro.errors "
                        "taxonomy (CorruptStreamError / LimitExceededError "
                        "/ CodecDomainError / GraphDomainError)",
                    )
                )
        return findings

    def _banned_name(self, target: ast.AST) -> str:
        if isinstance(target, ast.Name) and target.id in _BANNED_BUILTINS:
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and (target.value.id, target.attr) in _BANNED_ATTRS
        ):
            return f"{target.value.id}.{target.attr}"
        return None  # type: ignore[return-value]
