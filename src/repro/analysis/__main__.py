"""Entry point: ``python -m repro.analysis [paths]``."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like cat does.
        sys.stderr.close()
        sys.exit(141)
