"""Gap strategies and distributions (Figures 2, 3 and 4).

Section IV-A examines three ways of turning a node's timestamp list (in the
(neighbor label, time) storage order) into gaps:

* ``minimum``  -- gap of each timestamp from the smallest in the list;
* ``frequent`` -- gap from the most frequent timestamp in the list;
* ``previous`` -- gap from the previous timestamp (what ChronoGraph uses).

``frequent`` and ``previous`` can produce negative gaps, so distributions
are computed over the Eq. (1) naturals, exactly as the paper's figures map
"integers to natural numbers".
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bits.zigzag import to_natural
from repro.graph.model import TemporalGraph

GAP_STRATEGIES = ("minimum", "frequent", "previous")


def gap_sequence(timestamps: Sequence[int], strategy: str) -> List[int]:
    """Integer gaps of one node's timestamp list under a strategy."""
    if not timestamps:
        return []
    if strategy == "minimum":
        base = min(timestamps)
        return [t - base for t in timestamps]
    if strategy == "frequent":
        base = Counter(timestamps).most_common(1)[0][0]
        return [t - base for t in timestamps]
    if strategy == "previous":
        out = [0]
        for prev, t in zip(timestamps, timestamps[1:]):
            out.append(t - prev)
        return out
    raise ValueError(f"unknown gap strategy {strategy!r}; use {GAP_STRATEGIES}")


def natural_gaps(
    graph: TemporalGraph, strategy: str, resolution: int = 1
) -> List[int]:
    """All per-node gaps of the graph, Eq. (1)-mapped, at a resolution."""
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    out: List[int] = []
    for u in graph.active_nodes():
        times = [c.time // resolution for c in graph.contacts_of(u)]
        out.extend(to_natural(g) for g in gap_sequence(times, strategy))
    return out


def cumulative_frequency(values: Iterable[int]) -> List[Tuple[int, float]]:
    """(value, fraction of samples <= value) pairs, ascending (Figure 2)."""
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return []
    out: List[Tuple[int, float]] = []
    acc = 0
    for value in sorted(counts):
        acc += counts[value]
        out.append((value, acc / total))
    return out


def fraction_below(values: Sequence[int], threshold: int) -> float:
    """Share of samples strictly below a threshold (e.g. gaps < 100 s)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v < threshold) / len(values)


def log_binned_distribution(
    values: Sequence[int], bins_per_decade: int = 4
) -> List[Tuple[float, float]]:
    """Log-binned empirical pdf (Figures 3/4 are log-log frequency plots).

    Returns (bin geometric center, density) pairs over the positive values;
    zeros are excluded as on a log axis.
    """
    positive = [v for v in values if v > 0]
    if not positive:
        return []
    top = max(positive)
    edges: List[float] = [1.0]
    step = 10.0 ** (1.0 / bins_per_decade)
    while edges[-1] <= top:
        edges.append(edges[-1] * step)
    counts: Dict[int, int] = {}
    for v in positive:
        lo, hi = 0, len(edges) - 1
        while lo < hi - 1:
            mid = (lo + hi) // 2
            if edges[mid] <= v:
                lo = mid
            else:
                hi = mid
        counts[lo] = counts.get(lo, 0) + 1
    total = len(positive)
    out: List[Tuple[float, float]] = []
    for b in sorted(counts):
        width = edges[b + 1] - edges[b]
        center = (edges[b] * edges[b + 1]) ** 0.5
        out.append((center, counts[b] / (total * width)))
    return out
