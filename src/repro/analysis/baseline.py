"""Baseline files: accepted findings carried between engine upgrades.

A baseline entry fingerprints a finding by *content*, not by line number:
``sha256(rule | path | normalized line text | occurrence index)``.  Edits
elsewhere in a file do not invalidate the entry; editing the offending line
(or reordering identical offending lines) does, which is the point -- a
touched violation must be re-justified or fixed.

The committed project baseline (``analysis-baseline.json``) is empty by
policy; the mechanism exists for staged adoption of future rules.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.framework import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "filter_findings",
]

_VERSION = 1


def _line_text(path: str, line: int, cache: Dict[str, List[str]]) -> str:
    if path not in cache:
        try:
            cache[path] = Path(path).read_text(encoding="utf-8").splitlines()
        except OSError:
            cache[path] = []
    lines = cache[path]
    if 1 <= line <= len(lines):
        return " ".join(lines[line - 1].split())
    return ""


def fingerprint(
    finding: Finding, occurrence: int, cache: Dict[str, List[str]]
) -> str:
    """Stable content hash of one finding.

    ``occurrence`` disambiguates identical (rule, path, line-text) triples:
    the first such finding in file order is 0, the next 1, and so on.
    """
    text = _line_text(finding.path, finding.line, cache)
    payload = "\x1f".join(
        [finding.rule, finding.path.replace("\\", "/"), text, str(occurrence)]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _fingerprints(
    findings: Sequence[Finding],
) -> List[Tuple[Finding, str]]:
    cache: Dict[str, List[str]] = {}
    counts: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for f in findings:
        text = _line_text(f.path, f.line, cache)
        key = (f.rule, f.path, text)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out.append((f, fingerprint(f, occurrence, cache)))
    return out


def load_baseline(path: Path) -> Dict[str, str]:
    """Load ``{fingerprint: description}``; a missing file is empty."""
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return {}
    data = json.loads(raw)
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(f"{path}: not a version-{_VERSION} baseline file")
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: malformed entries table")
    return dict(entries)


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write the baseline accepting every finding; returns the entry count.

    Routed through :func:`repro.storage.atomic.atomic_write_text` so the
    engine satisfies its own CG004 rule.
    """
    from repro.storage.atomic import atomic_write_text

    entries = {
        fp: f"{f.rule} {Path(f.path).name}: {f.message}"
        for f, fp in _fingerprints(findings)
    }
    payload = json.dumps(
        {"version": _VERSION, "entries": entries},
        indent=2,
        sort_keys=True,
    )
    atomic_write_text(path, payload + "\n")
    return len(entries)


def filter_findings(
    findings: Sequence[Finding], baseline: Dict[str, str]
) -> Tuple[List[Finding], int]:
    """Drop baselined findings; returns ``(kept, accepted_count)``."""
    if not baseline:
        return list(findings), 0
    kept: List[Finding] = []
    accepted = 0
    for f, fp in _fingerprints(findings):
        if fp in baseline:
            accepted += 1
        else:
            kept.append(f)
    return kept, accepted
