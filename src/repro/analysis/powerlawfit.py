"""Discrete power-law fitting for gap distributions.

Section IV-A claims the previous-strategy gaps are power-law distributed;
the benches quantify that with the standard Clauset-Shalizi-Newman MLE for
the discrete exponent (the continuous approximation
``alpha = 1 + n / sum(ln(x_i / (x_min - 0.5)))``), which is accurate for
``x_min >= 2`` and entirely sufficient for checking skewness.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence


@dataclasses.dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law fit."""

    alpha: float
    x_min: int
    num_tail_samples: int

    @property
    def is_heavy_tailed(self) -> bool:
        """Rough skewness check: exponent in the usual empirical range."""
        return 1.0 < self.alpha < 4.0


def fit_discrete_power_law(
    values: Sequence[int], x_min: int = 2
) -> PowerLawFit:
    """MLE fit of ``P(x) ~ x^-alpha`` on the tail ``x >= x_min``."""
    if x_min < 2:
        raise ValueError("x_min must be >= 2 for the continuous approximation")
    tail = [v for v in values if v >= x_min]
    if len(tail) < 10:
        raise ValueError(
            f"need at least 10 tail samples to fit, got {len(tail)}"
        )
    denom = sum(math.log(v / (x_min - 0.5)) for v in tail)
    alpha = 1.0 + len(tail) / denom
    return PowerLawFit(alpha=alpha, x_min=x_min, num_tail_samples=len(tail))
