"""Project-wide symbol table and cross-module call graph.

The interprocedural rules (CG002 lock discipline, CG007 checkpoint
coverage) need to see through module boundaries: a service handler that
calls into the segment store which calls into the codec layer must carry
the codec's facts (decodes, acquires a lock, polls a checkpoint) back up
to the call site.  This module builds that view once per analysis run:

* a **symbol table** of every module-level function and every class method
  across all parsed sources, keyed by dotted qualname
  (``repro.storage.segments.SegmentStore.compact_once``);
* a per-module **import table** resolving ``from m import f`` / ``import
  m as alias`` (including relative imports) to dotted targets;
* a **call resolver** mapping one ``ast.Call`` in one function to the
  candidate :class:`FunctionInfo` targets it may invoke.

Resolution is deliberately *conservative over-approximation*, in this
order: exact matches first (same-module functions, imported names, the
caller's own class for ``self.``/``cls.`` calls, class-qualified calls
like ``WriteAheadLog.open``), then a project-wide bare-name fallback for
attribute calls (``part.graph.neighbors(...)`` matches every ``neighbors``
in the project).  Over-approximation can only create extra call edges,
which for CG002/CG007 means extra scrutiny, never a silently missed path.
Names with no match anywhere (builtins, stdlib methods) resolve to
nothing.

Module names are derived from file paths anchored at the ``repro``
package root when present (``src/repro/bits/codes.py`` and a test
fixture's ``<tmp>/repro/bits/codes.py`` both become
``repro.bits.codes``), falling back to ``tests``/``benchmarks`` anchors
and finally the bare stem -- so fixture trees resolve imports exactly
like the real tree does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import SourceFile

__all__ = ["FunctionInfo", "CallGraph", "module_name", "call_name"]


def module_name(display_path: str) -> str:
    """The dotted module name a source path denotes (see module docstring)."""
    parts = list(Path(display_path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor):]) or anchor
    return parts[-1] if parts else ""


def call_name(call: ast.Call) -> Optional[str]:
    """The bare name a call dispatches on (``f`` for both ``f()`` and ``x.f()``)."""
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function or class method in the project."""

    qualname: str
    module: str
    cls: Optional[str]
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    source: SourceFile


def _dotted(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class CallGraph:
    """Symbol table + call resolver over one run's parsed sources."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        #: qualname -> info, every indexed function in the project.
        self.functions: Dict[str, FunctionInfo] = {}
        self._module_functions: Dict[str, Dict[str, FunctionInfo]] = {}
        self._class_methods: Dict[Tuple[str, str], Dict[str, FunctionInfo]] = {}
        self._bare_functions: Dict[str, List[FunctionInfo]] = {}
        self._bare_any: Dict[str, List[FunctionInfo]] = {}
        self._imports: Dict[str, Dict[str, str]] = {}
        self._callee_cache: Dict[
            Tuple[str, bool], Tuple[FunctionInfo, ...]
        ] = {}
        for source in sources:
            self._index_source(source)

    # -- construction --------------------------------------------------------

    def _index_source(self, source: SourceFile) -> None:
        module = module_name(source.display_path)
        mod_funcs = self._module_functions.setdefault(module, {})
        for stmt in source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module}.{stmt.name}",
                    module=module,
                    cls=None,
                    name=stmt.name,
                    node=stmt,
                    source=source,
                )
                self._add(info, mod_funcs)
            elif isinstance(stmt, ast.ClassDef):
                methods = self._class_methods.setdefault(
                    (module, stmt.name), {}
                )
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        info = FunctionInfo(
                            qualname=f"{module}.{stmt.name}.{sub.name}",
                            module=module,
                            cls=stmt.name,
                            name=sub.name,
                            node=sub,
                            source=source,
                        )
                        self._add(info, methods)
        self._imports[module] = self._collect_imports(source.tree, module)

    def _add(
        self, info: FunctionInfo, table: Dict[str, FunctionInfo]
    ) -> None:
        self.functions[info.qualname] = info
        table.setdefault(info.name, info)
        self._bare_any.setdefault(info.name, []).append(info)
        if info.cls is None:
            self._bare_functions.setdefault(info.name, []).append(info)

    def _collect_imports(
        self, tree: ast.Module, module: str
    ) -> Dict[str, str]:
        """alias -> dotted target ("pkg.mod" or "pkg.mod.func")."""
        out: Dict[str, str] = {}
        package_parts = module.split(".")[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    out[name] = target
                    if alias.asname is None:
                        # `import a.b.c` also makes the full dotted chain
                        # usable; record it under its own spelling.
                        out[alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[: len(package_parts) - node.level + 1]
                    base = ".".join(
                        base_parts + ([node.module] if node.module else [])
                    )
                else:
                    base = node.module or ""
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    out[alias.asname or alias.name] = f"{base}.{alias.name}"
        return out

    # -- resolution ----------------------------------------------------------

    def resolve(
        self, call: ast.Call, caller: FunctionInfo, fallback: bool = True
    ) -> List[FunctionInfo]:
        """Candidate targets of ``call`` made from inside ``caller``.

        With ``fallback=False`` only exact matches resolve (same module,
        imports, own class, class-qualified, dotted chains); the
        project-wide bare-name over-approximation is skipped.  Rules pick
        the mode per question: rejecting uses exact edges (a ubiquitous
        method name like ``extend`` must not drag in every implementation
        in the project), accepting may use the generous set.
        """
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, caller, fallback)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func, caller, fallback)
        return []

    def _resolve_name(
        self, name: str, caller: FunctionInfo, fallback: bool
    ) -> List[FunctionInfo]:
        local = self._module_functions.get(caller.module, {}).get(name)
        if local is not None:
            return [local]
        target = self._imports.get(caller.module, {}).get(name)
        if target is not None:
            hit = self.functions.get(target)
            return [hit] if hit is not None else []
        if not fallback:
            return []
        # Project-wide fallback: a bare call to a name only defined
        # elsewhere (re-exported helpers, fixtures mirroring real modules).
        return list(self._bare_functions.get(name, ()))

    def _resolve_attribute(
        self, func: ast.Attribute, caller: FunctionInfo, fallback: bool
    ) -> List[FunctionInfo]:
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and caller.cls is not None:
                own = self._class_methods.get(
                    (caller.module, caller.cls), {}
                ).get(attr)
                if own is not None:
                    return [own]
            else:
                # Class-qualified call in the same module: WAL.open(...).
                own = self._class_methods.get(
                    (caller.module, base.id), {}
                ).get(attr)
                if own is not None:
                    return [own]
                target = self._imports.get(caller.module, {}).get(base.id)
                if target is not None:
                    hit = self.functions.get(f"{target}.{attr}")
                    if hit is not None:
                        return [hit]
        chain = _dotted(func)
        if chain is not None:
            # `repro.storage.atomic.atomic_write_text(...)` style chains:
            # try every import-alias prefix expansion, then the raw chain.
            imports = self._imports.get(caller.module, {})
            head, _, rest = chain.partition(".")
            expanded = None
            if head in imports and rest:
                expanded = f"{imports[head]}.{rest}"
            for candidate in filter(None, (expanded, chain)):
                hit = self.functions.get(candidate)
                if hit is not None:
                    return [hit]
        if not fallback:
            return []
        # Conservative fallback: any function or method with this name.
        return list(self._bare_any.get(attr, ()))

    def callees(
        self, caller: FunctionInfo, fallback: bool = True
    ) -> Tuple[FunctionInfo, ...]:
        """Every resolvable call target inside ``caller``'s own frame.

        Nested ``def``\\ s are part of the enclosing frame here: they are
        not indexed as separate nodes, so their call sites charge the
        function that defines them (a conservative but stable choice --
        closures in this codebase run on behalf of their definer).
        """
        key = (caller.qualname, fallback)
        cached = self._callee_cache.get(key)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        out: List[FunctionInfo] = []
        for node in ast.walk(caller.node):
            if not isinstance(node, ast.Call):
                continue
            for info in self.resolve(node, caller, fallback):
                if info.qualname not in seen and info.qualname != caller.qualname:
                    seen.add(info.qualname)
                    out.append(info)
        result = tuple(out)
        self._callee_cache[key] = result
        return result

    def reachable(
        self, roots: Iterable[FunctionInfo], fallback: bool = True
    ) -> Dict[str, FunctionInfo]:
        """Every function reachable from ``roots`` through resolved calls."""
        frontier = list(roots)
        out: Dict[str, FunctionInfo] = {}
        while frontier:
            info = frontier.pop()
            if info.qualname in out:
                continue
            out[info.qualname] = info
            frontier.extend(self.callees(info, fallback))
        return out

    def methods_of(self, class_name: str) -> List[FunctionInfo]:
        """All methods of every class named ``class_name`` in the project."""
        out: List[FunctionInfo] = []
        for (_, cls), methods in sorted(self._class_methods.items()):
            if cls == class_name:
                out.extend(methods.values())
        return out
