"""CG009: the suppression inventory must stay honest.

Every ``repro: noqa`` comment is a standing exception to an invariant;
an exception that no longer excepts anything is debt that hides the next
real finding on its line.  After both analysis phases have run, this rule
audits every directive the scanner saw (:func:`repro.analysis.framework.
scan_noqa` records them per file, including malformed ones) against the
lines that actually silenced a finding this run (``Project.used_noqa``):

* a **malformed** directive (``noqa[]``, ``noqa[bogus]``) suppresses
  nothing by construction and is always reported;
* a bracketed directive naming a rule id that is not registered at all is
  reported (likely a typo that silences nothing);
* a bracketed directive whose rules were all active this run but silenced
  no finding is **stale** -- the code it excused has been fixed or moved;
* a bare ``repro: noqa`` is only judged when the full rule set ran,
  since any rule it might be suppressing must have had its chance.

CG009 findings are anchored on the directive's own line and are exempt
from noqa suppression (a stale suppression must not be able to suppress
the report of its own staleness); see ``run_rules``.
"""

from __future__ import annotations

from typing import List

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    all_rules,
    register,
)

__all__ = ["StaleSuppressionRule"]


@register
class StaleSuppressionRule(Rule):
    """CG009: malformed or no-longer-needed noqa directives are findings."""

    id = "CG009"
    name = "stale-suppression"
    summary = (
        "A `repro: noqa` directive that is malformed, names an unknown "
        "rule, or no longer silences any finding is itself a finding; "
        "remove or fix it."
    )

    def finish(self, project: Project) -> List[Finding]:
        """Audit every scanned directive against the run's suppression use."""
        registered = {rule.id for rule in all_rules()}
        findings: List[Finding] = []
        for source in project.sources:
            used = project.used_noqa.get(source.display_path, set())
            for line in sorted(source.directives):
                directive = source.directives[line]

                def emit(message: str, line: int = line) -> None:
                    findings.append(
                        Finding(
                            rule=self.id,
                            path=source.display_path,
                            line=line,
                            col=0,
                            message=message,
                        )
                    )

                if directive.malformed is not None:
                    emit(
                        "malformed suppression: "
                        f"{directive.malformed}; it suppresses nothing"
                    )
                    continue
                if line in used:
                    continue
                if directive.rules is None:
                    if project.all_rules_active:
                        emit(
                            "stale blanket suppression: no rule reports a "
                            "finding on this line; remove the directive"
                        )
                    continue
                unknown = sorted(
                    rule_id
                    for rule_id in directive.rules
                    if rule_id not in registered
                )
                if unknown:
                    emit(
                        "suppression names unknown rule(s) "
                        f"{', '.join(unknown)}; it suppresses nothing"
                    )
                    continue
                if directive.rules <= project.active_rule_ids:
                    emit(
                        "stale suppression: no "
                        f"{'/'.join(sorted(directive.rules))} finding on "
                        "this line; remove the directive"
                    )
        return findings
