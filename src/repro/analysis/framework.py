"""Rule framework of the repro static-analysis engine.

The engine enforces project invariants that generic linters cannot see:
snapshot discipline on the concurrent query plane (CG001), lock hygiene
(CG002), the :mod:`repro.errors` exception taxonomy (CG003), atomic artifact
writes (CG004), decode-budget pre-charging (CG005) and the zero-copy buffer
discipline of the decode plane (CG006).  Each rule is an
AST visitor registered with :func:`register`; the driver parses every file
once and hands the tree to all selected rules.

Findings can be silenced per line with ``# repro: noqa[CG003]`` (or a bare
``# repro: noqa`` for all rules) or accepted wholesale via the committed
baseline file (see :mod:`repro.analysis.baseline`).  The project policy is
to fix findings, not baseline them: the committed baseline is empty.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "Rule",
    "SourceFile",
    "register",
    "all_rules",
    "get_rule",
    "run_rules",
    "collect_files",
    "parse_noqa",
]

#: ``# repro: noqa`` (all rules) or ``# repro: noqa[CG001, CG002]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Z0-9, ]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """ruff/gcc-style one-line rendering: path:line:col: RULE message."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass
class SourceFile:
    """A parsed source file shared by every rule in one driver pass."""

    path: Path
    text: str
    tree: ast.Module
    #: repo-relative (or as-given) path used in findings and baselines.
    display_path: str
    #: line number -> frozenset of suppressed rule ids; empty set = all rules.
    noqa: Dict[int, frozenset] = field(default_factory=dict)

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by rules to scope themselves."""
        return Path(self.display_path).parts


class Rule:
    """Base class for one named check.

    Subclasses set ``id`` (``CGnnn``), ``name`` and ``summary`` and
    implement :meth:`check`, returning findings for one parsed file.
    ``applies`` may narrow the rule to a path subset; the driver consults
    it before calling :meth:`check`.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def applies(self, source: SourceFile) -> bool:
        """Whether this rule runs on ``source`` (override to path-scope)."""
        return True

    def check(self, source: SourceFile) -> List[Finding]:  # pragma: no cover
        """Return this rule's findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule=self.id,
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise RuntimeError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise RuntimeError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules in id order (imports rule modules on first use)."""
    _load_builtin_rules()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Rule]:
    """The registered rule with id ``rule_id``, or None."""
    _load_builtin_rules()
    return _REGISTRY.get(rule_id)


_loaded = False


def _load_builtin_rules() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    # Imported for their @register side effects.
    from repro.analysis import (  # noqa: F401
        rules_budget,
        rules_concurrency,
        rules_copies,
        rules_storage,
        rules_taxonomy,
    )


def parse_noqa(text: str) -> Dict[int, frozenset]:
    """Per-line suppressions: ``{lineno: frozenset(rule_ids)}``.

    An empty frozenset means "suppress every rule on this line".
    """
    out: Dict[int, frozenset] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        if m.group(1) is None:
            out[lineno] = frozenset()
        else:
            ids = frozenset(
                part.strip() for part in m.group(1).split(",") if part.strip()
            )
            out[lineno] = ids
    return out


def _suppressed(finding: Finding, noqa: Dict[int, frozenset]) -> bool:
    ids = noqa.get(finding.line)
    if ids is None:
        return False
    return not ids or finding.rule in ids


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories to a sorted list of ``.py`` files."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for f in candidates:
            if "__pycache__" in f.parts:
                continue
            key = str(f)
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def run_rules(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    on_file: Optional[Callable[[SourceFile], None]] = None,
) -> Tuple[List[Finding], List[str]]:
    """Run ``rules`` (default: all) over ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are unreadable or
    syntactically invalid files.  noqa suppressions are already applied;
    baseline filtering is the caller's job.
    """
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    errors: List[str] = []
    for path in collect_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: unreadable: {exc}")
            continue
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            errors.append(f"{path}:{exc.lineno}: syntax error: {exc.msg}")
            continue
        source = SourceFile(
            path=path,
            text=text,
            tree=tree,
            display_path=str(path),
            noqa=parse_noqa(text),
        )
        if on_file is not None:
            on_file(source)
        for rule in active:
            if not rule.applies(source):
                continue
            for finding in rule.check(source):
                if not _suppressed(finding, source.noqa):
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, errors
