"""Rule framework of the repro static-analysis engine.

The engine enforces project invariants that generic linters cannot see:
snapshot discipline on the concurrent query plane (CG001), lock hygiene
(CG002), the :mod:`repro.errors` exception taxonomy (CG003), atomic artifact
writes (CG004), decode-budget pre-charging (CG005), the zero-copy buffer
discipline of the decode plane (CG006), checkpoint coverage of query loops
(CG007), resource-handle lifecycles (CG008) and suppression hygiene
(CG009).  Each rule is an AST visitor registered with :func:`register`; the
driver parses every file once and hands the tree to all selected rules.

Analysis runs in two phases.  The *file phase* calls ``Rule.check`` per
parsed file, exactly as before.  The *project phase* then calls
``Rule.finish`` once with a :class:`Project` -- the full set of parsed
sources plus a lazily built cross-module call graph
(:mod:`repro.analysis.callgraph`) -- which is how the interprocedural rules
(CG002 lock discipline, CG007 checkpoint coverage) see through module
boundaries, and how CG009 audits the suppression inventory.

Findings can be silenced per line with a trailing suppression comment of
the form ``repro: noqa[CG003]`` (or with no bracket at all, which silences
every rule) or accepted wholesale via the committed baseline file (see
:mod:`repro.analysis.baseline`).  Suppression comments are read from real
comment tokens only -- a directive spelled inside a string literal is
inert.  A malformed directive (empty or unparseable rule list) suppresses
nothing and is itself reported by CG009.  The project policy is to fix
findings, not baseline them: the committed baseline is empty.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.analysis.callgraph import CallGraph

__all__ = [
    "Finding",
    "NoqaDirective",
    "Project",
    "Rule",
    "SourceFile",
    "register",
    "all_rules",
    "get_rule",
    "run_rules",
    "collect_files",
    "parse_noqa",
    "scan_noqa",
]

#: A suppression directive: ``repro: noqa`` (all rules) or with a bracketed
#: rule list such as ``repro: noqa[CG001, CG002]``.  The bracket contents
#: are captured wholesale and validated separately so malformed lists
#: (``noqa[]``, ``noqa[bogus]``) can be *reported* instead of silently
#: widening or narrowing the suppression.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(\[([^\]]*)\])?")

#: One rule id inside a bracketed suppression list.
_RULE_TOKEN_RE = re.compile(r"\A[A-Z]+[0-9]+\Z")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """ruff/gcc-style one-line rendering: path:line:col: RULE message."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


@dataclass(frozen=True)
class NoqaDirective:
    """One parsed suppression comment.

    ``rules`` is ``None`` for a bare directive (suppress everything) and a
    frozenset of rule ids for a bracketed one.  ``malformed`` carries the
    reason when the directive could not be parsed -- such a directive
    suppresses *nothing* and is surfaced by CG009.
    """

    line: int
    rules: Optional[frozenset] = None
    malformed: Optional[str] = None

    def suppresses(self, rule_id: str) -> bool:
        """Whether this directive silences ``rule_id`` findings."""
        if self.malformed is not None:
            return False
        return self.rules is None or rule_id in self.rules


@dataclass
class SourceFile:
    """A parsed source file shared by every rule in one driver pass."""

    path: Path
    text: str
    tree: ast.Module
    #: repo-relative (or as-given) path used in findings and baselines.
    display_path: str
    #: line number -> frozenset of suppressed rule ids; empty set = all rules.
    noqa: Dict[int, frozenset] = field(default_factory=dict)
    #: line number -> full directive, including malformed ones.
    directives: Dict[int, NoqaDirective] = field(default_factory=dict)

    @property
    def parts(self) -> Tuple[str, ...]:
        """Path components, used by rules to scope themselves."""
        return Path(self.display_path).parts


class Project:
    """Everything the project phase sees: all sources plus shared indexes.

    Built once per :func:`run_rules` invocation.  ``used_noqa`` records, per
    display path, the directive lines that actually silenced at least one
    finding during either phase -- the raw material of CG009's staleness
    audit.  The cross-module call graph is built lazily on first access so
    runs that select only file-phase rules never pay for it.
    """

    def __init__(
        self, sources: Sequence[SourceFile], active_rule_ids: Iterable[str]
    ) -> None:
        self.sources: List[SourceFile] = list(sources)
        self.active_rule_ids = frozenset(active_rule_ids)
        self.used_noqa: Dict[str, Set[int]] = {}
        self._by_path: Dict[str, SourceFile] = {
            s.display_path: s for s in self.sources
        }
        self._callgraph: Optional["CallGraph"] = None

    @property
    def all_rules_active(self) -> bool:
        """Whether this run selected the complete registered rule set."""
        return self.active_rule_ids == frozenset(r.id for r in all_rules())

    def source_for(self, display_path: str) -> Optional[SourceFile]:
        """The parsed source a finding's path refers to, if in this run."""
        return self._by_path.get(display_path)

    def note_suppression(self, display_path: str, line: int) -> None:
        """Record that the directive on ``line`` silenced a finding."""
        self.used_noqa.setdefault(display_path, set()).add(line)

    @property
    def callgraph(self) -> "CallGraph":
        """The cross-module call graph, built on first use and cached."""
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self.sources)
        return self._callgraph


class Rule:
    """Base class for one named check.

    Subclasses set ``id`` (``CGnnn``), ``name`` and ``summary`` and
    implement :meth:`check`, returning findings for one parsed file.
    ``applies`` may narrow the rule to a path subset; the driver consults
    it before calling :meth:`check`.  Whole-program rules override
    :meth:`finish`, which runs once after every file has been checked and
    may anchor findings in any of the project's files.
    """

    id: str = ""
    name: str = ""
    summary: str = ""

    def applies(self, source: SourceFile) -> bool:
        """Whether this rule runs on ``source`` (override to path-scope)."""
        return True

    def check(self, source: SourceFile) -> List[Finding]:
        """Return this rule's per-file findings (default: none)."""
        return []

    def finish(self, project: Project) -> List[Finding]:
        """Return this rule's whole-program findings (default: none)."""
        return []

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule=self.id,
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise RuntimeError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise RuntimeError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules in id order (imports rule modules on first use)."""
    _load_builtin_rules()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Optional[Rule]:
    """The registered rule with id ``rule_id``, or None."""
    _load_builtin_rules()
    return _REGISTRY.get(rule_id)


_loaded = False


def _load_builtin_rules() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    # Imported for their @register side effects.
    from repro.analysis import (  # noqa: F401
        rules_budget,
        rules_concurrency,
        rules_copies,
        rules_coverage,
        rules_lifecycle,
        rules_storage,
        rules_suppression,
        rules_taxonomy,
    )


def _parse_directive(line: int, bracket: Optional[str]) -> NoqaDirective:
    """Classify one matched suppression comment."""
    if bracket is None:
        return NoqaDirective(line=line)
    tokens = [part.strip() for part in bracket.split(",")]
    tokens = [t for t in tokens if t]
    if not tokens:
        return NoqaDirective(
            line=line,
            malformed="empty rule list (write `repro: noqa[CG001]` or drop "
            "the brackets to silence every rule)",
        )
    bad = [t for t in tokens if not _RULE_TOKEN_RE.match(t)]
    if bad:
        return NoqaDirective(
            line=line,
            malformed=f"unparseable rule id(s) {', '.join(sorted(bad))}",
        )
    return NoqaDirective(line=line, rules=frozenset(tokens))


def scan_noqa(text: str) -> Dict[int, NoqaDirective]:
    """Per-line suppression directives, read from real comment tokens.

    Tokenizing (rather than regexing every raw line) keeps directives
    spelled inside string literals -- docstrings quoting the syntax, test
    fixtures embedding analyzable code -- from registering as live
    suppressions.  Files the tokenizer cannot handle fall back to the raw
    line scan, which can only over-approximate (extra suppressions, never
    lost ones).
    """
    out: Dict[int, NoqaDirective] = {}
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(text).readline)
        )
    except (tokenize.TokenizeError, SyntaxError, ValueError):
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = _NOQA_RE.search(line)
            if m:
                out[lineno] = _parse_directive(lineno, m.group(2))
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _NOQA_RE.search(tok.string)
        if m:
            lineno = tok.start[0]
            out[lineno] = _parse_directive(lineno, m.group(2))
    return out


def parse_noqa(text: str) -> Dict[int, frozenset]:
    """Per-line suppressions: ``{lineno: frozenset(rule_ids)}``.

    An empty frozenset means "suppress every rule on this line".
    Malformed directives suppress nothing and are omitted here; they stay
    visible through :func:`scan_noqa` for CG009.
    """
    out: Dict[int, frozenset] = {}
    for lineno, directive in scan_noqa(text).items():
        if directive.malformed is not None:
            continue
        out[lineno] = (
            frozenset() if directive.rules is None else directive.rules
        )
    return out


def _suppressed(finding: Finding, noqa: Dict[int, frozenset]) -> bool:
    ids = noqa.get(finding.line)
    if ids is None:
        return False
    return not ids or finding.rule in ids


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories to a sorted list of ``.py`` files."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for f in candidates:
            if "__pycache__" in f.parts:
                continue
            key = str(f)
            if key not in seen:
                seen.add(key)
                out.append(f)
    return out


def load_sources(
    paths: Sequence[str],
) -> Tuple[List[SourceFile], List[str]]:
    """Parse every ``.py`` file under ``paths`` into :class:`SourceFile`\\ s.

    Returns ``(sources, errors)`` where ``errors`` are unreadable or
    syntactically invalid files (reported, then skipped).
    """
    sources: List[SourceFile] = []
    errors: List[str] = []
    for path in collect_files(paths):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            errors.append(f"{path}: unreadable: {exc}")
            continue
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            errors.append(f"{path}:{exc.lineno}: syntax error: {exc.msg}")
            continue
        directives = scan_noqa(text)
        noqa = {
            line: (
                frozenset() if d.rules is None else d.rules
            )
            for line, d in directives.items()
            if d.malformed is None
        }
        sources.append(
            SourceFile(
                path=path,
                text=text,
                tree=tree,
                display_path=str(path),
                noqa=noqa,
                directives=directives,
            )
        )
    return sources, errors


def run_rules(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    on_file: Optional[Callable[[SourceFile], None]] = None,
) -> Tuple[List[Finding], List[str]]:
    """Run ``rules`` (default: all) over ``paths``.

    Returns ``(findings, errors)`` where ``errors`` are unreadable or
    syntactically invalid files.  noqa suppressions are already applied --
    and their use recorded for CG009 -- in both the per-file and the
    project phase; baseline filtering is the caller's job.  Findings are
    sorted by ``(path, line, rule, col)`` so output is deterministic
    across runs and platforms.
    """
    active = list(rules) if rules is not None else all_rules()
    sources, errors = load_sources(paths)
    project = Project(sources, (r.id for r in active))
    findings: List[Finding] = []

    def admit(finding: Finding, source: Optional[SourceFile]) -> None:
        # CG009 findings are anchored on the directive's own line; letting
        # that directive suppress them would let a stale suppression hide
        # the report of its own staleness.
        if (
            finding.rule != "CG009"
            and source is not None
            and _suppressed(finding, source.noqa)
        ):
            project.note_suppression(source.display_path, finding.line)
            return
        findings.append(finding)

    for source in sources:
        if on_file is not None:
            on_file(source)
        for rule in active:
            if not rule.applies(source):
                continue
            for finding in rule.check(source):
                admit(finding, source)
    # Project phase in id order so CG009's staleness audit runs after the
    # other whole-program rules have recorded their suppression use.
    for rule in sorted(active, key=lambda r: r.id):
        for finding in rule.finish(project):
            admit(finding, project.source_for(finding.path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    return findings, errors
