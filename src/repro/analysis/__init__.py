"""Analysis tools: empirical gap statistics and the static-analysis engine.

Two unrelated-but-sibling concerns live here:

* Timestamp-gap analysis reproducing the empirical study of Section IV-A
  (Figures 2-4: gap distributions under three orderings and several
  aggregation levels), importable as before.
* The project's AST-based static-analysis engine (``python -m
  repro.analysis``), which enforces invariants generic linters cannot
  see: snapshot discipline (CG001), lock discipline (CG002), the
  repro.errors exception taxonomy (CG003), atomic artifact writes
  (CG004), decode-budget pre-charging (CG005) and the zero-copy buffer
  discipline of the decode plane (CG006).  See ``docs/analysis.md`` for
  the rule catalog.
"""

from repro.analysis.gapstats import (
    GAP_STRATEGIES,
    cumulative_frequency,
    gap_sequence,
    log_binned_distribution,
    natural_gaps,
)
from repro.analysis.powerlawfit import fit_discrete_power_law, PowerLawFit
from repro.analysis.burstiness import (
    burstiness_coefficient,
    edge_burstiness,
    mean_burstiness,
    node_burstiness,
)
from repro.analysis.entropy import (
    code_efficiency,
    empirical_entropy,
    timestamp_entropy_bound,
)
from repro.analysis.framework import (
    Finding,
    Rule,
    all_rules,
    get_rule,
    run_rules,
)

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "run_rules",
    "code_efficiency",
    "empirical_entropy",
    "timestamp_entropy_bound",
    "burstiness_coefficient",
    "edge_burstiness",
    "mean_burstiness",
    "node_burstiness",
    "GAP_STRATEGIES",
    "cumulative_frequency",
    "gap_sequence",
    "log_binned_distribution",
    "natural_gaps",
    "fit_discrete_power_law",
    "PowerLawFit",
]
