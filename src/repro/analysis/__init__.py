"""Timestamp-gap analysis reproducing the empirical study of Section IV-A.

Figures 2-4 of the paper characterise the distribution of timestamp gaps
under three orderings ("gap strategies") and several aggregation levels.
This subpackage computes exactly those statistics from any temporal graph.
"""

from repro.analysis.gapstats import (
    GAP_STRATEGIES,
    cumulative_frequency,
    gap_sequence,
    log_binned_distribution,
    natural_gaps,
)
from repro.analysis.powerlawfit import fit_discrete_power_law, PowerLawFit
from repro.analysis.burstiness import (
    burstiness_coefficient,
    edge_burstiness,
    mean_burstiness,
    node_burstiness,
)
from repro.analysis.entropy import (
    code_efficiency,
    empirical_entropy,
    timestamp_entropy_bound,
)

__all__ = [
    "code_efficiency",
    "empirical_entropy",
    "timestamp_entropy_bound",
    "burstiness_coefficient",
    "edge_burstiness",
    "mean_burstiness",
    "node_burstiness",
    "GAP_STRATEGIES",
    "cumulative_frequency",
    "gap_sequence",
    "log_binned_distribution",
    "natural_gaps",
    "fit_discrete_power_law",
    "PowerLawFit",
]
