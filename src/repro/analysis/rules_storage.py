"""CG004: artifact writes must route through :mod:`repro.storage.atomic`.

A bare ``open(path, "w")`` that crashes mid-write leaves a truncated file
at the final path; the atomic helpers write to a same-directory temp file,
fsync, and rename, so observers only ever see old-or-new content.  Only
two places may bypass them: ``repro/storage/atomic.py`` itself (the
sanctioned implementation) and the ``repro/testing`` harness (which
deliberately plants corrupt bytes).  The *rest* of the storage layer is
deliberately in scope -- manifests, WAL headers and segment files are
exactly the artifacts whose torn writes corrupt a whole store, so they
must route through ``atomic_write_bytes`` like everything else.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.framework import Finding, Rule, SourceFile, register

__all__ = ["AtomicWriteRule"]

#: Path segments (under ``repro/``) whose files deliberately exercise raw
#: writes: the fault-injection harness plants corrupt bytes on purpose.
_EXEMPT_SEGMENTS = ("testing",)

#: Exact files (as trailing path parts) that implement the sanctioned
#: write path itself and so cannot route through it.
_EXEMPT_FILES = (("repro", "storage", "atomic.py"),)

#: Modules whose ``.open`` behaves like the builtin.
_OPEN_MODULES = {"io", "gzip", "bz2", "lzma"}

#: ``os.open`` flag names that imply writing.
_WRITE_FLAGS = {"O_WRONLY", "O_RDWR", "O_CREAT", "O_APPEND", "O_TRUNC"}


def _exempt(source: SourceFile) -> bool:
    parts = source.parts
    # The test suite writes scratch files ad lib (tmp_path fixtures are
    # not crash-durable artifacts); only production trees owe atomicity.
    if "tests" in parts and "repro" not in parts:
        return True
    for seg in _EXEMPT_SEGMENTS:
        try:
            i = parts.index(seg)
        except ValueError:
            continue
        if i > 0 and parts[i - 1] == "repro":
            return True
    for tail in _EXEMPT_FILES:
        if tuple(parts[-len(tail):]) == tail:
            return True
    return False


def _literal_mode(call: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open``-style call, if present."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"  # open() defaults to read
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: cannot prove, stay quiet


def _is_write_mode(mode: Optional[str]) -> bool:
    return mode is not None and any(ch in mode for ch in "wax+")


@register
class AtomicWriteRule(Rule):
    """CG004: no raw write-mode file APIs outside repro.storage."""

    id = "CG004"
    name = "atomic-write"
    summary = (
        "Artifact writes must go through repro.storage.atomic "
        "(atomic_write_bytes / atomic_write_text / AtomicFile); bare "
        "open(..., 'w'), Path.write_text/write_bytes and os.open with "
        "write flags are banned everywhere else -- including the rest of "
        "the storage layer, whose manifests and segments are the "
        "artifacts a torn write hurts most."
    )

    def applies(self, source: SourceFile) -> bool:
        """Everywhere except atomic.py itself and the crash harness."""
        return not _exempt(source)

    def check(self, source: SourceFile) -> List[Finding]:
        """Flag every raw write-mode filesystem call."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            message = self._violation(node)
            if message is not None:
                findings.append(self.finding(source, node, message))
        return findings

    def _violation(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _literal_mode(call)
            if _is_write_mode(mode):
                return (
                    f"bare open(..., {mode!r}); use "
                    "repro.storage.atomic.atomic_write_* so a crash cannot "
                    "leave a torn artifact"
                )
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in ("write_text", "write_bytes"):
            return (
                f"`.{func.attr}()` writes in place; use "
                "repro.storage.atomic.atomic_write_"
                f"{'text' if func.attr == 'write_text' else 'bytes'} instead"
            )
        if (
            func.attr == "open"
            and isinstance(func.value, ast.Name)
            and func.value.id in _OPEN_MODULES
        ):
            mode = _literal_mode(call)
            if _is_write_mode(mode):
                return (
                    f"{func.value.id}.open(..., {mode!r}) writes in place; "
                    "write through repro.storage.atomic"
                )
            return None
        if (
            func.attr == "open"
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
        ):
            for arg in call.args[1:]:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in _WRITE_FLAGS
                    ):
                        return (
                            f"os.open with {sub.attr} writes in place; "
                            "write through repro.storage.atomic"
                        )
        return None
