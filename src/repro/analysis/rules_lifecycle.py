"""CG008: resource handles must be released on every path.

The long-lived processes this codebase runs as -- the service supervisor,
the background compactor, segment stores holding mmap windows -- leak
file descriptors, mapped pages and threads if a handle created on one
path is only released on the happy path.  This rule is a small
path-sensitive type-state check per function over the handle-producing
factories (``open``, ``mmap``, ``socket``, ``Thread``, thread-pool
executors):

* a factory entered directly through ``with`` is managed -- OK;
* a handle stored on an object (``self._thread = Thread(...)``),
  returned, yielded, or handed to another call *escapes* -- its
  lifecycle is owned elsewhere and is out of scope here;
* a handle bound to a local must be released (``close``/``join``/
  ``shutdown``) via ``with`` or a ``try/finally`` that begins before any
  statement that can raise -- a "risky" statement (anything containing a
  call) between acquisition and protection is exactly the error path
  that leaks;
* ``Thread(..., daemon=True)`` (or an immediate ``t.daemon = True``) is
  exempt: fire-and-forget workers are detached by design.

The rule is scoped to production ``repro`` packages; test fixtures and
the chaos/race harnesses in ``repro.testing`` open and drop handles on
purpose.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.framework import Finding, Rule, SourceFile, register

__all__ = ["ResourceLifecycleRule"]

#: factory call name -> required release method on the produced handle.
_FACTORIES: Dict[str, str] = {
    "open": "close",
    "mmap": "close",
    "socket": "close",
    "socketpair": "close",
    "Thread": "join",
    "ThreadPoolExecutor": "shutdown",
    "ProcessPoolExecutor": "shutdown",
}

#: Any of these anywhere in a finally block releases the named handle.
_RELEASES = {"close", "join", "shutdown", "terminate"}


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _factory_call(node: ast.AST) -> Optional[ast.Call]:
    """``node`` itself when it is a handle-producing factory call."""
    if isinstance(node, ast.Call) and _call_name(node) in _FACTORIES:
        return node
    return None


def _is_daemon(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _has_call(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Call) for sub in ast.walk(node))


def _releases_name(block: List[ast.stmt], name: str) -> bool:
    """Whether ``block`` contains ``name.close()`` / ``.join()`` / etc."""
    for stmt in block:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _RELEASES
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == name
            ):
                return True
    return False


def _uses_name_as_arg(call: ast.Call, name: str) -> bool:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and sub.id == name:
                return True
    return False


@register
class ResourceLifecycleRule(Rule):
    """CG008: close/join every handle on success and error paths alike."""

    id = "CG008"
    name = "resource-lifecycle"
    summary = (
        "mmap/file/socket/Thread/Executor handles must be managed by "
        "`with` or a try/finally release that starts before any statement "
        "that can raise; storing, returning or passing the handle on "
        "transfers ownership instead."
    )

    def applies(self, source: SourceFile) -> bool:
        """Production repro packages only (testing harness exempt)."""
        parts = source.parts
        return "repro" in parts and "testing" not in parts

    def check(self, source: SourceFile) -> List[Finding]:
        """Audit every function body block for unmanaged factory calls."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_block(source, node.body, findings)
        return findings

    def _check_block(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        findings: List[Finding],
    ) -> None:
        """One statement list: find factory bindings, then audit their tail."""
        for index, stmt in enumerate(body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are walked by check() itself
            if isinstance(stmt, ast.With):
                self._audit_with(source, stmt, findings)
                continue
            if isinstance(stmt, ast.Assign):
                self._audit_assign(source, body, index, stmt, findings)
            elif isinstance(stmt, ast.Expr):
                self._audit_bare_expr(source, stmt, findings)

    def _audit_with(
        self, source: SourceFile, stmt: ast.With, findings: List[Finding]
    ) -> None:
        # `with open(...) as f:` manages the handle; nothing to check on
        # the item itself.  The body is a fresh block.
        self._check_block(source, stmt.body, findings)

    def _audit_bare_expr(
        self, source: SourceFile, stmt: ast.Expr, findings: List[Finding]
    ) -> None:
        """`Thread(...).start()` style: the handle is dropped on the floor."""
        for sub in ast.walk(stmt.value):
            call = _factory_call(sub)
            if call is None:
                continue
            if _call_name(call) == "Thread" and _is_daemon(call):
                continue
            # A factory used as an argument to another call escapes
            # (e.g. stack.enter_context(open(...))).
            if isinstance(stmt.value, ast.Call) and sub is not stmt.value:
                if _uses_name_as_arg_node(stmt.value, sub):
                    continue
            findings.append(
                self.finding(
                    source,
                    call,
                    f"`{_call_name(call)}(...)` handle is dropped without "
                    f"a `{_FACTORIES[_call_name(call)]}`; bind it and "
                    "release it, or manage it with `with`",
                )
            )

    def _audit_assign(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        index: int,
        stmt: ast.Assign,
        findings: List[Finding],
    ) -> None:
        call = _factory_call(stmt.value)
        if call is None:
            return
        if _call_name(call) == "Thread" and _is_daemon(call):
            return
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return  # stored on an object or container: ownership escapes
        if not isinstance(target, ast.Name):
            return
        name = target.id
        verdict = self._tail_verdict(body[index + 1:], name, call)
        if verdict is not None:
            findings.append(self.finding(source, call, verdict))

    def _tail_verdict(
        self, tail: List[ast.stmt], name: str, call: ast.Call
    ) -> Optional[str]:
        """None when the handle is safely released/escaped; else a message."""
        factory = _call_name(call)
        release = _FACTORIES[factory]
        risky_before = False
        for stmt in tail:
            # Protection: try/finally releasing the handle, or `with` on it.
            if isinstance(stmt, ast.Try) and _releases_name(
                stmt.finalbody, name
            ):
                if risky_before:
                    return (
                        f"`{name} = {factory}(...)` is released in a "
                        "finally block, but a statement that can raise "
                        "runs before the try is entered -- that error "
                        "path leaks the handle"
                    )
                return None
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    expr = item.context_expr
                    managed = (
                        isinstance(expr, ast.Name) and expr.id == name
                    ) or (
                        isinstance(expr, ast.Call)
                        and _uses_name_as_arg(expr, name)
                    )
                    if managed:
                        if risky_before:
                            return (
                                f"`{name} = {factory}(...)` is managed by "
                                "a later `with`, but a statement that can "
                                "raise runs first -- that error path "
                                "leaks the handle"
                            )
                        return None
            # Escapes: returned, yielded, stored away, passed to a call.
            if self._escapes(stmt, name):
                return None
            # Daemon flag set right after construction: detached by design.
            if factory == "Thread" and self._sets_daemon(stmt, name):
                return None
            # Direct release with nothing risky in between: no error path
            # exists between acquire and release, so finally is redundant.
            if (
                isinstance(stmt, ast.Expr)
                and _releases_name([stmt], name)
                and not risky_before
            ):
                return None
            if _has_call(stmt) or isinstance(stmt, ast.Raise):
                risky_before = True
        return (
            f"`{name} = {factory}(...)` may never be released; call "
            f"`{name}.{release}()` under `with` or try/finally (error "
            "paths included)"
        )

    def _escapes(self, stmt: ast.stmt, name: str) -> bool:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            return any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(stmt.value)
            )
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value:
                if any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(sub.value)
                ):
                    return True
            if isinstance(sub, ast.Call) and _uses_name_as_arg(sub, name):
                return True
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if any(
                            isinstance(n, ast.Name) and n.id == name
                            for n in ast.walk(sub.value)
                        ):
                            return True
        return False

    def _sets_daemon(self, stmt: ast.stmt, name: str) -> bool:
        return (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Attribute)
            and stmt.targets[0].attr == "daemon"
            and isinstance(stmt.targets[0].value, ast.Name)
            and stmt.targets[0].value.id == name
            and isinstance(stmt.value, ast.Constant)
            and bool(stmt.value.value)
        )


def _uses_name_as_arg_node(call: ast.Call, node: ast.AST) -> bool:
    """Whether ``node`` appears inside ``call``'s argument list."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if sub is node:
                return True
    return False
