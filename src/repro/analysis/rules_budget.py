"""CG005: allocations sized by decoded values must pre-charge the budget.

A count read from a compressed stream is attacker-controlled: one flipped
bit can turn a 3 into 3 billion.  Decode paths therefore charge the
decode-limit budget (``charge(n)``, which raises
:class:`repro.errors.LimitExceededError`) or bound the value explicitly
*before* any allocation proportional to it -- bulk ``read_many_*`` and
vectorized-kernel ``decode_run*`` calls, list repetition,
``bytes``/``bytearray`` construction.

The rule is a small flow-sensitive taint analysis per function: values
returned by scalar codec readers are tainted; passing a tainted value
through a ``*charge*`` call or raising under a comparison against it
discharges the taint; using a still-tainted value to size an allocation is
a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.framework import Finding, Rule, SourceFile, register

__all__ = ["DecodeBudgetRule"]

#: Scalar codec readers whose results are stream-controlled numbers.
_SCALAR_READERS = {
    "read_unary",
    "read_unary_run",
    "read_gamma",
    "read_gamma_natural",
    "read_gamma_integer",
    "read_delta",
    "read_zeta",
    "read_zeta_natural",
    "read_zeta_integer",
    "read_golomb",
    "read_rice",
    "read_vbyte",
    "read_minimal_binary",
    "read_bits",
    "read_bit",
}

_TAINTED = "tainted"
_GUARDED = "guarded"


def _call_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return ""


def _names_in(node: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


@register
class DecodeBudgetRule(Rule):
    """CG005: charge the decode budget before proportional allocation."""

    id = "CG005"
    name = "decode-budget"
    summary = (
        "A count decoded from the stream must be charged against the "
        "decode-limit budget (or bounds-checked with a raise) before it "
        "sizes a bulk read, list repetition or bytes allocation."
    )

    def check(self, source: SourceFile) -> List[Finding]:
        """Run the per-function taint walk over every function."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(source, node, findings)
        return findings

    def _check_function(
        self,
        source: SourceFile,
        func: ast.FunctionDef,
        findings: List[Finding],
    ) -> None:
        state: Dict[str, str] = {}
        self._walk_block(source, func.body, state, findings)

    def _walk_block(
        self,
        source: SourceFile,
        body: List[ast.stmt],
        state: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(source, stmt, findings)  # own frame
                continue
            if isinstance(stmt, ast.If):
                self._handle_if(source, stmt, state, findings)
                continue
            self._flag_uses(source, stmt, state, findings)
            self._apply_guards(stmt, state)
            if isinstance(stmt, ast.Assign):
                self._track_assign(stmt.targets, stmt.value, state)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._track_assign([stmt.target], stmt.value, state)
            elif isinstance(stmt, ast.AugAssign):
                # x += tainted keeps/creates taint on x
                if isinstance(stmt.target, ast.Name):
                    if self._mentions_tainted(stmt.value, state):
                        state[stmt.target.id] = _TAINTED
            for inner in self._inner_blocks(stmt):
                self._walk_block(source, inner, state, findings)

    def _inner_blocks(self, stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner and isinstance(inner, list):
                blocks.append(inner)
        for handler in getattr(stmt, "handlers", ()) or ():
            blocks.append(handler.body)
        return blocks

    # -- taint tracking ----------------------------------------------------

    def _track_assign(
        self, targets: List[ast.expr], value: ast.expr, state: Dict[str, str]
    ) -> None:
        tainted = self._is_taint_source(value) or self._mentions_tainted(
            value, state
        )
        for target in targets:
            if isinstance(target, ast.Name):
                if tainted:
                    state[target.id] = _TAINTED
                else:
                    state.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        if tainted:
                            state[elt.id] = _TAINTED
                        else:
                            state.pop(elt.id, None)

    def _is_taint_source(self, value: ast.expr) -> bool:
        for node in ast.walk(value):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) in _SCALAR_READERS
            ):
                return True
        return False

    def _mentions_tainted(self, node: ast.AST, state: Dict[str, str]) -> bool:
        return any(state.get(n) == _TAINTED for n in _names_in(node))

    # -- guards ------------------------------------------------------------

    def _apply_guards(self, stmt: ast.stmt, state: Dict[str, str]) -> None:
        """A ``*charge*(...)`` call discharges every variable it mentions."""
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and "charge" in _call_name(node):
                for arg in node.args:
                    for name in _names_in(arg):
                        if name in state:
                            state[name] = _GUARDED

    def _handle_if(
        self,
        source: SourceFile,
        stmt: ast.If,
        state: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        self._flag_uses(source, stmt.test, state, findings)
        is_bound_check = any(
            isinstance(n, ast.Raise) for n in ast.walk(stmt)
        ) and isinstance(stmt.test, ast.Compare)
        guarded_names = (
            {n for n in _names_in(stmt.test) if state.get(n) == _TAINTED}
            if is_bound_check
            else set()
        )
        branch_states = []
        for block in (stmt.body, stmt.orelse):
            branch = dict(state)
            self._walk_block(source, block, branch, findings)
            branch_states.append(branch)
        merged: Dict[str, str] = {}
        for name in set(branch_states[0]) | set(branch_states[1]):
            values = {b.get(name) for b in branch_states}
            if _TAINTED in values:
                merged[name] = _TAINTED
            elif _GUARDED in values:
                merged[name] = _GUARDED
        state.clear()
        state.update(merged)
        # ``if count > bound: raise`` proves the bound on the fallthrough.
        for name in guarded_names:
            state[name] = _GUARDED

    # -- allocation sites --------------------------------------------------

    def _flag_uses(
        self,
        source: SourceFile,
        root: ast.AST,
        state: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                # `decode_run*` are the vectorized-kernel entry points
                # (repro.bits.vectorized); same contract as `read_many_*`:
                # the count must be charged before the bulk allocation.
                if name.startswith("read_many") or name.startswith("decode_run"):
                    for arg in node.args[1:]:
                        self._flag_tainted(
                            source,
                            node,
                            arg,
                            state,
                            findings,
                            f"bulk `{name}` sized by `%s` before the "
                            "decode budget is charged",
                        )
                elif name in ("bytes", "bytearray"):
                    for arg in node.args:
                        self._flag_tainted(
                            source,
                            node,
                            arg,
                            state,
                            findings,
                            f"`{name}()` allocation sized by `%s` before "
                            "the decode budget is charged",
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                for seq, count in (
                    (node.left, node.right),
                    (node.right, node.left),
                ):
                    if isinstance(seq, (ast.List, ast.ListComp)):
                        self._flag_tainted(
                            source,
                            node,
                            count,
                            state,
                            findings,
                            "list repetition sized by `%s` before the "
                            "decode budget is charged",
                        )

    def _flag_tainted(
        self,
        source: SourceFile,
        site: ast.AST,
        size_expr: ast.AST,
        state: Dict[str, str],
        findings: List[Finding],
        template: str,
    ) -> None:
        for name in sorted(_names_in(size_expr)):
            if state.get(name) == _TAINTED:
                findings.append(
                    self.finding(source, site, template % name)
                )
                return
