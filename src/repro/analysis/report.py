"""Human and JSON rendering of analysis results."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.framework import Finding, Rule

__all__ = ["render_human", "render_json", "render_github", "render_rule_list"]


def render_human(
    findings: Sequence[Finding],
    errors: Sequence[str],
    accepted: int,
    files_checked: int,
) -> str:
    """One line per finding plus a summary tail line."""
    lines: List[str] = []
    for err in errors:
        lines.append(f"error: {err}")
    for f in findings:
        lines.append(f.render())
    tail = (
        f"{len(findings)} finding(s) in {files_checked} file(s)"
        if findings
        else f"clean: {files_checked} file(s)"
    )
    if accepted:
        tail += f", {accepted} baselined"
    if errors:
        tail += f", {len(errors)} file error(s)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    errors: Sequence[str],
    accepted: int,
    files_checked: int,
) -> str:
    """Machine-readable result document (``--format json`` / ``--json``).

    Keys are sorted and findings arrive pre-sorted by (path, line, rule,
    col) from the engine, so two runs over the same tree produce
    byte-identical documents -- diffable in CI artifacts.
    """
    return json.dumps(
        {
            "files_checked": files_checked,
            "accepted_by_baseline": accepted,
            "errors": list(errors),
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                }
                for f in findings
            ],
        },
        indent=2,
        sort_keys=True,
    )


def _escape_workflow(value: str) -> str:
    """Escape a value for a GitHub Actions workflow-command property."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def render_github(
    findings: Sequence[Finding],
    errors: Sequence[str],
    accepted: int,
    files_checked: int,
) -> str:
    """GitHub Actions annotations (``--format github``).

    Each finding becomes an ``::error`` workflow command so the Checks UI
    anchors it to the offending file and line; the human summary tail is
    kept as a plain line for the raw log.
    """
    lines: List[str] = []
    for err in errors:
        lines.append(f"::error title=repro-analysis::{_escape_workflow(err)}")
    for f in findings:
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.rule}::{_escape_workflow(f.message)}"
        )
    tail = (
        f"{len(findings)} finding(s) in {files_checked} file(s)"
        if findings
        else f"clean: {files_checked} file(s)"
    )
    if accepted:
        tail += f", {accepted} baselined"
    if errors:
        tail += f", {len(errors)} file error(s)"
    lines.append(tail)
    return "\n".join(lines)


def render_rule_list(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` catalog: id, name and summary per rule."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.id} {rule.name}")
        lines.append(f"    {rule.summary}")
    return "\n".join(lines)
