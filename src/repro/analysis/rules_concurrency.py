"""CG001 snapshot discipline and CG002 lock discipline.

Both rules encode the concurrency contract of
:class:`repro.core.compressed.CompressedChronoGraph`:

* Readers must capture the published ``self._state`` snapshot **exactly
  once** per call and work against that local reference; a second read may
  observe a different generation and tear the result (CG001).
* No decode, encode or filesystem work may run while a cache-shard or
  mutate lock is held, and lock acquisition order must be acyclic (CG002).
  The distinct-list lock is exempt from the first clause by design: it is a
  reentrant lock whose purpose is to serialise decode-driven cache warming.

CG002 is a whole-program rule: its call summaries -- which locks a
function acquires, which banned decode/encode/filesystem calls it can
reach -- are computed as a fixpoint over the cross-module call graph
(:mod:`repro.analysis.callgraph`), so a service handler that holds a lock
while calling through the segment store into the codec layer is flagged
even though the three frames live in three modules.  Lock-order edges are
likewise collected project-wide and cycle-checked once, over the union
graph.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    register,
)

__all__ = [
    "SnapshotDisciplineRule",
    "LockDisciplineRule",
    "collect_lock_model",
]

#: The snapshot attribute CG001 protects.
_SNAPSHOT_ATTR = "_state"


def _is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _function_defs(body: List[ast.stmt]) -> Iterator[ast.FunctionDef]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt  # type: ignore[misc]


def _is_property(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "property":
            return True
        # e.g. @functools.cached_property is NOT a repeated-read hazard
        # (one evaluation per instance) so only bare ``property`` counts.
    return False


def _lock_name(expr: ast.AST) -> Optional[str]:
    """The lock identity of an expression, or None if it is not a lock.

    Locks are recognised by naming convention: an attribute or variable
    whose name is ``lock`` or ends with ``_lock`` (``shard.lock``,
    ``self._mutate_lock``, ``self._distinct_lock``).
    """
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is not None and (name == "lock" or name.endswith("_lock")):
        return name
    return None


@register
class SnapshotDisciplineRule(Rule):
    """CG001: capture the published state snapshot exactly once per call."""

    id = "CG001"
    name = "snapshot-discipline"
    summary = (
        "Methods of classes that publish an immutable `_state` snapshot "
        "must read `self._state` (directly or through a state-capturing "
        "property) at most once per call, and never inside a loop."
    )

    def check(self, source: SourceFile) -> List[Finding]:
        """Check every snapshot-publishing class in the file."""
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and self._publishes_snapshot(node):
                findings.extend(self._check_class(source, node))
        return findings

    def _publishes_snapshot(self, cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if (
                _is_self_attr(node, _SNAPSHOT_ATTR)
                and isinstance(node.ctx, ast.Store)  # type: ignore[attr-defined]
            ):
                return True
        return False

    def _capturing_properties(self, cls: ast.ClassDef) -> Set[str]:
        """Properties whose getters transitively read ``self._state``.

        A method that loads such a property re-reads the snapshot just as
        surely as a direct ``self._state`` load; the fixpoint closes over
        properties reading other capturing properties.
        """
        props = {f.name: f for f in _function_defs(cls.body) if _is_property(f)}
        capturing: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, func in props.items():
                if name in capturing:
                    continue
                for node in ast.walk(func):
                    if _is_self_attr(node) and isinstance(node.ctx, ast.Load):  # type: ignore[attr-defined]
                        if node.attr == _SNAPSHOT_ATTR or node.attr in capturing:  # type: ignore[attr-defined]
                            capturing.add(name)
                            changed = True
                            break
        return capturing

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> List[Finding]:
        capturing = self._capturing_properties(cls)
        findings: List[Finding] = []
        frames: List[ast.FunctionDef] = list(_function_defs(cls.body))
        # Nested defs (closures, generators) are their own call frames and
        # are held to the same single-capture contract independently.
        for func in list(frames):
            for node in ast.walk(func):
                if (
                    node is not func
                    and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                ):
                    frames.append(node)  # type: ignore[arg-type]
        for func in frames:
            captures = self._captures(func, capturing)
            loops = [n for n, in_loop in captures if in_loop]
            for n in loops:
                findings.append(
                    self.finding(
                        source,
                        n,
                        f"`{func.name}` reads the `{_SNAPSHOT_ATTR}` snapshot "
                        "inside a loop; capture it once before iterating",
                    )
                )
            if len(captures) > 1:
                extra = captures[1][0]
                findings.append(
                    self.finding(
                        source,
                        extra,
                        f"`{func.name}` reads the `{_SNAPSHOT_ATTR}` snapshot "
                        f"{len(captures)} times (torn read across "
                        "generations); capture `self._state` once and reuse "
                        "the local snapshot",
                    )
                )
        return findings

    def _captures(
        self, func: ast.FunctionDef, capturing: Set[str]
    ) -> List[Tuple[ast.AST, bool]]:
        """(node, inside_loop) for every snapshot read in ``func``.

        Reads under ``with self._mutate_lock`` (any ``*mutate*lock``) are
        exempt: only mutators change ``_state`` and they serialise on that
        lock, so a holder cannot observe a torn pair.  Nested functions are
        separate call frames and are analysed on their own.
        """
        out: List[Tuple[ast.AST, bool]] = []

        def visit(node: Optional[ast.AST], in_loop: bool) -> None:
            if node is None:
                return
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not func
            ):
                return  # separate frame, analysed on its own
            if isinstance(node, ast.With) and any(
                "mutate" in (_lock_name(item.context_expr) or "")
                for item in node.items
            ):
                return  # serialised against mutators; no torn pair
            if isinstance(node, (ast.For, ast.AsyncFor)):
                # The iterator expression evaluates once, before the loop;
                # only target/body re-execute per iteration.
                visit(node.iter, in_loop)
                visit(node.target, True)
                for part in node.body + node.orelse:
                    visit(part, True)
                return
            if isinstance(
                node,
                (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp),
            ):
                # Same shape: the outermost iterable evaluates once.
                gens = node.generators
                visit(gens[0].iter, in_loop)
                for gen in gens[1:]:
                    visit(gen.iter, True)
                for gen in gens:
                    visit(gen.target, True)
                    for cond in gen.ifs:
                        visit(cond, True)
                if isinstance(node, ast.DictComp):
                    visit(node.key, True)
                    visit(node.value, True)
                else:
                    visit(node.elt, True)
                return
            if isinstance(node, ast.While):
                visit(node.test, True)
                for part in node.body + node.orelse:
                    visit(part, True)
                return
            if (
                _is_self_attr(node)
                and isinstance(node.ctx, ast.Load)  # type: ignore[attr-defined]
                and (
                    node.attr == _SNAPSHOT_ATTR  # type: ignore[attr-defined]
                    or node.attr in capturing  # type: ignore[attr-defined]
                )
            ):
                out.append((node, in_loop))
                return  # self._state.num_nodes is still one read
            for child in ast.iter_child_nodes(node):
                visit(child, in_loop)

        visit(func, False)
        return out


#: Call-name prefixes that mean "decode or encode work".
_BANNED_PREFIXES = (
    "decode_",
    "encode_",
    "_decode",
    "_encode",
    "read_many_",
)

#: Exact call names meaning decode/encode/filesystem work.
_BANNED_NAMES = {
    "open",
    "fsync",
    "replace",
    "rename",
    "atomic_write_bytes",
    "atomic_write_text",
    "write_text",
    "write_bytes",
    "save_compressed",
    "load_compressed",
    "compress",
}


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _is_banned(name: str) -> bool:
    return name in _BANNED_NAMES or any(
        name.startswith(p) for p in _BANNED_PREFIXES
    )


class _FunctionSummary:
    """Per-function facts propagated through the cross-module call graph."""

    __slots__ = ("acquires", "bans")

    def __init__(self) -> None:
        self.acquires: Set[str] = set()
        #: banned call names reachable without an intervening exempt lock
        self.bans: Set[str] = set()


class _LockModel:
    """The whole-program lock model CG002 computes in its project phase.

    ``summaries`` maps function qualnames to their fixpoint facts;
    ``order_edges`` maps observed ``(held, acquired)`` pairs to the first
    source location that exhibits them.  The runtime sanitizer
    (:mod:`repro.testing.sanitizer`) cross-checks its observed acquisition
    orders against :attr:`order_edges`.
    """

    def __init__(self) -> None:
        self.summaries: Dict[str, _FunctionSummary] = {}
        self.order_edges: Dict[Tuple[str, str], Tuple[SourceFile, ast.AST]] = {}

    @property
    def edges(self) -> Set[Tuple[str, str]]:
        """The static acquisition-order edge set (held -> acquired)."""
        return set(self.order_edges)


@register
class LockDisciplineRule(Rule):
    """CG002: no decode/encode/filesystem work under shard or mutate locks,
    and no cyclic lock-acquisition order -- checked across modules."""

    id = "CG002"
    name = "lock-discipline"
    summary = (
        "No decode, encode or filesystem call may run while holding a "
        "shard or mutate lock (the reentrant distinct-list lock is exempt "
        "by design), and the lock acquisition order must be acyclic; call "
        "summaries flow through the cross-module call graph."
    )

    def finish(self, project: Project) -> List[Finding]:
        """Fixpoint the summaries, walk every function, then cycle-check."""
        findings, _model = self._analyse(project)
        return findings

    def _analyse(
        self, project: Project
    ) -> Tuple[List[Finding], _LockModel]:
        from repro.analysis.callgraph import CallGraph, FunctionInfo

        graph: CallGraph = project.callgraph
        model = _LockModel()
        model.summaries = self._fixpoint(graph)
        findings: List[Finding] = []
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            self._walk_block(
                info,
                list(info.node.body),  # type: ignore[attr-defined]
                frozenset(),
                graph,
                model,
                findings,
            )
        findings.extend(self._order_cycles(model))
        return findings, model

    # -- cross-module call summaries --------------------------------------

    def _fixpoint(self, graph) -> Dict[str, _FunctionSummary]:
        """Fixpoint of (locks acquired, banned calls reachable) per function.

        Direct facts are gathered once per function; propagation then
        unions callee summaries along resolved call edges until stable.
        Resolution over-approximates (see :mod:`repro.analysis.callgraph`),
        which can only add scrutiny, never hide a banned call.
        """
        summaries: Dict[str, _FunctionSummary] = {}
        adjacency: Dict[str, Tuple[str, ...]] = {}
        for qualname, info in graph.functions.items():
            summary = _FunctionSummary()
            for node in ast.walk(info.node):
                if isinstance(node, ast.With):
                    for item in node.items:
                        lock = _lock_name(item.context_expr)
                        if lock:
                            summary.acquires.add(lock)
                elif isinstance(node, ast.Call):
                    name = _call_name(node)
                    if name is None:
                        continue
                    if name == "acquire" and isinstance(
                        node.func, ast.Attribute
                    ):
                        lock = _lock_name(node.func.value)
                        if lock:
                            summary.acquires.add(lock)
                    elif _is_banned(name):
                        summary.bans.add(name)
            summaries[qualname] = summary
            # Exact edges only: a ubiquitous method name (`extend`, `get`)
            # on a plain container must not drag in every project method
            # of that name and charge its bans to the caller.
            adjacency[qualname] = tuple(
                callee.qualname
                for callee in graph.callees(info, fallback=False)
            )
        changed = True
        while changed:
            changed = False
            for qualname, callees in adjacency.items():
                summary = summaries[qualname]
                before = (len(summary.acquires), len(summary.bans))
                for callee in callees:
                    other = summaries.get(callee)
                    if other is not None:
                        summary.acquires |= other.acquires
                        summary.bans |= other.bans
                if (len(summary.acquires), len(summary.bans)) != before:
                    changed = True
        return summaries

    # -- lock-held walk ----------------------------------------------------

    def _walk_block(
        self,
        info,
        body: List[ast.stmt],
        held: frozenset,
        graph,
        model: _LockModel,
        findings: List[Finding],
    ) -> frozenset:
        """Walk statements propagating the running held-lock set.

        ``with`` bodies see the set plus their lock; bare ``.acquire()`` /
        ``.release()`` statements mutate the running set, which flows out
        of nested control blocks (the acquire-try-finally-release idiom).
        """
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Separate frame: a nested def does not run under our locks
                # at definition time.  Its body is walked lock-free (its
                # call sites resolve through the enclosing function).
                self._walk_block(
                    info, stmt.body, frozenset(), graph, model, findings
                )
                continue
            if isinstance(stmt, ast.With):
                entered = held
                for item in stmt.items:
                    lock = _lock_name(item.context_expr)
                    if lock:
                        self._note_acquire(
                            info, lock, entered, stmt, model
                        )
                        entered = entered | {lock}
                self._walk_block(
                    info, stmt.body, entered, graph, model, findings
                )
                continue
            if isinstance(stmt, (ast.If, ast.While)):
                roots: List[ast.AST] = [stmt.test]
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                roots = [stmt.iter]
            elif isinstance(stmt, ast.Try):
                roots = []
            else:
                roots = [stmt]  # simple statement: scan the whole subtree
            held = self._scan_exprs(
                info, roots, held, graph, model, findings
            )
            for inner in self._inner_blocks(stmt):
                held = self._walk_block(
                    info, inner, held, graph, model, findings
                )
        return held

    def _inner_blocks(self, stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks: List[List[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner and isinstance(inner, list):
                blocks.append(inner)
        for handler in getattr(stmt, "handlers", ()) or ():
            blocks.append(handler.body)
        return blocks

    def _scan_exprs(
        self,
        info,
        roots: List[ast.AST],
        held: frozenset,
        graph,
        model: _LockModel,
        findings: List[Finding],
    ) -> frozenset:
        for node in [n for root in roots for n in ast.walk(root)]:
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name is None:
                continue
            if name == "acquire" and isinstance(node.func, ast.Attribute):
                lock = _lock_name(node.func.value)
                if lock:
                    self._note_acquire(info, lock, held, node, model)
                    held = held | {lock}
                continue
            if name == "release" and isinstance(node.func, ast.Attribute):
                lock = _lock_name(node.func.value)
                if lock:
                    held = held - {lock}
                continue
            callees = graph.resolve(node, info, fallback=False)
            banned_here = self._effective_bans(name, callees, model)
            if banned_here:
                for lock in sorted(held):
                    if "distinct" in lock:
                        continue  # reentrant warm-cache lock: decode allowed
                    detail = (
                        f"`{name}`"
                        if name in banned_here
                        else f"`{name}` (reaches `{sorted(banned_here)[0]}`)"
                    )
                    findings.append(
                        self.finding(
                            info.source,
                            node,
                            f"{detail} runs decode/encode/filesystem work "
                            f"while holding `{lock}`; move it outside the "
                            "critical section",
                        )
                    )
            for callee in callees:
                summary = model.summaries.get(callee.qualname)
                if summary is not None:
                    for lock in summary.acquires:
                        self._note_acquire(info, lock, held, node, model)
        return held

    def _effective_bans(
        self, name: str, callees: Sequence, model: _LockModel
    ) -> Set[str]:
        if _is_banned(name):
            return {name}
        bans: Set[str] = set()
        for callee in callees:
            summary = model.summaries.get(callee.qualname)
            if summary is not None:
                bans |= summary.bans
        return bans

    def _note_acquire(
        self,
        info,
        lock: str,
        held: frozenset,
        node: ast.AST,
        model: _LockModel,
    ) -> None:
        for prior in held:
            if prior != lock:
                model.order_edges.setdefault(
                    (prior, lock), (info.source, node)
                )

    def _order_cycles(self, model: _LockModel) -> List[Finding]:
        graph: Dict[str, Set[str]] = {}
        for a, b in model.order_edges:
            graph.setdefault(a, set()).add(b)
        findings: List[Finding] = []
        seen_cycles: Set[frozenset] = set()
        for start in sorted(graph):
            path: List[str] = []
            on_path: Set[str] = set()

            def dfs(v: str) -> None:
                path.append(v)
                on_path.add(v)
                for w in sorted(graph.get(v, ())):
                    if w in on_path:
                        cycle = path[path.index(w):] + [w]
                        key = frozenset(cycle)
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            source, node = model.order_edges[(v, w)]
                            findings.append(
                                self.finding(
                                    source,
                                    node,
                                    "lock-order cycle: "
                                    + " -> ".join(cycle)
                                    + "; acquisition order must be acyclic",
                                )
                            )
                    else:
                        dfs(w)
                path.pop()
                on_path.discard(v)

            dfs(start)
        return findings


def collect_lock_model(paths: Sequence[str]) -> "_LockModel":
    """Build CG002's static lock model for ``paths`` (sanitizer cross-check).

    Returns the :class:`_LockModel` whose ``edges`` property is the static
    acquisition-order graph the runtime sanitizer validates observed
    orders against.
    """
    from repro.analysis.framework import load_sources

    sources, _errors = load_sources(paths)
    project = Project(sources, ["CG002"])
    rule = LockDisciplineRule()
    _findings, model = rule._analyse(project)
    return model
