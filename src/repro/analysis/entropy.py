"""Empirical-entropy accounting: how close the codes get to optimal.

For a gap sequence with empirical distribution p, no instantaneous code
can spend fewer than ``H(p) = -sum p log2 p`` bits per gap on average.
Comparing ChronoGraph's achieved timestamp bits against this bound shows
how much of the compression potential the ζ codes capture -- the honest
way to judge Figure 7's "codes that consistently work well".
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Sequence

from repro.analysis.gapstats import natural_gaps
from repro.graph.model import TemporalGraph


def empirical_entropy(values: Sequence[int]) -> float:
    """Shannon entropy (bits/symbol) of the empirical distribution."""
    if not values:
        return 0.0
    counts = Counter(values)
    total = len(values)
    return -sum(
        (c / total) * math.log2(c / total) for c in counts.values()
    )


def timestamp_entropy_bound(graph: TemporalGraph, resolution: int = 1) -> float:
    """Entropy (bits/contact) of the previous-strategy gap distribution.

    A zeroth-order bound: it treats gaps as i.i.d. draws, which is what a
    single static ζ code can at best exploit.  Context modelling could go
    lower; no ζ parameter can.
    """
    gaps = natural_gaps(graph, "previous", resolution=resolution)
    return empirical_entropy(gaps)


def code_efficiency(graph: TemporalGraph, resolution: int = 1) -> Dict[str, float]:
    """Achieved vs entropy-bound timestamp bits per contact.

    Returns ``achieved`` (best single ζ over the stream, excluding offsets),
    ``bound`` (zeroth-order entropy) and ``overhead_pct``.  Only meaningful
    for point/incremental graphs, where the stream is gaps alone.
    """
    from repro.core import ChronoGraphConfig, compress

    cg = compress(graph, ChronoGraphConfig(resolution=resolution))
    achieved = cg._tbits / max(1, cg.num_contacts)
    bound = timestamp_entropy_bound(graph, resolution)
    overhead = (achieved / bound - 1.0) * 100.0 if bound > 0 else 0.0
    return {
        "achieved_bits_per_contact": achieved,
        "entropy_bound_bits_per_contact": bound,
        "overhead_pct": overhead,
        "zeta_k": cg.config.timestamp_zeta_k,
    }
