"""Burstiness measures for contact processes.

Section IV-A grounds ChronoGraph's gap coding in the burstiness of human
activity, citing the burstiness literature (Ubaldi et al.).  The standard
measure is Goh & Barabasi's coefficient over the inter-event times of a
process::

    B = (sigma - mu) / (sigma + mu)

B -> -1 for perfectly regular processes, 0 for Poisson, -> 1 for extremely
bursty ones.  These helpers compute it per node and per edge so datasets
can be validated against the property the codec exploits.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.graph.model import TemporalGraph


def burstiness_coefficient(inter_event_times: List[int]) -> float:
    """Goh-Barabasi B of one inter-event time sequence.

    Needs at least two gaps; degenerate all-equal sequences give -1
    (perfectly regular).
    """
    if len(inter_event_times) < 2:
        raise ValueError("need at least two inter-event times")
    n = len(inter_event_times)
    mu = sum(inter_event_times) / n
    var = sum((x - mu) ** 2 for x in inter_event_times) / n
    sigma = math.sqrt(var)
    if sigma + mu == 0:
        return -1.0
    return (sigma - mu) / (sigma + mu)


def node_burstiness(graph: TemporalGraph, min_events: int = 4) -> Dict[int, float]:
    """B per node over its chronological contact times."""
    out: Dict[int, float] = {}
    for u in graph.active_nodes():
        times = sorted(c.time for c in graph.contacts_of(u))
        if len(times) < min_events:
            continue
        gaps = [b - a for a, b in zip(times, times[1:])]
        if len(gaps) >= 2:
            out[u] = burstiness_coefficient(gaps)
    return out


def edge_burstiness(
    graph: TemporalGraph, min_events: int = 4
) -> Dict[Tuple[int, int], float]:
    """B per edge over its recurrence times (the paper's phone-call story)."""
    per_edge: Dict[Tuple[int, int], List[int]] = {}
    for c in graph.contacts:
        per_edge.setdefault((c.u, c.v), []).append(c.time)
    out: Dict[Tuple[int, int], float] = {}
    for edge, times in per_edge.items():
        if len(times) < min_events:
            continue
        times.sort()
        gaps = [b - a for a, b in zip(times, times[1:])]
        if len(gaps) >= 2:
            out[edge] = burstiness_coefficient(gaps)
    return out


def mean_burstiness(values: Dict) -> float:
    """Average B over a per-node or per-edge map (0.0 when empty)."""
    if not values:
        return 0.0
    return sum(values.values()) / len(values)
