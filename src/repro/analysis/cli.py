"""Command-line driver: ``python -m repro.analysis [paths]``.

Exit codes: 0 clean, 1 findings (or file errors), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import report
from repro.analysis.framework import Rule, all_rules, collect_files, run_rules

__all__ = ["main"]

_DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-specific static analysis: snapshot discipline "
            "(CG001), lock discipline (CG002), exception taxonomy "
            "(CG003), atomic writes (CG004), decode-budget charging "
            "(CG005), buffer-copy discipline (CG006), checkpoint "
            "coverage (CG007), resource lifecycle (CG008), stale "
            "suppressions (CG009)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files or directories to analyse (default: src benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default=None,
        help=(
            "output format: human (default), json (stable machine-readable "
            "document), github (workflow-command annotations for Actions)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--baseline",
        default=_DEFAULT_BASELINE,
        help=f"baseline file of accepted findings (default: {_DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline file and exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    return parser


def _selected_rules(
    select: Optional[str], ignore: Optional[str]
) -> Optional[List[Rule]]:
    rules = all_rules()
    known = {r.id for r in rules}

    def parse(raw: Optional[str]) -> Optional[List[str]]:
        if raw is None:
            return None
        ids = [part.strip() for part in raw.split(",") if part.strip()]
        unknown = [i for i in ids if i not in known]
        if unknown:
            raise SystemExit(
                f"error: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return ids

    try:
        selected = parse(select)
        ignored = parse(ignore) or []
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        raise SystemExit(2) from exc
    if selected is not None:
        rules = [r for r in rules if r.id in selected]
    return [r for r in rules if r.id not in ignored]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the analyzer; returns the process exit code (0/1/2)."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(report.render_rule_list(all_rules()))
        return 0

    rules = _selected_rules(args.select, args.ignore)
    findings, errors = run_rules(args.paths, rules)
    files_checked = len(collect_files(args.paths))

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        count = baseline_mod.write_baseline(baseline_path, findings)
        print(f"wrote {count} entr{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    accepted = 0
    if not args.no_baseline:
        try:
            entries = baseline_mod.load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, accepted = baseline_mod.filter_findings(findings, entries)

    fmt = args.format or ("json" if args.json else "human")
    if args.format and args.json and args.format != "json":
        print("error: --json conflicts with --format " + args.format, file=sys.stderr)
        return 2
    render = {
        "human": report.render_human,
        "json": report.render_json,
        "github": report.render_github,
    }[fmt]
    print(render(findings, errors, accepted, files_checked))
    return 1 if findings or errors else 0
