"""ChronoGraph: compressing temporal graphs (reproduction of Liakos et al., ICDE 2022).

Public API quick reference::

    from repro import ChronoGraphConfig, compress
    from repro.graph import GraphKind, TemporalGraphBuilder

    g = (TemporalGraphBuilder(GraphKind.POINT)
         .add(0, 1, 1_209_479_772)
         .add(0, 2, 1_209_479_933)
         .build())
    cg = compress(g, ChronoGraphConfig(timestamp_zeta_k=4))
    cg.neighbors(0, 1_209_479_000, 1_209_480_000)
    cg.has_edge(0, 2, 1_209_479_900, 1_209_479_999)
    cg.bits_per_contact

Subpackages:

* :mod:`repro.core` -- the ChronoGraph compressor itself.
* :mod:`repro.graph` -- temporal graph model, IO and aggregation.
* :mod:`repro.bits` -- bit streams, instantaneous codes, Elias-Fano.
* :mod:`repro.structures` -- wavelet trees, k^d-trees, CBTs, Huffman.
* :mod:`repro.baselines` -- EveLog, EdgeLog, CET, CAS, ck^d-trees, T-ABT,
  Raw and Gzip, all behind one compressor interface.
* :mod:`repro.datasets` -- the paper's synthetic datasets and scaled
  stand-ins for its real-world traces.
* :mod:`repro.analysis` -- timestamp gap analysis (Figures 2-4).
* :mod:`repro.algorithms` -- PageRank, communities, reachability, anomaly
  detection on compressed graphs.
* :mod:`repro.bench` -- harness regenerating every table and figure.
"""

from repro.core import (
    ChronoGraphConfig,
    CompressedChronoGraph,
    GrowableChronoGraph,
    compress,
    load_compressed,
    save_compressed,
)
from repro.errors import FormatError
from repro.graph import Contact, GraphKind, TemporalGraph, TemporalGraphBuilder

__version__ = "1.0.0"

__all__ = [
    "ChronoGraphConfig",
    "CompressedChronoGraph",
    "GrowableChronoGraph",
    "FormatError",
    "compress",
    "load_compressed",
    "save_compressed",
    "Contact",
    "GraphKind",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "__version__",
]
