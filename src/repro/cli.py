"""Command-line interface: generate, compress, inspect, query, sweep.

Usage (also via ``python -m repro``)::

    python -m repro generate yahoo-sub --scale 0.2 --out flows.txt
    python -m repro compress flows.txt --out flows.chrono --resolution 60
    python -m repro inspect flows.chrono
    python -m repro query flows.chrono neighbors 17 100 200
    python -m repro query flows.chrono edge 17 44 100 200
    python -m repro sweep yahoo-sub --scale 0.2
    python -m repro gapstats flows.txt --strategy previous
    python -m repro ingest flows.chrono new_flows.txt
    python -m repro recover flows.chrono
    python -m repro compact flows.chrono
    python -m repro ingest --init flows.store new_flows.txt
    python -m repro status flows.store

Every subcommand is a thin shell over the library API so scripted use and
programmatic use stay equivalent.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.analysis.gapstats import GAP_STRATEGIES, fraction_below, natural_gaps
from repro.analysis.powerlawfit import fit_discrete_power_law
from repro.baselines import get_compressor
from repro.bench.harness import BENCH_METHODS, format_table
from repro.core import ChronoGraphConfig, compress, compress_parallel
from repro.core.serialize import load_compressed, save_compressed
from repro.errors import (
    ChecksumMismatchError,
    CorruptStreamError,
    LimitExceededError,
)
from repro.datasets import dataset_names, load
from repro.graph.io import read_contact_text, write_contact_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ChronoGraph temporal graph compression toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a named dataset as a contact list")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--out", required=True)

    p = sub.add_parser("compress", help="compress a contact list to .chrono")
    p.add_argument("input")
    p.add_argument("--out", required=True)
    p.add_argument("--resolution", type=int, default=1,
                   help="time aggregation divisor (Section IV-C)")
    p.add_argument("--zeta", type=int, default=None,
                   help="timestamp zeta parameter; default auto-tunes")
    p.add_argument("--window", type=int, default=7,
                   help="reference window (Section IV-D2)")
    p.add_argument("--workers", type=int, default=1,
                   help="encoder worker processes; output is bit-identical "
                        "to the single-process encoder")

    p = sub.add_parser("inspect", help="print a .chrono file's statistics")
    p.add_argument("input")

    p = sub.add_parser("query", help="run a neighbor or edge query")
    p.add_argument("input",
                   help=".chrono file, segment store dir, or tcp://host:port "
                        "of a running `repro serve`")
    p.add_argument("kind", choices=["neighbors", "edge", "timestamps"])
    p.add_argument("args", nargs="+", type=int,
                   help="neighbors: u t1 t2 | edge: u v t1 t2 | timestamps: u v")
    p.add_argument("--tenant", default=None,
                   help="tenant budget key (tcp:// targets only)")
    p.add_argument("--timeout-ms", type=int, default=None,
                   help="server-side deadline (tcp:// targets only)")
    p.add_argument("--allow-partial", action="store_true",
                   help="accept breaker-annotated subset answers "
                        "(tcp:// targets only)")

    p = sub.add_parser(
        "serve",
        help="serve a .chrono file or segment store over TCP "
             "(multi-process, memory-mapped)",
    )
    p.add_argument("input", help=".chrono file or segment store directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port and prints it")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes sharing one mapped store")
    p.add_argument("--max-concurrent", type=int, default=64,
                   help="per-worker admission cap before shedding")
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="per-tenant sustained queries/second")
    p.add_argument("--tenant-burst", type=float, default=None,
                   help="per-tenant burst budget")
    p.add_argument("--max-timeout", type=float, default=30.0,
                   help="ceiling on client-requested deadlines, seconds")
    p.add_argument("--no-mmap", action="store_true",
                   help="load the store into each worker's heap instead "
                        "of memory-mapping it")

    p = sub.add_parser("sweep", help="Table IV row: every method on one dataset")
    p.add_argument("dataset", choices=dataset_names())
    p.add_argument("--scale", type=float, default=0.3)
    p.add_argument("--methods", nargs="*", default=list(BENCH_METHODS))

    p = sub.add_parser("gapstats", help="timestamp gap analysis (Figures 2-4)")
    p.add_argument("input", help="contact list file")
    p.add_argument("--strategy", choices=GAP_STRATEGIES, default="previous")
    p.add_argument("--resolution", type=int, default=1)

    p = sub.add_parser("stats", help="Table III-style summary of a contact list")
    p.add_argument("input", help="contact list file")

    p = sub.add_parser(
        "report", help="summarise benchmarks/out/ results (run the benches first)"
    )
    p.add_argument("--dir", default=None, help="alternative results directory")

    p = sub.add_parser("verify", help="validate a .chrono file's integrity")
    p.add_argument("input", help=".chrono file")
    p.add_argument("--against", default=None,
                   help="contact list to diff the decoded graph against")
    p.add_argument("--deep", action="store_true",
                   help="additionally decode every node front to back")
    p.add_argument("--salvage", action="store_true",
                   help="best-effort decode; report the longest valid prefix")

    p = sub.add_parser(
        "ingest",
        help="append contacts to a .chrono WAL or a segment store directory",
    )
    p.add_argument("base", help=".chrono base snapshot or segment store dir")
    p.add_argument("input", help="contact list with the new contacts")
    p.add_argument("--wal", default=None, help="WAL path (default: <base>.wal)")
    p.add_argument("--batch", type=int, default=1024,
                   help="contacts per committed (fsynced) batch")
    p.add_argument("--init", action="store_true",
                   help="create a new segment store directory at BASE "
                        "(kind and resolution taken from the input)")
    p.add_argument("--resolution", type=int, default=1,
                   help="time aggregation divisor for a new store (--init)")
    p.add_argument("--seal", type=int, default=4096,
                   help="tail contacts per sealed segment (store ingest)")

    p = sub.add_parser(
        "recover",
        help="replay a .chrono WAL (or recover a segment store) and "
             "report what survives",
    )
    p.add_argument("base", help=".chrono base snapshot or segment store dir")
    p.add_argument("--wal", default=None, help="WAL path (default: <base>.wal)")
    p.add_argument("--repair", action="store_true",
                   help="truncate a torn WAL tail in place / apply segment "
                        "store repairs (quarantine renames, orphan sweeps)")

    p = sub.add_parser(
        "compact",
        help="fold base+WAL into a fresh snapshot, or seal and merge a "
             "segment store's segments",
    )
    p.add_argument("base", help=".chrono base snapshot or segment store dir")
    p.add_argument("--wal", default=None, help="WAL path (default: <base>.wal)")

    p = sub.add_parser(
        "status",
        help="print a segment store's health report (read-only)",
    )
    p.add_argument("store", help="segment store directory")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report: health, per-segment "
                        "breaker states, governor stats and the resolved "
                        "decode kernel")

    p = sub.add_parser(
        "figures", help="export figure series (CSV) and tables (LaTeX)"
    )
    p.add_argument("--out", required=True, help="directory for the output files")
    p.add_argument("--dir", default=None, help="alternative results directory")
    p.add_argument("--latex", action="store_true",
                   help="also write LaTeX tabulars for Tables IV and V")

    return parser


def _cmd_generate(args) -> int:
    graph = load(args.dataset, scale=args.scale)
    write_contact_text(graph, args.out)
    print(f"{args.dataset}: wrote {graph.num_contacts} contacts "
          f"({graph.num_nodes} nodes, kind={graph.kind.value}) to {args.out}")
    return 0


def _cmd_compress(args) -> int:
    graph = read_contact_text(args.input)
    config = ChronoGraphConfig(
        resolution=args.resolution,
        timestamp_zeta_k=args.zeta,
        window=args.window,
    )
    start = time.perf_counter()
    if getattr(args, "workers", 1) and args.workers > 1:
        cg = compress_parallel(graph, config, workers=args.workers)
    else:
        cg = compress(graph, config)
    elapsed = time.perf_counter() - start
    nbytes = save_compressed(cg, args.out)
    print(f"compressed {graph.num_contacts} contacts in {elapsed:.2f}s")
    print(f"  {cg.bits_per_contact:.2f} bits/contact "
          f"(timestamps {cg.timestamp_bits_per_contact:.2f}), "
          f"zeta k={cg.config.timestamp_zeta_k}")
    print(f"  wrote {nbytes} bytes to {args.out}")
    return 0


def _cmd_inspect(args) -> int:
    cg = load_compressed(args.input)
    rows = [
        ["name", cg.name],
        ["kind", cg.kind.value],
        ["nodes", f"{cg.num_nodes:,}"],
        ["contacts", f"{cg.num_contacts:,}"],
        ["t_min", str(cg.t_min)],
        ["bits/contact", f"{cg.bits_per_contact:.2f}"],
        ["structure bits", f"{cg.structure_size_bits:,}"],
        ["timestamp bits", f"{cg.timestamp_size_bits:,}"],
        ["zeta k (gaps)", str(cg.config.timestamp_zeta_k)],
        ["zeta k (durations)", str(cg.config.duration_zeta_k)],
        ["resolution", str(cg.config.resolution)],
        ["reference window", str(cg.config.window)],
    ]
    print(format_table(["field", "value"], rows, title=args.input))
    return 0


def _cmd_serve(args) -> int:
    from repro.service.server import GraphService, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_concurrent=args.max_concurrent,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        max_timeout=args.max_timeout,
        mmap=not args.no_mmap,
    )
    service = GraphService(args.input, config)
    host, port = service.start()
    mode = "heap" if args.no_mmap else "mmap"
    print(
        f"serving {args.input} on tcp://{host}:{port} "
        f"({config.workers} worker(s), {mode})",
        flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
    return 0


def _query_remote(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    with ServiceClient.from_url(
        args.input,
        tenant=args.tenant,
        timeout_ms=args.timeout_ms,
        allow_partial=args.allow_partial,
    ) as client:
        try:
            if args.kind == "neighbors":
                if len(args.args) != 3:
                    print("neighbors query needs: u t_start t_end", file=sys.stderr)
                    return 2
                result = client.neighbors(*args.args)
                print(" ".join(map(str, result)) if result else "(none)")
            elif args.kind == "edge":
                if len(args.args) != 4:
                    print("edge query needs: u v t_start t_end", file=sys.stderr)
                    return 2
                print("active" if client.has_edge(*args.args) else "inactive")
            else:
                if len(args.args) != 2:
                    print("timestamps query needs: u v", file=sys.stderr)
                    return 2
                result = client.edge_timestamps(*args.args)
                print(" ".join(map(str, result)) if result else "(none)")
        except ServiceError as exc:
            hint = (
                f" (retry in {exc.retry_after:.3g}s)"
                if exc.retry_after is not None else ""
            )
            print(f"error: {exc}{hint}", file=sys.stderr)
            return 2
        for skip in client.last_skipped:
            print(
                f"note: part {skip['part']} skipped: {skip['reason']}",
                file=sys.stderr,
            )
    return 0


def _cmd_query(args) -> int:
    if args.input.startswith("tcp://"):
        return _query_remote(args)
    cg = load_compressed(args.input)
    if args.kind == "neighbors":
        if len(args.args) != 3:
            print("neighbors query needs: u t_start t_end", file=sys.stderr)
            return 2
        u, t1, t2 = args.args
        result = cg.neighbors(u, t1, t2)
        print(" ".join(map(str, result)) if result else "(none)")
    elif args.kind == "edge":
        if len(args.args) != 4:
            print("edge query needs: u v t_start t_end", file=sys.stderr)
            return 2
        u, v, t1, t2 = args.args
        print("active" if cg.has_edge(u, v, t1, t2) else "inactive")
    else:
        if len(args.args) != 2:
            print("timestamps query needs: u v", file=sys.stderr)
            return 2
        u, v = args.args
        result = cg.edge_timestamps(u, v)
        print(" ".join(map(str, result)) if result else "(none)")
    return 0


def _cmd_sweep(args) -> int:
    graph = load(args.dataset, scale=args.scale)
    rows = []
    for method in args.methods:
        compressor = get_compressor(method)
        start = time.perf_counter()
        compressed = compressor.compress(graph)
        elapsed = time.perf_counter() - start
        rows.append([
            method,
            f"{compressed.bits_per_contact:.2f}",
            f"{elapsed:.3f}",
        ])
    print(format_table(
        ["method", "bits/contact", "compress s"],
        rows,
        title=f"{args.dataset} (scale {args.scale}, "
              f"{graph.num_contacts} contacts)",
    ))
    return 0


def _cmd_gapstats(args) -> int:
    graph = read_contact_text(args.input)
    gaps = natural_gaps(graph, args.strategy, resolution=args.resolution)
    if not gaps:
        print("no contacts")
        return 0
    rows = [
        ["samples", f"{len(gaps):,}"],
        ["mean", f"{sum(gaps)/len(gaps):,.1f}"],
        ["max", f"{max(gaps):,}"],
        ["< 100", f"{fraction_below(gaps, 100)*100:.1f}%"],
        ["< 10000", f"{fraction_below(gaps, 10_000)*100:.1f}%"],
    ]
    try:
        fit = fit_discrete_power_law(gaps)
        rows.append(["power-law alpha", f"{fit.alpha:.2f}"])
    except ValueError:
        rows.append(["power-law alpha", "n/a (too few tail samples)"])
    print(format_table(
        ["statistic", "value"], rows,
        title=f"{args.input} -- {args.strategy} strategy, "
              f"resolution {args.resolution}",
    ))
    return 0


def _cmd_stats(args) -> int:
    from repro.analysis.burstiness import mean_burstiness, node_burstiness
    from repro.graph.stats import TABLE3_HEADERS, summarize

    graph = read_contact_text(args.input)
    summary = summarize(graph)
    print(format_table(TABLE3_HEADERS, [summary.as_row()], title=args.input))
    burst = mean_burstiness(node_burstiness(graph))
    print(f"max out-degree: {summary.max_out_degree}")
    print(f"mean node burstiness (Goh-Barabasi B): {burst:+.3f}")
    return 0


def _cmd_report(args) -> int:
    import pathlib

    from repro.bench.report import render_summary

    directory = pathlib.Path(args.dir) if args.dir else None
    print(render_summary(directory))
    return 0


def _cmd_verify(args) -> int:
    # Exit codes: 0 the container is sound, 1 it loaded or parsed as
    # corrupt, 2 it could not be read at all (missing file, bad magic,
    # truncated header, unknown version -- raised and mapped in main()).
    from repro.core.validate import salvage_scan, validate_compressed

    if args.salvage:
        report = load_compressed(args.input, salvage=True)
        print(report.summary())
        if report.graph is None:
            return 2
        return 0 if report.ok else 1

    try:
        compressed = load_compressed(args.input)
    except (ChecksumMismatchError, CorruptStreamError, LimitExceededError) as exc:
        print(f"corrupt: {exc}", file=sys.stderr)
        return 1

    if args.deep:
        scan = salvage_scan(compressed)
        if not scan.ok:
            for error in scan.errors:
                print(f"ERROR: {error}", file=sys.stderr)
            return 1
        print(f"deep scan: all {scan.nodes_recovered} nodes decode cleanly")

    reference = read_contact_text(args.against) if args.against else None
    report = validate_compressed(compressed, reference)
    print(f"checked {report.nodes_checked} nodes / "
          f"{report.contacts_checked} contacts")
    if report.ok:
        print("OK")
        return 0
    for error in report.errors:
        print(f"ERROR: {error}")
    return 1


def _cmd_ingest(args) -> int:
    # Exit codes: 0 all contacts committed; 2 unreadable input/base/WAL,
    # kind mismatch, or a WAL bound to a different snapshot (raised as
    # FormatError/OSError and mapped in main()).
    from repro.graph.aggregate import _aggregate_duration
    from repro.graph.model import Contact, GraphKind
    from repro.storage.recovery import default_wal_path, open_for_ingest
    from repro.storage.segments import is_segment_store

    if args.init or is_segment_store(args.base):
        return _cmd_ingest_store(args)

    incoming = read_contact_text(args.input)
    graph, wal = open_for_ingest(args.base, args.wal)
    try:
        if incoming.kind is not graph.kind:
            print(f"error: {args.input} is {incoming.kind.value} but "
                  f"{args.base} is {graph.kind.value}", file=sys.stderr)
            return 2
        # Bucket at ingest, exactly like GrowableChronoGraph.add_contact:
        # the WAL stores contacts in the base snapshot's stored time units.
        resolution = graph.config.resolution
        interval = graph.kind is GraphKind.INTERVAL
        batch_size = max(1, args.batch)
        committed = 0
        for c in incoming.contacts:
            if resolution > 1:
                duration = (
                    _aggregate_duration(c.time, c.duration, resolution)
                    if interval else 0
                )
                c = Contact(c.u, c.v, c.time // resolution, duration)
            wal.append([c])
            if wal.pending_contacts >= batch_size:
                committed += wal.commit()
        committed += wal.commit()
        wal_path = args.wal or default_wal_path(args.base)
        print(f"ingested {committed} contacts into {wal_path} "
              f"(generation {wal.header.generation})")
        if wal.repaired_bytes:
            print(f"  repaired: dropped {wal.repaired_bytes} torn trailing "
                  f"bytes before appending")
    finally:
        wal.close()
    return 0


def _cmd_ingest_store(args) -> int:
    # Segment store variant: contacts land in the hot WAL tail and seal
    # into immutable segments past --seal.  Exit codes: 0 committed;
    # 1 committed into a degraded store (reported); 2 unreadable inputs,
    # kind mismatch, or backpressure (mapped in main()).
    from repro.core.config import ChronoGraphConfig
    from repro.storage.segments import SegmentStore, StorePolicy, is_segment_store

    incoming = read_contact_text(args.input)
    policy = StorePolicy(seal_contacts=max(1, args.seal))
    if is_segment_store(args.base):
        store = SegmentStore.open(args.base, policy=policy)
    elif args.init:
        config = ChronoGraphConfig(resolution=args.resolution)
        store = SegmentStore.create(
            args.base, incoming.kind, config, policy=policy
        )
        print(f"created segment store at {args.base} "
              f"(kind={incoming.kind.value}, resolution={args.resolution})")
    else:  # pragma: no cover - dispatch guarantees one of the above
        raise ValueError(f"{args.base} is not a segment store")
    try:
        if incoming.kind is not store.manifest.kind:
            print(f"error: {args.input} is {incoming.kind.value} but "
                  f"{args.base} is {store.manifest.kind.value}",
                  file=sys.stderr)
            return 2
        committed = 0
        batch_size = max(1, args.batch)
        contacts = incoming.contacts
        for start in range(0, len(contacts), batch_size):
            committed += store.ingest(contacts[start : start + batch_size])
        health = store.health()
        print(f"ingested {committed} contacts into {args.base} "
              f"(generation {health.generation}, {health.segments} "
              f"segment(s), {health.tail_contacts} in tail)")
        if not health.ok:
            print(health.summary(), file=sys.stderr)
            return 1
        return 0
    finally:
        store.close()


def _cmd_recover(args) -> int:
    # Exit codes: 0 clean replay; 1 recovered with loss (torn tail or a
    # superseded log); 2 base or WAL header unreadable, or generation
    # mismatch (raised and mapped in main()).
    import pathlib

    from repro.storage.recovery import default_wal_path, open_with_wal
    from repro.storage.segments import SegmentStore, is_segment_store
    from repro.storage.wal import repair_torn_tail, scan_wal

    if is_segment_store(args.base):
        # Without --repair the walk is read-only: report, change nothing.
        with SegmentStore.open(args.base, read_only=not args.repair) as store:
            health = store.health()
        print(health.summary())
        return 0 if health.ok else 1

    _, report = open_with_wal(args.base, args.wal)
    print(report.summary())
    if args.repair and report.torn:
        wal_path = (
            pathlib.Path(args.wal) if args.wal
            else default_wal_path(args.base)
        )
        dropped = repair_torn_tail(wal_path, scan_wal(wal_path))
        print(f"repaired: truncated {dropped} trailing bytes from {wal_path}")
    return 0 if report.ok else 1


def _cmd_compact(args) -> int:
    # Exit codes: 0 compacted cleanly; 1 compacted, but the replay dropped
    # a torn tail or ignored a superseded log (loss is reported, never
    # silent); 2 unreadable inputs (mapped in main()).
    from repro.storage.recovery import compact
    from repro.storage.segments import SegmentStore, is_segment_store

    if is_segment_store(args.base):
        with SegmentStore.open(args.base) as store:
            merges = store.compact_all()
            health = store.health()
        print(f"compacted {args.base}: {merges} merge(s), "
              f"{health.segments} segment(s) remain "
              f"(generation {health.generation})")
        if not health.ok:
            print(health.summary(), file=sys.stderr)
            return 1
        return 0

    result = compact(args.base, args.wal)
    print(result.summary())
    return 0 if result.report.ok else 1


def _cmd_status(args) -> int:
    # Exit codes: 0 full service; 1 degraded (quarantine, a sick
    # compactor, or an open circuit breaker); 2 not a store / unreadable
    # manifest (mapped in main()).  Identical semantics for --json.
    import dataclasses as _dataclasses
    import json as _json

    from repro.bits import kernels
    from repro.runtime.governor import default_governor
    from repro.storage.segments import SegmentStore, is_segment_store

    if not is_segment_store(args.store):
        print(f"error: {args.store} is not a segment store "
              "(no MANIFEST file)", file=sys.stderr)
        return 2
    with SegmentStore.open(args.store, read_only=True) as store:
        health = store.health()
    if args.json:
        doc = {
            "health": _dataclasses.asdict(health),
            "ok": health.ok,
            "governor": default_governor().stats(),
            "decode_kernel": kernels.kernel_info(),
        }
        print(_json.dumps(doc, indent=2, sort_keys=True, default=str))
    else:
        print(health.summary())
    return 0 if health.ok else 1


def _cmd_figures(args) -> int:
    import pathlib

    from repro.bench.export import export_figures

    results_dir = pathlib.Path(args.dir) if args.dir else None
    written = export_figures(pathlib.Path(args.out), results_dir)
    if args.latex:
        from repro.bench.latex import export_latex

        written += export_latex(pathlib.Path(args.out), results_dir)
    if not written:
        print("no figure results found; run: pytest benchmarks/ --benchmark-only")
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "compress": _cmd_compress,
    "inspect": _cmd_inspect,
    "query": _cmd_query,
    "serve": _cmd_serve,
    "sweep": _cmd_sweep,
    "gapstats": _cmd_gapstats,
    "stats": _cmd_stats,
    "report": _cmd_report,
    "verify": _cmd_verify,
    "ingest": _cmd_ingest,
    "recover": _cmd_recover,
    "compact": _cmd_compact,
    "status": _cmd_status,
    "figures": _cmd_figures,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    User-input failures (missing files, malformed containers, bad values)
    print one diagnostic line and return 2; programming errors propagate.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, OSError) as exc:
        # FormatError subclasses ValueError, so malformed inputs and
        # unreadable paths (PermissionError et al.) land here: one line,
        # no traceback.  Embedded newlines are flattened so the one-line
        # contract holds for any message.
        message = " ".join(str(exc).split()) or type(exc).__name__
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
