"""The Raw and Gzip reference points of Table IV.

*Raw* measures the plain-text contact list exactly as distributed (one
``u v t [dt]`` line per contact); *Gzip* measures its zlib-compressed size.
Both delegate queries to the uncompressed reference implementation -- they
are size baselines, not competitive query structures (the paper reports no
access times for them either).
"""

from __future__ import annotations

import zlib
from typing import List

from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.graph.io import contacts_as_text
from repro.graph.model import TemporalGraph


class _DelegatingGraph(CompressedTemporalGraph):
    """Size wrapper that answers queries through the reference graph."""

    def __init__(self, graph: TemporalGraph, size_bits: int) -> None:
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts
        self._graph = graph
        self._size_bits = size_bits

    @property
    def size_in_bits(self) -> int:
        return self._size_bits

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        return self._graph.ref_neighbors(u, t_start, t_end)

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        return self._graph.ref_has_edge(u, v, t_start, t_end)


@register
class RawCompressor(TemporalGraphCompressor):
    """The uncompressed plain-text contact list."""

    name = "Raw"
    features = CompressorFeatures(timestamps=True)

    def compress(self, graph: TemporalGraph) -> _DelegatingGraph:
        text = contacts_as_text(graph, header=False)
        return _DelegatingGraph(graph, 8 * len(text.encode("ascii")))


@register
class GzipCompressor(TemporalGraphCompressor):
    """zlib over the plain-text contact list (the paper's Gzip column)."""

    name = "Gzip"
    features = CompressorFeatures(timestamps=True)

    def __init__(self, level: int = 9) -> None:
        self._level = level

    def compress(self, graph: TemporalGraph) -> _DelegatingGraph:
        text = contacts_as_text(graph, header=False).encode("ascii")
        compressed = zlib.compress(text, self._level)
        return _DelegatingGraph(graph, 8 * len(compressed))
