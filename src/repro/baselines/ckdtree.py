"""ck^d-trees (Caro, Rodríguez, Brisaboa, Fariña).

The temporal graph becomes a set of points in a d-dimensional grid stored
in a k^d-tree (:mod:`repro.structures.kdtree`):

* point / incremental graphs: 3-d points ``(u, v, t)``;
* interval graphs: 4-d points ``(u, v, start, last)`` per merged activity
  interval, where ``last = end - 1`` is the final active instant, so an
  interval overlaps the window ``[t1, t2]`` iff ``start <= t2`` and
  ``last >= t1`` -- a single orthogonal box query.

The paper notes the method trades access time for space in sparse temporal
graphs; the recursive box traversals below show exactly that behaviour.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.events import merged_intervals
from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.graph.model import GraphKind, TemporalGraph
from repro.structures.kdtree import KdTree


class CompressedCKD(CompressedTemporalGraph):
    """Queryable ck^d-tree representation."""

    def __init__(self, graph: TemporalGraph) -> None:
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts
        if graph.kind is GraphKind.INTERVAL:
            points: List[Tuple[int, ...]] = []
            for (u, v), intervals in merged_intervals(graph).items():
                for start, end in intervals:
                    points.append((u, v, start, end - 1))
            dims = 4
            top = max(
                (max(p) for p in points),
                default=max(1, graph.num_nodes - 1),
            )
        else:
            points = [(c.u, c.v, c.time) for c in graph.contacts]
            dims = 3
            top = max(
                (max(p) for p in points),
                default=max(1, graph.num_nodes - 1),
            )
        side_bits = max(1, top.bit_length())
        self._tree = KdTree(points, dims=dims, side_bits=side_bits)
        self._t_top = (1 << side_bits) - 1

    @property
    def size_in_bits(self) -> int:
        return self._tree.size_in_bits()

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _box(self, u: int, v_range: Tuple[int, int], t_start: int, t_end: int):
        if self.kind is GraphKind.POINT:
            return [(u, u), v_range, (t_start, t_end)]
        if self.kind is GraphKind.INCREMENTAL:
            return [(u, u), v_range, (0, t_end)]
        return [(u, u), v_range, (0, t_end), (t_start, self._t_top)]

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        if t_end < t_start:
            return False
        return self._tree.count_in_box(self._box(u, (v, v), t_start, t_end)) > 0

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        if t_end < t_start:
            return []
        box = self._box(u, (0, self.num_nodes - 1), t_start, t_end)
        hits = self._tree.report_in_box(box)
        out: List[int] = []
        for p in hits:
            if not out or out[-1] != p[1]:
                out.append(p[1])
        return out


@register
class CKDTreeCompressor(TemporalGraphCompressor):
    """Compressed k^d-tree baseline."""

    name = "ckd-trees"
    features = CompressorFeatures()

    def compress(self, graph: TemporalGraph) -> CompressedCKD:
        self.check_supported(graph)
        return CompressedCKD(graph)
