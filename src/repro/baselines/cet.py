"""CET (Compact Events ordered by Time, Caro et al.).

CET stores the graph as one global chronological log of events whose
(u, v) pairs live in an *interleaved wavelet tree*; the log positions are
time-ordered, so a time interval maps to a position range by binary search
over the (monotone, hence Elias-Fano-compressible) event time sequence.

* point / incremental: one event per contact; an edge is active in a window
  iff it has an event in the corresponding position range.
* interval: activation/deactivation event pairs; an edge is active at ``t``
  iff the number of its events in positions ``[0, pos(t)]`` is odd (the
  parity convention), and active in a window iff active at its start or it
  has any event inside the window.
"""

from __future__ import annotations

import bisect
from typing import List

from repro.baselines.events import edge_events
from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.bits.eliasfano import EliasFano
from repro.graph.model import GraphKind, TemporalGraph
from repro.structures.interleaved import InterleavedWaveletTree


class CompressedCET(CompressedTemporalGraph):
    """Queryable CET representation."""

    def __init__(self, graph: TemporalGraph) -> None:
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts
        events = edge_events(graph)
        self._times = [t for t, _, _ in events]
        self._tree = InterleavedWaveletTree(
            [(u, v) for _, u, v in events], num_nodes=max(1, graph.num_nodes)
        )
        self._time_index = EliasFano(
            self._times, universe=(self._times[-1] + 1) if self._times else None
        )

    @property
    def size_in_bits(self) -> int:
        return self._tree.size_in_bits() + self._time_index.size_in_bits()

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _position_range(self, t_start: int, t_end: int) -> tuple:
        """Log positions with time in the inclusive interval."""
        lo = bisect.bisect_left(self._times, t_start)
        hi = bisect.bisect_right(self._times, t_end)
        return lo, hi

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        if t_end < t_start:
            return False
        if self.kind is GraphKind.POINT:
            lo, hi = self._position_range(t_start, t_end)
            return self._tree.count_edge(u, v, lo, hi) > 0
        if self.kind is GraphKind.INCREMENTAL:
            hi = bisect.bisect_right(self._times, t_end)
            return self._tree.count_edge(u, v, 0, hi) > 0
        # Interval: active at t_start (odd parity of events up to and
        # including t_start), or some event strictly after t_start and up to
        # t_end -- activations there start an overlap, deactivations there
        # imply activity right before them, inside the window either way.
        upto = bisect.bisect_right(self._times, t_start)
        if self._tree.count_edge(u, v, 0, upto) % 2 == 1:
            return True
        hi = bisect.bisect_right(self._times, t_end)
        return self._tree.count_edge(u, v, upto, hi) > 0

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        if t_end < t_start:
            return []
        if self.kind is GraphKind.POINT:
            lo, hi = self._position_range(t_start, t_end)
            return sorted(v for v, _ in self._tree.neighbors_of(u, lo, hi))
        if self.kind is GraphKind.INCREMENTAL:
            hi = bisect.bisect_right(self._times, t_end)
            return sorted(v for v, _ in self._tree.neighbors_of(u, 0, hi))
        upto = bisect.bisect_right(self._times, t_start)
        active = {
            v for v, count in self._tree.neighbors_of(u, 0, upto) if count % 2 == 1
        }
        hi = bisect.bisect_right(self._times, t_end)
        active.update(v for v, _ in self._tree.neighbors_of(u, upto, hi))
        return sorted(active)


@register
class CETCompressor(TemporalGraphCompressor):
    """Compact Events ordered by Time (CET) baseline."""

    name = "CET"
    features = CompressorFeatures()

    def compress(self, graph: TemporalGraph) -> CompressedCET:
        self.check_supported(graph)
        return CompressedCET(graph)
