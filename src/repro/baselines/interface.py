"""Common interface for every temporal graph compressor in the evaluation.

A compressor turns a :class:`repro.graph.model.TemporalGraph` into a
:class:`CompressedTemporalGraph` exposing the two query primitives the paper
measures (Table V) and the size accounting of Table IV.  The feature flags
of Table I are declared per compressor via :class:`CompressorFeatures`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Type

from repro.graph.model import GraphKind, TemporalGraph


@dataclasses.dataclass(frozen=True)
class CompressorFeatures:
    """The capability matrix of Table I."""

    incremental: bool = True
    point: bool = True
    interval: bool = True
    time_steps: bool = True
    timestamps: bool = False
    aggregations: bool = False

    def supports_kind(self, kind: GraphKind) -> bool:
        """Whether the compressor handles a graph of this kind."""
        return {
            GraphKind.INCREMENTAL: self.incremental,
            GraphKind.POINT: self.point,
            GraphKind.INTERVAL: self.interval,
        }[kind]


class CompressedTemporalGraph(abc.ABC):
    """A queryable compressed representation."""

    kind: GraphKind
    num_nodes: int
    num_contacts: int

    @property
    @abc.abstractmethod
    def size_in_bits(self) -> int:
        """Total representation size charged by Table IV."""

    @property
    def bits_per_contact(self) -> float:
        """The paper's headline compression metric."""
        if self.num_contacts == 0:
            return 0.0
        return self.size_in_bits / self.num_contacts

    @abc.abstractmethod
    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        """Sorted distinct neighbors of ``u`` active within [t_start, t_end]."""

    @abc.abstractmethod
    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        """Whether edge (u, v) is active anywhere within [t_start, t_end]."""

    def snapshot(self, t_start: int, t_end: int) -> List[tuple]:
        """All distinct edges active within the interval, sorted.

        Default implementation sweeps the neighbor query across all nodes,
        matching Section IV-F: "to obtain a snapshot of the graph we simply
        retrieve the neighbors of all nodes during the time interval".
        """
        edges: List[tuple] = []
        for u in range(self.num_nodes):
            for v in self.neighbors(u, t_start, t_end):
                edges.append((u, v))
        return edges


class TemporalGraphCompressor(abc.ABC):
    """A named compression method."""

    #: Display name used in benchmark tables.
    name: str = "unnamed"
    #: Table I feature flags.
    features: CompressorFeatures = CompressorFeatures()

    @abc.abstractmethod
    def compress(self, graph: TemporalGraph) -> CompressedTemporalGraph:
        """Build the compressed representation of ``graph``."""

    def check_supported(self, graph: TemporalGraph) -> None:
        """Raise if the graph kind is outside this method's feature set."""
        if not self.features.supports_kind(graph.kind):
            raise ValueError(
                f"{self.name} does not support {graph.kind.value} graphs"
            )


_REGISTRY: Dict[str, Type[TemporalGraphCompressor]] = {}


def register(cls: Type[TemporalGraphCompressor]) -> Type[TemporalGraphCompressor]:
    """Class decorator adding a compressor to the benchmark registry."""
    key = cls.name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"duplicate compressor name {cls.name!r}")
    _REGISTRY[key] = cls
    return cls


def get_compressor(name: str, **kwargs) -> TemporalGraphCompressor:
    """Instantiate a registered compressor by (case-insensitive) name."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown compressor {name!r}; known: {known}") from None
    return cls(**kwargs)


def all_compressors() -> Dict[str, Type[TemporalGraphCompressor]]:
    """Name -> class for every registered compressor."""
    return dict(_REGISTRY)
