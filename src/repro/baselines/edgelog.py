"""EdgeLog (Caro et al.): adjacency lists with per-edge inverted time lists.

For each node, EdgeLog keeps the sorted list of distinct neighbors and, for
each neighbor, a sorted inverted list of the times at which an update for
that edge occurred.  Both are gap-encoded; the time gaps are compressed
with a variable-length code.  The original offers PForDelta / Simple16 /
Rice -- all three are implemented here (``codec=`` constructor argument),
with Rice (a per-list parameter fitted to the mean gap, stored in 5 bits)
as the default.

The layout is sequential per node (neighbor labels, then the time lists one
after another), so reaching a late neighbor's list requires skipping the
earlier ones -- the behaviour behind the paper's remark that EdgeLog only
suits graphs with few, frequently-updated edges per node.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.bits import codes
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.eliasfano import EliasFano
from repro.bits.pfordelta import decode_pfordelta, encode_pfordelta
from repro.graph.model import Contact, GraphKind, TemporalGraph

_RICE_PARAM_BITS = 5


def _fit_rice_parameter(values: List[int]) -> int:
    """Rice parameter ~ log2 of the mean value (standard fit)."""
    if not values:
        return 0
    mean = max(1, sum(values) // len(values))
    return min((1 << _RICE_PARAM_BITS) - 1, mean.bit_length() - 1)


TIME_LIST_CODECS = ("rice", "simple16", "pfordelta")


class CompressedEdgeLog(CompressedTemporalGraph):
    """Queryable EdgeLog representation."""

    def __init__(self, graph: TemporalGraph, codec: str = "rice") -> None:
        if codec not in TIME_LIST_CODECS:
            raise ValueError(
                f"unknown EdgeLog codec {codec!r}; choose from {TIME_LIST_CODECS}"
            )
        self._codec = codec
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts
        self._t_min = graph.t_min
        self._with_durations = graph.kind is GraphKind.INTERVAL
        writer = BitWriter()
        offsets: List[int] = []
        for u in range(graph.num_nodes):
            offsets.append(len(writer))
            self._encode_node(writer, graph, u)
        self._data = writer.to_bytes()
        self._nbits = len(writer)
        self._offsets = EliasFano(offsets, universe=self._nbits + 1)

    # -- encoding ------------------------------------------------------------

    def _encode_node(self, writer: BitWriter, graph: TemporalGraph, u: int) -> None:
        contacts = graph.contacts_of(u)
        per_neighbor: List[Tuple[int, List[Contact]]] = []
        for c in contacts:
            if per_neighbor and per_neighbor[-1][0] == c.v:
                per_neighbor[-1][1].append(c)
            else:
                per_neighbor.append((c.v, [c]))
        codes.write_gamma_natural(writer, len(per_neighbor))
        prev: Optional[int] = None
        for v, _ in per_neighbor:
            if prev is None:
                codes.write_gamma_natural(writer, v)
            else:
                codes.write_gamma_natural(writer, v - prev - 1)
            prev = v
        for _, edge_contacts in per_neighbor:
            self._encode_time_list(writer, edge_contacts)

    def _encode_time_list(self, writer: BitWriter, edge_contacts: List[Contact]) -> None:
        values: List[int] = []
        prev: Optional[int] = None
        for c in edge_contacts:
            values.append(c.time - self._t_min if prev is None else c.time - prev)
            if self._with_durations:
                values.append(c.duration)
            prev = c.time
        codes.write_gamma_natural(writer, len(edge_contacts))
        if self._codec == "rice":
            b = _fit_rice_parameter(values)
            writer.write_bits(b, _RICE_PARAM_BITS)
            for v in values:
                codes.write_rice(writer, v, b)
        elif self._codec == "simple16":
            codes.encode_simple16(writer, values)
        else:
            encode_pfordelta(writer, values)

    # -- decoding ------------------------------------------------------------

    def _reader_at(self, u: int) -> BitReader:
        reader = BitReader(self._data, self._nbits)
        reader.seek(self._offsets.access(u))
        return reader

    def _decode_neighbor_labels(self, reader: BitReader) -> List[int]:
        degree = codes.read_gamma_natural(reader)
        labels: List[int] = []
        prev: Optional[int] = None
        for _ in range(degree):
            gap = codes.read_gamma_natural(reader)
            label = gap if prev is None else prev + gap + 1
            labels.append(label)
            prev = label
        return labels

    def _decode_time_list(self, reader: BitReader) -> List[Tuple[int, int]]:
        count = codes.read_gamma_natural(reader)
        per_contact = 2 if self._with_durations else 1
        if self._codec == "rice":
            b = reader.read_bits(_RICE_PARAM_BITS)
            values = [codes.read_rice(reader, b) for _ in range(count * per_contact)]
        elif self._codec == "simple16":
            values = codes.decode_simple16(reader, count * per_contact)
        else:
            values = decode_pfordelta(reader, count * per_contact)
        out: List[Tuple[int, int]] = []
        prev: Optional[int] = None
        for i in range(count):
            gap = values[i * per_contact]
            t = self._t_min + gap if prev is None else prev + gap
            duration = values[i * per_contact + 1] if self._with_durations else 0
            out.append((t, duration))
            prev = t
        return out

    def _skip_time_list(self, reader: BitReader) -> None:
        self._decode_time_list(reader)

    # -- interface -----------------------------------------------------------

    @property
    def size_in_bits(self) -> int:
        return self._nbits + self._offsets.size_in_bits()

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        reader = self._reader_at(u)
        labels = self._decode_neighbor_labels(reader)
        out: List[int] = []
        for v in labels:
            entries = self._decode_time_list(reader)
            if any(
                Contact(u, v, t, d).is_active(t_start, t_end, self.kind)
                for t, d in entries
            ):
                out.append(v)
        return out

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        reader = self._reader_at(u)
        labels = self._decode_neighbor_labels(reader)
        for label in labels:
            if label > v:
                return False
            if label == v:
                entries = self._decode_time_list(reader)
                return any(
                    Contact(u, v, t, d).is_active(t_start, t_end, self.kind)
                    for t, d in entries
                )
            self._skip_time_list(reader)
        return False


@register
class EdgeLogCompressor(TemporalGraphCompressor):
    """Time-interval Log per Edge (EdgeLog) baseline."""

    name = "EdgeLog"
    features = CompressorFeatures()

    def __init__(self, codec: str = "rice") -> None:
        self.codec = codec

    def compress(self, graph: TemporalGraph) -> CompressedEdgeLog:
        self.check_supported(graph)
        return CompressedEdgeLog(graph, codec=self.codec)
