"""T-ABT (Nelson, Radhakrishnan & Sekharan).

The aggregated adjacency matrix (all edges over the whole lifetime) is
stored row by row in *compressed binary trees*; every edge then carries an
*alternating compressed binary tree* over the time dimension:

* point / incremental graphs: the time tree marks the exact steps with a
  contact;
* interval graphs: the time tree marks the steps during which the edge is
  active (built from the merged activation/deactivation events, the
  alternating-runs case the variant was designed for).

Queries combine one row-tree membership test with one time-tree range test,
which is why T-ABT is fast on small graphs but -- the trees growing with the
time universe -- deteriorates on large ones (Section V-D).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.events import merged_intervals
from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.graph.model import GraphKind, TemporalGraph
from repro.structures.cbt import (
    AlternatingCompressedBinaryTree,
    CompressedBinaryTree,
)


class CompressedTABT(CompressedTemporalGraph):
    """Queryable T-ABT representation."""

    def __init__(self, graph: TemporalGraph) -> None:
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts

        node_bits = max(1, (max(1, graph.num_nodes - 1)).bit_length())
        if graph.kind is GraphKind.INTERVAL:
            horizon = max((c.end for c in graph.contacts), default=1)
        else:
            horizon = max((c.time for c in graph.contacts), default=1)
        self._time_bits = max(1, horizon.bit_length())

        rows: Dict[int, List[int]] = {}
        edge_times: Dict[Tuple[int, int], List[int]] = {}
        if graph.kind is GraphKind.INTERVAL:
            for (u, v), intervals in merged_intervals(graph).items():
                rows.setdefault(u, []).append(v)
                flat: List[int] = []
                for start, end in intervals:
                    flat.extend((start, end))
                edge_times[(u, v)] = flat
        else:
            for c in graph.contacts:
                key = (c.u, c.v)
                if key not in edge_times:
                    rows.setdefault(c.u, []).append(c.v)
                    edge_times[key] = []
                edge_times[key].append(c.time)

        mode = "toggle" if graph.kind is GraphKind.INTERVAL else "point"
        self._rows: Dict[int, CompressedBinaryTree] = {
            u: CompressedBinaryTree(vs, node_bits) for u, vs in rows.items()
        }
        self._time_trees: Dict[Tuple[int, int], AlternatingCompressedBinaryTree] = {
            key: AlternatingCompressedBinaryTree(times, self._time_bits, mode=mode)
            for key, times in edge_times.items()
        }

    @property
    def size_in_bits(self) -> int:
        rows = sum(t.size_in_bits() for t in self._rows.values())
        times = sum(t.size_in_bits() for t in self._time_trees.values())
        return rows + times

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _time_active(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        tree = self._time_trees.get((u, v))
        if tree is None:
            return False
        top = (1 << self._time_bits) - 1
        if self.kind is GraphKind.INCREMENTAL:
            return tree.active_in(0, min(t_end, top))
        if t_end < t_start:
            return False
        return tree.active_in(max(0, t_start), min(t_end, top))

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        row = self._rows.get(u)
        if row is None or v not in row:
            return False
        return self._time_active(u, v, t_start, t_end)

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        row = self._rows.get(u)
        if row is None:
            return []
        return [
            v for v in row.members() if self._time_active(u, v, t_start, t_end)
        ]


@register
class TABTCompressor(TemporalGraphCompressor):
    """Temporal Alternating Binary Tree (T-ABT) baseline."""

    name = "T-ABT"
    features = CompressorFeatures()

    def compress(self, graph: TemporalGraph) -> CompressedTABT:
        self.check_supported(graph)
        return CompressedTABT(graph)
