"""CAS (Compact Adjacency Sequence, Caro et al.).

CAS stores the event log sorted *by source vertex* (then by time): the
target vertices of all events form one global sequence held in a wavelet
tree, a boundary index gives each vertex's slice of that sequence, and each
vertex's event times are gap-encoded.  Activation/deactivation parity gives
the activity state for interval graphs, exactly as in CET.

Queries locate the vertex's slice through the boundary index, scan its time
list to find the sub-range matching the query window, and use wavelet-tree
range counting / range listing inside that sub-range.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.baselines.events import edge_events
from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.bits import codes
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.eliasfano import EliasFano
from repro.graph.model import GraphKind, TemporalGraph
from repro.structures.wavelet import WaveletTree


class CompressedCAS(CompressedTemporalGraph):
    """Queryable CAS representation."""

    def __init__(self, graph: TemporalGraph) -> None:
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts
        self._t_min = graph.t_min

        events = edge_events(graph)  # (t, u, v), time-sorted
        by_vertex = sorted(events, key=lambda e: (e[1], e[0]))
        targets = [v for _, _, v in by_vertex]
        self._tree = WaveletTree(targets, sigma=max(1, graph.num_nodes))

        boundaries: List[int] = []
        position = 0
        for u in range(graph.num_nodes + 1):
            while position < len(by_vertex) and by_vertex[position][1] < u:
                position += 1
            boundaries.append(position)
        self._boundaries = EliasFano(boundaries, universe=len(by_vertex) + 1)

        times_writer = BitWriter()
        time_offsets: List[int] = []
        start = 0
        for u in range(graph.num_nodes):
            end = boundaries[u + 1]
            start = boundaries[u]
            time_offsets.append(len(times_writer))
            prev: Optional[int] = None
            for t, _, _ in by_vertex[start:end]:
                gap = t - self._t_min if prev is None else t - prev
                codes.write_gamma_natural(times_writer, gap)
                prev = t
        self._times_data = times_writer.to_bytes()
        self._times_bits = len(times_writer)
        self._time_offsets = EliasFano(time_offsets, universe=self._times_bits + 1)

    @property
    def size_in_bits(self) -> int:
        return (
            self._tree.size_in_bits()
            + self._boundaries.size_in_bits()
            + self._times_bits
            + self._time_offsets.size_in_bits()
        )

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _slice_of(self, u: int) -> Tuple[int, int]:
        return self._boundaries.access(u), self._boundaries.access(u + 1)

    def _decode_times(self, u: int, count: int) -> List[int]:
        reader = BitReader(self._times_data, self._times_bits)
        reader.seek(self._time_offsets.access(u))
        out: List[int] = []
        prev: Optional[int] = None
        for _ in range(count):
            gap = codes.read_gamma_natural(reader)
            t = self._t_min + gap if prev is None else prev + gap
            out.append(t)
            prev = t
        return out

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        if t_end < t_start:
            return False
        start, end = self._slice_of(u)
        times = self._decode_times(u, end - start)
        if self.kind is GraphKind.POINT:
            lo = start + bisect.bisect_left(times, t_start)
            hi = start + bisect.bisect_right(times, t_end)
            return self._tree.count_range(v, lo, hi) > 0
        if self.kind is GraphKind.INCREMENTAL:
            hi = start + bisect.bisect_right(times, t_end)
            return self._tree.count_range(v, start, hi) > 0
        upto = start + bisect.bisect_right(times, t_start)
        if self._tree.count_range(v, start, upto) % 2 == 1:
            return True
        hi = start + bisect.bisect_right(times, t_end)
        return self._tree.count_range(v, upto, hi) > 0

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        if t_end < t_start:
            return []
        start, end = self._slice_of(u)
        times = self._decode_times(u, end - start)
        if self.kind is GraphKind.POINT:
            lo = start + bisect.bisect_left(times, t_start)
            hi = start + bisect.bisect_right(times, t_end)
            return [v for v, _ in self._tree.range_distinct(lo, hi)]
        if self.kind is GraphKind.INCREMENTAL:
            hi = start + bisect.bisect_right(times, t_end)
            return [v for v, _ in self._tree.range_distinct(start, hi)]
        upto = start + bisect.bisect_right(times, t_start)
        active = {
            v
            for v, count in self._tree.range_distinct(start, upto)
            if count % 2 == 1
        }
        hi = start + bisect.bisect_right(times, t_end)
        active.update(v for v, _ in self._tree.range_distinct(upto, hi))
        return sorted(active)


@register
class CASCompressor(TemporalGraphCompressor):
    """Compact Adjacency Sequence (CAS) baseline."""

    name = "CAS"
    features = CompressorFeatures()

    def compress(self, graph: TemporalGraph) -> CompressedCAS:
        self.check_supported(graph)
        return CompressedCAS(graph)
