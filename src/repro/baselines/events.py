"""Shared event-normalisation helpers for the event-log baselines.

CET, CAS and T-ABT model interval graphs through *activation /
deactivation events* whose parity determines whether an edge is active.
Parity breaks down when the same edge carries overlapping contacts, so --
exactly like the original implementations, which ingest event streams --
these baselines first normalise each edge's contacts to the *union* of its
activity intervals.  The union preserves the activity semantics every query
is defined over.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.model import GraphKind, TemporalGraph

Edge = Tuple[int, int]


def merged_intervals(graph: TemporalGraph) -> Dict[Edge, List[Tuple[int, int]]]:
    """Edge -> sorted disjoint half-open activity intervals (interval graphs)."""
    if graph.kind is not GraphKind.INTERVAL:
        raise ValueError("merged_intervals is only meaningful for interval graphs")
    spans: Dict[Edge, List[Tuple[int, int]]] = {}
    for c in graph.contacts:
        if c.duration > 0:
            spans.setdefault((c.u, c.v), []).append((c.time, c.end))
    merged: Dict[Edge, List[Tuple[int, int]]] = {}
    for edge, intervals in spans.items():
        intervals.sort()
        out: List[Tuple[int, int]] = []
        for s, e in intervals:
            if out and s <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], e))
            else:
                out.append((s, e))
        merged[edge] = out
    return merged


def edge_events(graph: TemporalGraph) -> List[Tuple[int, int, int]]:
    """The chronological event log: (time, u, v) tuples, time-sorted.

    Point and incremental graphs emit one event per contact.  Interval
    graphs emit one activation and one deactivation event per merged
    activity interval (even parity of preceding events for an edge means
    "inactive", odd means "active" -- the CET/CAS convention).
    """
    events: List[Tuple[int, int, int]] = []
    if graph.kind is GraphKind.INTERVAL:
        for (u, v), intervals in merged_intervals(graph).items():
            for start, end in intervals:
                events.append((start, u, v))
                events.append((end, u, v))
    else:
        for c in graph.contacts:
            events.append((c.time, c.u, c.v))
    events.sort()
    return events
