"""The snapshot-per-time-step strawman the paper's introduction argues against.

Section II-C: temporal compression approaches "overcome the overhead of
representing a snapshot of the graph for each time step".  To quantify that
overhead, this baseline stores exactly that: for every distinct time step,
the gamma-gap-coded adjacency lists of the edges active at that step.
Recurring edges are stored once *per step they are active in*, which is the
whole problem -- an interval contact of length L costs L snapshots.

Kept out of the default Table IV sweep (the paper does not chart it); the
``bench_snapshot_overhead`` module uses it to reproduce the motivating
claim.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.bits import codes
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.eliasfano import EliasFano
from repro.graph.model import GraphKind, TemporalGraph


#: Refuse to materialise more snapshot slots than this -- the strawman is
#: for demonstrating overhead on bounded-step graphs, not for second-
#: granularity interval graphs whose contacts span years.
MAX_ACTIVE_STEPS = 2_000_000


class CompressedSnapshots(CompressedTemporalGraph):
    """One gamma-coded edge list per distinct active time step."""

    def __init__(self, graph: TemporalGraph) -> None:
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts

        if graph.kind is GraphKind.INTERVAL:
            total = sum(c.duration for c in graph.contacts)
            if total > MAX_ACTIVE_STEPS:
                raise ValueError(
                    f"snapshot-per-step baseline would materialise {total} "
                    f"step slots (> {MAX_ACTIVE_STEPS}); aggregate the graph "
                    "first -- this blow-up is the point of the baseline"
                )
        steps = sorted(self._active_steps(graph))
        self._steps = steps
        writer = BitWriter()
        offsets: List[int] = []
        for t in steps:
            offsets.append(len(writer))
            self._encode_snapshot(writer, graph.ref_snapshot(t, t))
        self._data = writer.to_bytes()
        self._nbits = len(writer)
        self._offsets = EliasFano(offsets, universe=self._nbits + 1)
        self._step_index = EliasFano(
            steps, universe=(steps[-1] + 1) if steps else None
        )

    @staticmethod
    def _active_steps(graph: TemporalGraph) -> set:
        steps = set()
        if graph.kind is GraphKind.INTERVAL:
            for c in graph.contacts:
                steps.update(range(c.time, c.end))
        elif graph.kind is GraphKind.INCREMENTAL:
            if graph.contacts:
                top = max(c.time for c in graph.contacts)
                steps.update(c.time for c in graph.contacts)
                steps.add(top)
        else:
            steps.update(c.time for c in graph.contacts)
        return steps

    @staticmethod
    def _encode_snapshot(writer: BitWriter, edges: List[tuple]) -> None:
        codes.write_gamma_natural(writer, len(edges))
        prev_u = prev_v = 0
        for u, v in edges:  # edges sorted by (u, v)
            if u != prev_u:
                codes.write_gamma_natural(writer, u - prev_u)
                prev_v = 0
                codes.write_gamma_natural(writer, v)
            else:
                codes.write_gamma_natural(writer, 0)
                codes.write_gamma_natural(writer, v - prev_v)
            prev_u, prev_v = u, v

    def _decode_snapshot(self, index: int) -> List[tuple]:
        reader = BitReader(self._data, self._nbits)
        reader.seek(self._offsets.access(index))
        count = codes.read_gamma_natural(reader)
        edges: List[tuple] = []
        u = v = 0
        for _ in range(count):
            du = codes.read_gamma_natural(reader)
            if du or not edges:
                u += du
                v = codes.read_gamma_natural(reader)
            else:
                v += codes.read_gamma_natural(reader)
            edges.append((u, v))
        return edges

    @property
    def size_in_bits(self) -> int:
        return (
            self._nbits
            + self._offsets.size_in_bits()
            + self._step_index.size_in_bits()
        )

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _step_range(self, t_start: int, t_end: int) -> range:
        lo = bisect.bisect_left(self._steps, t_start)
        if self.kind is GraphKind.INCREMENTAL:
            # Edges persist: the last stored step at or before t_end decides.
            hi = bisect.bisect_right(self._steps, t_end)
            return range(max(0, hi - 1), hi)
        hi = bisect.bisect_right(self._steps, t_end)
        return range(lo, hi)

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        out = set()
        for index in self._step_range(t_start, t_end):
            for a, b in self._decode_snapshot(index):
                if a == u:
                    out.add(b)
        return sorted(out)

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        for index in self._step_range(t_start, t_end):
            if (u, v) in self._decode_snapshot(index):
                return True
        return False


@register
class SnapshotsCompressor(TemporalGraphCompressor):
    """Per-time-step snapshots: the overhead the field moved away from."""

    name = "Snapshots"
    features = CompressorFeatures()

    def compress(self, graph: TemporalGraph) -> CompressedSnapshots:
        self.check_supported(graph)
        return CompressedSnapshots(graph)
