"""EveLog (Caro et al.): per-vertex adjacency log of events.

Each vertex keeps its events in chronological order as two parallel lists:
the event times, gap-encoded (Elias gamma over the non-negative gaps), and
the corresponding neighbors, compressed with a statistical model.  Caro et
al. use byte-aligned *End-Tagged Dense Codes* over the frequency-ranked
vertex vocabulary; that is the default here (``model="etdc"``), with a
bit-aligned Huffman alternative (``model="huffman"``) kept as an ablation
of the byte-alignment trade-off.

Interval graphs log activation and deactivation events (one bit per event
distinguishes them, parity giving the activity state), after the usual
per-edge interval normalisation (:mod:`repro.baselines.events`).

Queries scan the whole per-vertex log, which is why the paper reports
EveLog access times orders of magnitude behind everything else.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.events import merged_intervals
from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.bits import codes
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.eliasfano import EliasFano
from repro.graph.model import GraphKind, TemporalGraph
from repro.structures.etdc import ETDC
from repro.structures.huffman import HuffmanCode


def _vbyte_bytes(value: int) -> List[int]:
    """The byte groups of the variable-byte code of ``value``."""
    groups = []
    while True:
        groups.append(value & 0x7F)
        value >>= 7
        if not value:
            break
    out = [0x80 | g for g in reversed(groups[1:])]
    out.append(groups[0])
    return out


def _node_events(graph: TemporalGraph, u_events: Dict[int, List[Tuple[int, int, int]]]):
    """Populate per-source chronological (time, neighbor, flag) events."""
    if graph.kind is GraphKind.INTERVAL:
        for (u, v), intervals in merged_intervals(graph).items():
            for start, end in intervals:
                u_events.setdefault(u, []).append((start, v, 1))
                u_events.setdefault(u, []).append((end, v, 0))
    else:
        for c in graph.contacts:
            u_events.setdefault(c.u, []).append((c.time, c.v, 1))
    for events in u_events.values():
        events.sort()


class CompressedEveLog(CompressedTemporalGraph):
    """Queryable EveLog representation."""

    def __init__(self, graph: TemporalGraph, model: str = "etdc") -> None:
        if model not in ("etdc", "huffman"):
            raise ValueError(f"unknown EveLog model {model!r}")
        self.kind = graph.kind
        self.num_nodes = graph.num_nodes
        self.num_contacts = graph.num_contacts
        self._t_min = graph.t_min
        self._interval = graph.kind is GraphKind.INTERVAL
        self._model_kind = model

        per_node: Dict[int, List[Tuple[int, int, int]]] = {}
        _node_events(graph, per_node)

        if model == "etdc":
            # Dense code straight over the vertex-id vocabulary.
            labels: List[int] = [
                v for events in per_node.values() for _, v, _ in events
            ]
            self._model = ETDC.from_sequence(labels) if labels else None
        else:
            # Ablation: Huffman over the variable-byte label bytes.
            all_bytes: List[int] = []
            for events in per_node.values():
                for _, v, _ in events:
                    all_bytes.extend(_vbyte_bytes(v))
            self._model = HuffmanCode.from_sequence(all_bytes) if all_bytes else None

        writer = BitWriter()
        offsets: List[int] = []
        for u in range(graph.num_nodes):
            offsets.append(len(writer))
            self._encode_node(writer, per_node.get(u, []))
        self._data = writer.to_bytes()
        self._nbits = len(writer)
        self._offsets = EliasFano(offsets, universe=self._nbits + 1)

    def _encode_node(self, writer: BitWriter, events: List[Tuple[int, int, int]]) -> None:
        codes.write_gamma_natural(writer, len(events))
        prev: Optional[int] = None
        # Time list: chronological, so gaps are non-negative.
        for t, _, _ in events:
            gap = t - self._t_min if prev is None else t - prev
            codes.write_gamma_natural(writer, gap)
            prev = t
        # Edge list: statistically coded labels (+ activation flag if needed).
        for _, v, flag in events:
            if self._model_kind == "etdc":
                self._model.encode_symbol(writer, v)
            else:
                self._model.encode(writer, _vbyte_bytes(v))
            if self._interval:
                writer.write_bit(flag)

    def _decode_node(self, u: int) -> List[Tuple[int, int, int]]:
        reader = BitReader(self._data, self._nbits)
        reader.seek(self._offsets.access(u))
        count = codes.read_gamma_natural(reader)
        times: List[int] = []
        prev: Optional[int] = None
        for _ in range(count):
            gap = codes.read_gamma_natural(reader)
            t = self._t_min + gap if prev is None else prev + gap
            times.append(t)
            prev = t
        events: List[Tuple[int, int, int]] = []
        for t in times:
            if self._model_kind == "etdc":
                value = self._model.decode_symbol(reader)
            else:
                value = 0
                while True:
                    byte = self._model.decode(reader, 1)[0]
                    value = (value << 7) | (byte & 0x7F)
                    if not byte & 0x80:
                        break
            flag = reader.read_bit() if self._interval else 1
            events.append((t, value, flag))
        return events

    @property
    def size_in_bits(self) -> int:
        if self._model is None:
            model_bits = 0
        elif self._model_kind == "etdc":
            model_bits = self._model.vocabulary_size_in_bits()
        else:
            model_bits = self._model.codebook_size_in_bits()
        return self._nbits + self._offsets.size_in_bits() + model_bits

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        self._check_node(u)
        events = self._decode_node(u)
        active: set = set()
        if self.kind is GraphKind.POINT:
            active = {v for t, v, _ in events if t_start <= t <= t_end}
        elif self.kind is GraphKind.INCREMENTAL:
            active = {v for t, v, _ in events if t <= t_end}
        else:
            for t, v, flag in events:
                if not flag or t > t_end or v in active:
                    continue
                # Active from t; overlaps the window iff the matching
                # deactivation falls after t_start.
                if self._deactivation_after(events, v, t) > t_start:
                    active.add(v)
        return sorted(active)

    @staticmethod
    def _deactivation_after(events, v, t) -> int:
        for et, ev, flag in events:
            if ev == v and not flag and et > t:
                return et
        return 1 << 62  # still active at the end of the log

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        self._check_node(u)
        events = self._decode_node(u)
        if self.kind is GraphKind.POINT:
            return any(ev == v and t_start <= t <= t_end for t, ev, _ in events)
        if self.kind is GraphKind.INCREMENTAL:
            return any(ev == v and t <= t_end for t, ev, _ in events)
        for t, ev, flag in events:
            if ev != v or not flag:
                continue
            end = self._deactivation_after(events, v, t)
            if t <= t_end and end > t_start:
                return True
        return False


@register
class EveLogCompressor(TemporalGraphCompressor):
    """Adjacency Log of Events (EveLog) baseline."""

    name = "EveLog"
    features = CompressorFeatures()

    def __init__(self, model: str = "etdc") -> None:
        self.model = model

    def compress(self, graph: TemporalGraph) -> CompressedEveLog:
        self.check_supported(graph)
        return CompressedEveLog(graph, model=self.model)
