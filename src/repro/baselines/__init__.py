"""Baseline temporal graph compressors (Table I / IV / V competitors).

Every method the paper evaluates is implemented here behind a single
interface so the benchmark harness can sweep them uniformly:

* :mod:`repro.baselines.rawsize` -- Raw (plain text) and Gzip.
* :mod:`repro.baselines.evelog` -- EveLog: per-vertex chronological event
  log; gap-coded times, Huffman-coded neighbor bytes.
* :mod:`repro.baselines.edgelog` -- EdgeLog: adjacency lists with per-edge
  inverted time lists (gap + Rice codes).
* :mod:`repro.baselines.cet` -- CET: a chronological event log in an
  interleaved wavelet tree.
* :mod:`repro.baselines.cas` -- CAS: a vertex-sorted event sequence in a
  wavelet tree.
* :mod:`repro.baselines.ckdtree` -- ck^d-trees: events as points of a
  d-dimensional k^2-tree generalisation.
* :mod:`repro.baselines.tabt` -- T-ABT: aggregated adjacency rows in
  compressed binary trees plus per-edge alternating time trees.
* :mod:`repro.baselines.chrono` -- the adapter exposing ChronoGraph itself
  through the same interface.

The paper reprints EveLog / ck^d-tree / T-ABT numbers from prior work
because no public implementations exist; here all of them are implemented
from their descriptions so every cell of Tables IV/V is measured.
"""

from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    all_compressors,
    get_compressor,
    register,
)
from repro.baselines.rawsize import GzipCompressor, RawCompressor
from repro.baselines.evelog import EveLogCompressor
from repro.baselines.edgelog import EdgeLogCompressor
from repro.baselines.cet import CETCompressor
from repro.baselines.cas import CASCompressor
from repro.baselines.ckdtree import CKDTreeCompressor
from repro.baselines.tabt import TABTCompressor
from repro.baselines.chrono import ChronoGraphCompressor
from repro.baselines.snapshots import SnapshotsCompressor

__all__ = [
    "CompressedTemporalGraph",
    "CompressorFeatures",
    "TemporalGraphCompressor",
    "all_compressors",
    "get_compressor",
    "register",
    "RawCompressor",
    "GzipCompressor",
    "EveLogCompressor",
    "EdgeLogCompressor",
    "CETCompressor",
    "CASCompressor",
    "CKDTreeCompressor",
    "TABTCompressor",
    "ChronoGraphCompressor",
    "SnapshotsCompressor",
]
