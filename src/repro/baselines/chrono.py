"""Adapter exposing ChronoGraph through the common compressor interface."""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.interface import (
    CompressedTemporalGraph,
    CompressorFeatures,
    TemporalGraphCompressor,
    register,
)
from repro.core import ChronoGraphConfig, CompressedChronoGraph, compress
from repro.graph.model import TemporalGraph


class _ChronoWrapper(CompressedTemporalGraph):
    """Thin view of :class:`CompressedChronoGraph` behind the shared ABC."""

    def __init__(self, inner: CompressedChronoGraph) -> None:
        self.kind = inner.kind
        self.num_nodes = inner.num_nodes
        self.num_contacts = inner.num_contacts
        self.inner = inner

    @property
    def size_in_bits(self) -> int:
        return self.inner.size_in_bits

    @property
    def timestamp_bits_per_contact(self) -> float:
        """The Table IV parenthesis: timestamp share per contact."""
        return self.inner.timestamp_bits_per_contact

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        return self.inner.neighbors(u, t_start, t_end)

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        return self.inner.has_edge(u, v, t_start, t_end)


@register
class ChronoGraphCompressor(TemporalGraphCompressor):
    """The paper's contribution, swept alongside the baselines."""

    name = "ChronoGraph"
    features = CompressorFeatures(timestamps=True, aggregations=True)

    def __init__(self, config: Optional[ChronoGraphConfig] = None) -> None:
        self.config = config or ChronoGraphConfig()

    def compress(self, graph: TemporalGraph) -> _ChronoWrapper:
        self.check_supported(graph)
        return _ChronoWrapper(compress(graph, self.config))
