"""Append-only, checksummed write-ahead log for incoming contacts.

The incremental setting of the paper (Section III-A: contacts arrive over
time and only ever extend the structure) needs a durable ingest path that
does not recompress the whole graph per contact.  The WAL provides it:
contacts are appended as length-prefixed, CRC32-guarded batch records to a
side file bound to its base ``.chrono`` snapshot, and folded in by
:func:`repro.storage.recovery.compact` when the log grows.

Layout (little-endian; see FORMAT.md):

* a fixed 32-byte header: magic ``CWAL``, version, graph kind, flags, a
  **generation** counter, and the byte size and CRC32 of the exact base
  snapshot this log extends -- replaying a log onto any other snapshot is
  refused (:class:`repro.errors.GenerationMismatchError`);
* zero or more records, each ``u32 length | payload | u32 crc32(payload)``
  (the same guard discipline as the VERSION 2 container sections):

  * **batch** (type 1): ``u32 count`` then ``count`` contacts as
    ``u64 u, u64 v, i64 time, i64 duration`` -- one committed append;
  * **compaction marker** (type 2): the size and CRC32 of the snapshot a
    compaction is about to install, so a crash between installing the
    snapshot and resetting the log is recognisable afterwards.

Durability contract: :meth:`WriteAheadLog.append` only buffers;
:meth:`WriteAheadLog.commit` writes the batch in one append and fsyncs.
A crash mid-commit leaves a torn tail that :func:`scan_wal` truncates at
the first bad CRC -- committed (fsynced) batches are never lost, and
uncommitted contacts are lost *wholly*, never partially applied.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import struct
import zlib
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    ChecksumMismatchError,
    CorruptStreamError,
    FormatError,
    LimitExceededError,
    TruncatedContainerError,
    UnsupportedVersionError,
)
from repro.graph.model import Contact, GraphKind
from repro.storage.atomic import (
    DEFAULT_RETRY,
    OS_FILESYSTEM,
    Filesystem,
    RetryPolicy,
    atomic_write_bytes,
)

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "WAL_HEADER_SIZE",
    "WalHeader",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "scan_wal_bytes",
    "repair_torn_tail",
]

WAL_MAGIC = b"CWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<4sBBHQQI")  # magic, version, kind, flags, gen, base_size, base_crc
_HEADER_CRC = struct.Struct("<I")
WAL_HEADER_SIZE = _HEADER.size + _HEADER_CRC.size  # 32 bytes

_RECORD_LEN = struct.Struct("<I")
_RECORD_CRC = struct.Struct("<I")
_BATCH_COUNT = struct.Struct("<I")
_CONTACT = struct.Struct("<QQqq")
_MARKER = struct.Struct("<QI")

#: Record payload types.
_REC_BATCH = 1
_REC_COMPACT = 2

#: Decode limits, mirroring :class:`repro.core.serialize.DecodeLimits`:
#: a flipped length or label byte must never trigger a huge allocation or
#: let ``num_nodes`` explode into an unbounded query loop.
_MAX_RECORD_BYTES = 1 << 31
_MAX_LABEL = 1 << 40

_KIND_CODES = {GraphKind.POINT: 0, GraphKind.INTERVAL: 1, GraphKind.INCREMENTAL: 2}
_KIND_FROM_CODE = {v: k for k, v in _KIND_CODES.items()}

PathLike = Union[str, pathlib.Path]
ContactRow = Union[Contact, Tuple[int, ...]]


@dataclasses.dataclass(frozen=True)
class WalHeader:
    """The generation header tying a WAL to its base snapshot."""

    kind: GraphKind
    generation: int
    base_size: int
    base_crc: int

    def to_bytes(self) -> bytes:
        """Serialise the header with its trailing CRC32 (32 bytes)."""
        body = _HEADER.pack(
            WAL_MAGIC,
            WAL_VERSION,
            _KIND_CODES[self.kind],
            0,
            self.generation,
            self.base_size,
            self.base_crc,
        )
        return body + _HEADER_CRC.pack(zlib.crc32(body))

    @classmethod
    def from_bytes(cls, data: bytes, source: str = "<wal>") -> "WalHeader":
        """Parse and verify a header; raises from ``FormatError`` on any flaw."""
        if len(data) < WAL_HEADER_SIZE:
            raise TruncatedContainerError(
                f"{source}: truncated WAL header "
                f"({len(data)} of {WAL_HEADER_SIZE} bytes)"
            )
        body = data[: _HEADER.size]
        (crc,) = _HEADER_CRC.unpack_from(data, _HEADER.size)
        if zlib.crc32(body) != crc:
            raise ChecksumMismatchError(f"{source}: WAL header checksum mismatch")
        magic, version, kind_code, flags, gen, base_size, base_crc = (
            _HEADER.unpack(body)
        )
        if magic != WAL_MAGIC:
            raise FormatError(f"{source}: not a ChronoGraph WAL (bad magic)")
        if version != WAL_VERSION:
            raise UnsupportedVersionError(
                f"{source}: unsupported WAL version {version}"
            )
        if flags != 0:
            raise UnsupportedVersionError(
                f"{source}: unknown WAL flags 0x{flags:04x}"
            )
        try:
            kind = _KIND_FROM_CODE[kind_code]
        except KeyError:
            raise CorruptStreamError(
                f"{source}: unknown graph kind code {kind_code}"
            ) from None
        return cls(kind=kind, generation=gen, base_size=base_size, base_crc=base_crc)


def _frame(payload: bytes) -> bytes:
    return _RECORD_LEN.pack(len(payload)) + payload + _RECORD_CRC.pack(
        zlib.crc32(payload)
    )


def encode_batch(contacts: Sequence[Contact]) -> bytes:
    """One framed batch record for the given contacts."""
    parts = [struct.pack("<B", _REC_BATCH), _BATCH_COUNT.pack(len(contacts))]
    for c in contacts:
        parts.append(_CONTACT.pack(c.u, c.v, c.time, c.duration))
    return _frame(b"".join(parts))


def encode_compact_marker(snapshot_size: int, snapshot_crc: int) -> bytes:
    """One framed compaction marker naming the snapshot about to land."""
    payload = struct.pack("<B", _REC_COMPACT) + _MARKER.pack(
        snapshot_size, snapshot_crc
    )
    return _frame(payload)


def _parse_payload(
    payload: bytes, kind: GraphKind, source: str, offset: int
):
    """Decode one record payload -> ('batch', contacts) | ('marker', (s, c)).

    Raises from ``FormatError`` on structural damage so the scanner can
    truncate at this record.
    """
    if not payload:
        raise CorruptStreamError(f"{source}: empty record at byte {offset}")
    rec_type = payload[0]
    if rec_type == _REC_BATCH:
        if len(payload) < 1 + _BATCH_COUNT.size:
            raise TruncatedContainerError(
                f"{source}: batch record at byte {offset} too short"
            )
        (count,) = _BATCH_COUNT.unpack_from(payload, 1)
        expected = 1 + _BATCH_COUNT.size + count * _CONTACT.size
        if expected != len(payload):
            raise CorruptStreamError(
                f"{source}: batch record at byte {offset} declares {count} "
                f"contacts but carries {len(payload)} payload bytes"
            )
        contacts: List[Contact] = []
        pos = 1 + _BATCH_COUNT.size
        for _ in range(count):
            u, v, time, duration = _CONTACT.unpack_from(payload, pos)
            pos += _CONTACT.size
            if u > _MAX_LABEL or v > _MAX_LABEL:
                raise LimitExceededError(
                    f"{source}: contact label beyond {_MAX_LABEL} "
                    f"at byte {offset}"
                )
            if duration < 0:
                raise CorruptStreamError(
                    f"{source}: negative duration at byte {offset}"
                )
            if kind is not GraphKind.INTERVAL and duration:
                raise CorruptStreamError(
                    f"{source}: {kind.value} contact with a duration "
                    f"at byte {offset}"
                )
            contacts.append(Contact(u, v, time, duration))
        return "batch", contacts
    if rec_type == _REC_COMPACT:
        if len(payload) != 1 + _MARKER.size:
            raise CorruptStreamError(
                f"{source}: malformed compaction marker at byte {offset}"
            )
        return "marker", _MARKER.unpack_from(payload, 1)
    raise CorruptStreamError(
        f"{source}: unknown record type {rec_type} at byte {offset}"
    )


@dataclasses.dataclass
class WalScan:
    """Everything a lenient front-to-back read of a WAL recovers.

    ``valid_end`` is the byte offset just past the last intact record;
    anything between it and ``file_size`` is a torn tail (or corruption)
    that replay drops -- :attr:`dropped_bytes` quantifies it and
    ``errors`` say why.  ``header`` is ``None`` only when the header
    itself did not survive, in which case nothing was recovered.
    """

    header: Optional[WalHeader]
    batches: List[List[Contact]]
    markers: List[Tuple[int, int]]
    record_ends: List[int]
    valid_end: int
    file_size: int
    errors: List[str]

    @property
    def contacts(self) -> List[Contact]:
        """All committed contacts, in append order."""
        return [c for batch in self.batches for c in batch]

    @property
    def torn(self) -> bool:
        """Whether bytes past the last intact record were dropped."""
        return self.valid_end < self.file_size

    @property
    def dropped_bytes(self) -> int:
        """Size of the dropped tail."""
        return self.file_size - self.valid_end


def scan_wal_bytes(data: bytes, source: str = "<wal>") -> WalScan:
    """Lenient scan: recover every intact record, stop at the first flaw.

    Never raises -- a corrupt header yields an empty scan with errors,
    a torn or corrupt record truncates the scan at the previous record
    boundary, matching the recovery contract ("lose at most the
    uncommitted tail").
    """
    errors: List[str] = []
    try:
        header = WalHeader.from_bytes(data, source)
    except FormatError as exc:
        errors.append(str(exc))
        return WalScan(
            header=None, batches=[], markers=[], record_ends=[],
            valid_end=0, file_size=len(data), errors=errors,
        )
    batches: List[List[Contact]] = []
    markers: List[Tuple[int, int]] = []
    record_ends: List[int] = []
    pos = WAL_HEADER_SIZE
    valid_end = pos
    size = len(data)
    while pos < size:
        if pos + _RECORD_LEN.size > size:
            errors.append(f"{source}: torn record length at byte {pos}")
            break
        (length,) = _RECORD_LEN.unpack_from(data, pos)
        if length > _MAX_RECORD_BYTES:
            errors.append(
                f"{source}: record at byte {pos} declares {length} bytes "
                f"(limit {_MAX_RECORD_BYTES})"
            )
            break
        end = pos + _RECORD_LEN.size + length + _RECORD_CRC.size
        if end > size:
            errors.append(f"{source}: torn record at byte {pos}")
            break
        payload = data[pos + _RECORD_LEN.size : pos + _RECORD_LEN.size + length]
        (crc,) = _RECORD_CRC.unpack_from(data, end - _RECORD_CRC.size)
        if zlib.crc32(payload) != crc:
            errors.append(f"{source}: record checksum mismatch at byte {pos}")
            break
        try:
            rec_type, value = _parse_payload(payload, header.kind, source, pos)
        except FormatError as exc:
            errors.append(str(exc))
            break
        if rec_type == "batch":
            batches.append(value)
        else:
            markers.append(value)
        pos = end
        valid_end = end
        record_ends.append(end)
    return WalScan(
        header=header, batches=batches, markers=markers,
        record_ends=record_ends, valid_end=valid_end,
        file_size=size, errors=errors,
    )


def scan_wal(path: PathLike, source: Optional[str] = None) -> WalScan:
    """File variant of :func:`scan_wal_bytes`."""
    path = pathlib.Path(path)
    return scan_wal_bytes(path.read_bytes(), source or str(path))


def repair_torn_tail(
    path: PathLike, scan: WalScan, *, fs: Filesystem = OS_FILESYSTEM
) -> int:
    """Truncate a torn tail in place; returns bytes removed.

    Safe because it only ever *removes* bytes past the last intact
    record, which replay ignores anyway; the truncation is fsynced.
    """
    if not scan.torn or scan.header is None:
        return 0
    dropped = scan.dropped_bytes
    fd = fs.open(str(path), os.O_RDWR)
    try:
        fs.truncate(fd, scan.valid_end)
        fs.fsync(fd)
    finally:
        fs.close(fd)
    return dropped


def _as_contact(row: ContactRow) -> Contact:
    if isinstance(row, Contact):
        return row
    return Contact(*row)


class WriteAheadLog:
    """Writer handle over a WAL file.

    :meth:`append` buffers contacts in memory; :meth:`commit` writes them
    as one batch record in a single append and fsyncs -- the durability
    boundary.  Opening an existing log first scans it and truncates any
    torn tail (recorded in :attr:`repaired_bytes`), so fresh appends are
    always reachable by replay.
    """

    def __init__(
        self,
        path: pathlib.Path,
        header: WalHeader,
        fd: int,
        *,
        fs: Filesystem,
        repaired_bytes: int = 0,
        committed_contacts: int = 0,
    ) -> None:
        self.path = path
        self.header = header
        self.repaired_bytes = repaired_bytes
        self.committed_contacts = committed_contacts
        self._fd = fd
        self._fs = fs
        self._pending: List[Contact] = []

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: PathLike,
        header: WalHeader,
        *,
        fs: Filesystem = OS_FILESYSTEM,
        retry: RetryPolicy = DEFAULT_RETRY,
    ) -> "WriteAheadLog":
        """Atomically materialise a fresh (empty) log and open it."""
        path = pathlib.Path(path)
        atomic_write_bytes(path, header.to_bytes(), fs=fs, retry=retry)
        fd = fs.open(str(path), os.O_WRONLY | os.O_APPEND)
        return cls(path, header, fd, fs=fs)

    @classmethod
    def open(
        cls, path: PathLike, *, fs: Filesystem = OS_FILESYSTEM
    ) -> "WriteAheadLog":
        """Open an existing log for appending, repairing any torn tail.

        Raises from ``FormatError`` when the header is unreadable -- an
        unidentifiable log must not be silently overwritten or extended.
        """
        path = pathlib.Path(path)
        scan = scan_wal(path)
        if scan.header is None:
            raise FormatError(
                scan.errors[0] if scan.errors
                else f"{path}: unreadable WAL header"
            )
        repaired = repair_torn_tail(path, scan, fs=fs)
        fd = fs.open(str(path), os.O_WRONLY | os.O_APPEND)
        return cls(
            path, scan.header, fd, fs=fs,
            repaired_bytes=repaired,
            committed_contacts=sum(len(b) for b in scan.batches),
        )

    def close(self) -> None:
        """Release the descriptor; uncommitted contacts are discarded."""
        if self._fd is not None:
            self._fs.close(self._fd)
            self._fd = None
        self._pending = []

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- appending -----------------------------------------------------------

    @property
    def pending_contacts(self) -> int:
        """Contacts buffered but not yet committed (not on disk)."""
        return len(self._pending)

    def append(self, contacts: Iterable[ContactRow]) -> int:
        """Buffer contacts for the next :meth:`commit`; returns how many.

        Validation happens here, not at commit, so a bad row never
        poisons a batch already buffered.
        """
        added = 0
        kind = self.header.kind
        for row in contacts:
            c = _as_contact(row)
            if c.u < 0 or c.v < 0:
                raise ValueError(f"negative node label in {c}")
            if c.u > _MAX_LABEL or c.v > _MAX_LABEL:
                raise ValueError(f"node label beyond {_MAX_LABEL} in {c}")
            if c.duration < 0:
                raise ValueError(f"negative duration in {c}")
            if kind is not GraphKind.INTERVAL and c.duration:
                raise ValueError(
                    f"{kind.value} graphs cannot carry durations: {c}"
                )
            self._pending.append(c)
            added += 1
        return added

    def _write_all(self, data: bytes) -> None:
        view = memoryview(data)
        while view:
            written = self._fs.write(self._fd, view)
            view = view[written:]

    def commit(self) -> int:
        """Write buffered contacts as one batch record and fsync.

        Returns the number of contacts made durable.  The record lands in
        a single append; a crash mid-write leaves a torn tail the next
        open truncates, so a batch is only ever wholly present or wholly
        absent.
        """
        if not self._pending:
            return 0
        batch = self._pending
        self._write_all(encode_batch(batch))
        self._fs.fsync(self._fd)
        self._pending = []
        self.committed_contacts += len(batch)
        return len(batch)

    def append_compact_marker(
        self, snapshot_size: int, snapshot_crc: int
    ) -> None:
        """Durably record the snapshot a compaction is about to install."""
        if self._pending:
            raise ValueError(
                "refusing to write a compaction marker over "
                f"{len(self._pending)} uncommitted contacts"
            )
        self._write_all(encode_compact_marker(snapshot_size, snapshot_crc))
        self._fs.fsync(self._fd)
