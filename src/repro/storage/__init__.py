"""Crash-safe persistence: atomic writes, the ingest WAL, and recovery.

* :mod:`repro.storage.atomic` -- the one sanctioned write path for every
  artefact (temp file + fsync + rename), with an injectable filesystem
  for fault injection and retry-with-backoff for transient errors.
* :mod:`repro.storage.wal` -- the append-only, CRC32-guarded contact log
  bound to its base ``.chrono`` snapshot by a generation header.
* :mod:`repro.storage.recovery` -- WAL replay with torn-tail tolerance
  (:class:`RecoveryReport`) and crash-safe :func:`compact`.
* :mod:`repro.storage.segments` -- the LSM-style segmented store:
  immutable time-partitioned segments under a CRC-guarded generation-
  numbered manifest, a :class:`SegmentedChronoGraph` query facade, and
  per-segment quarantine surfaced in a :class:`HealthReport`.
* :mod:`repro.storage.compactor` -- the background merge thread plus the
  watchdog that degrades ingestion instead of crashing when it wedges.

``wal``/``recovery``/``segments``/``compactor`` names resolve lazily:
:mod:`repro.core.serialize` imports :mod:`repro.storage.atomic` for
durable saves, while the higher layers import the serializer back --
deferring the heavy half keeps the cycle open-ended instead of circular.
"""

from repro.storage.atomic import (
    DEFAULT_RETRY,
    NO_RETRY,
    OS_FILESYSTEM,
    TRANSIENT_ERRNOS,
    Filesystem,
    RetryPolicy,
    atomic_write_bytes,
    atomic_write_text,
)

__all__ = [
    # atomic (eager)
    "Filesystem",
    "OS_FILESYSTEM",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "NO_RETRY",
    "TRANSIENT_ERRNOS",
    "atomic_write_bytes",
    "atomic_write_text",
    # wal (lazy)
    "WalHeader",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "scan_wal_bytes",
    "repair_torn_tail",
    # recovery (lazy)
    "RecoveryReport",
    "CompactionResult",
    "default_wal_path",
    "open_with_wal",
    "recover_bytes",
    "open_for_ingest",
    "compact",
    # segments (lazy)
    "Manifest",
    "SegmentInfo",
    "SegmentStore",
    "SegmentedChronoGraph",
    "StorePolicy",
    "QuarantineEntry",
    "HealthReport",
    "BackpressureError",
    "StoreClosedError",
    "is_segment_store",
    # compactor (lazy)
    "Compactor",
]

_WAL_NAMES = {
    "WalHeader", "WalScan", "WriteAheadLog",
    "scan_wal", "scan_wal_bytes", "repair_torn_tail",
}
_RECOVERY_NAMES = {
    "RecoveryReport", "CompactionResult", "default_wal_path",
    "open_with_wal", "recover_bytes", "open_for_ingest", "compact",
}
_SEGMENT_NAMES = {
    "Manifest", "SegmentInfo", "SegmentStore", "SegmentedChronoGraph",
    "StorePolicy", "QuarantineEntry", "HealthReport",
    "BackpressureError", "StoreClosedError", "is_segment_store",
}


def __getattr__(name: str):
    if name in _WAL_NAMES:
        from repro.storage import wal

        return getattr(wal, name)
    if name in _RECOVERY_NAMES:
        from repro.storage import recovery

        return getattr(recovery, name)
    if name in _SEGMENT_NAMES:
        from repro.storage import segments

        return getattr(segments, name)
    if name == "Compactor":
        from repro.storage.compactor import Compactor

        return Compactor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
