"""Recovery and compaction: the read side of the crash-safe ingest path.

Opening an incremental dataset is ``base snapshot + WAL``:

* :func:`open_with_wal` loads the ``.chrono`` base, verifies the WAL's
  generation header actually binds to *this* snapshot (size + CRC32), and
  replays every committed batch as an in-memory overlay
  (:meth:`repro.core.compressed.CompressedChronoGraph.apply_contacts`).
  A torn tail -- the signature of a crash mid-commit -- is tolerated:
  replay stops at the last intact record and the loss is quantified in
  the returned :class:`RecoveryReport` (the WAL sibling of PR 1's
  ``SalvageReport``).  A WAL bound to a *different* snapshot raises
  :class:`repro.errors.GenerationMismatchError`, unless one of its
  compaction markers names the current snapshot -- then the WAL is simply
  superseded (a compaction crashed between installing the snapshot and
  resetting the log) and its records are ignored.

* :func:`compact` folds base + WAL into a freshly compressed snapshot and
  resets the log, crash-safely: it first appends a durable compaction
  marker naming the new snapshot to the old WAL, then atomically replaces
  the snapshot, then atomically replaces the WAL with an empty
  generation+1 log.  A crash between any two steps leaves a pair that
  :func:`open_with_wal` recognises and recovers from.

The compacted bytes are produced by the untouched encoder from the exact
contact multiset of base + WAL, so they are bit-identical to compressing
those contacts directly.
"""

from __future__ import annotations

import dataclasses
import pathlib
import zlib
from typing import List, Optional, Tuple, Union

from repro.errors import FormatError, GenerationMismatchError
from repro.storage.atomic import (
    DEFAULT_RETRY,
    OS_FILESYSTEM,
    Filesystem,
    RetryPolicy,
    atomic_write_bytes,
)
from repro.storage.wal import (
    WalHeader,
    WalScan,
    WriteAheadLog,
    scan_wal_bytes,
)

__all__ = [
    "RecoveryReport",
    "CompactionResult",
    "default_wal_path",
    "open_with_wal",
    "recover_bytes",
    "open_for_ingest",
    "compact",
]

PathLike = Union[str, pathlib.Path]


def default_wal_path(base_path: PathLike) -> pathlib.Path:
    """The WAL that accompanies ``base_path`` (``<base>.wal``)."""
    base_path = pathlib.Path(base_path)
    return base_path.with_name(base_path.name + ".wal")


@dataclasses.dataclass
class RecoveryReport:
    """What replaying a WAL onto its base snapshot recovered and lost.

    Mirrors :class:`repro.core.validate.SalvageReport`: ``ok`` means a
    clean open (nothing dropped, nothing suspicious), ``torn`` means a
    tail was truncated -- committed batches before it were still replayed
    in full.  ``generation`` is -1 when no WAL accompanies the base.
    """

    base_path: str
    wal_path: str
    generation: int = -1
    batches_replayed: int = 0
    contacts_replayed: int = 0
    dropped_bytes: int = 0
    superseded: bool = False
    errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Clean open: every WAL byte accounted for, nothing dropped."""
        return not self.errors and not self.superseded

    @property
    def torn(self) -> bool:
        """Whether a damaged tail was dropped during replay."""
        return self.dropped_bytes > 0

    def summary(self) -> str:
        """One line per fact, mirroring ``SalvageReport.summary()``."""
        if self.generation < 0:
            status = "clean (no WAL)"
        elif self.ok:
            status = "clean"
        elif self.superseded:
            status = "superseded WAL ignored"
        else:
            status = "recovered with loss"
        lines = [
            f"recovery of {self.base_path}: {status}",
            f"  wal: {self.wal_path} (generation {self.generation})",
            f"  replayed: {self.contacts_replayed} contacts in "
            f"{self.batches_replayed} batches",
        ]
        if self.dropped_bytes:
            lines.append(f"  dropped: {self.dropped_bytes} trailing bytes")
        for err in self.errors:
            lines.append(f"  error: {err}")
        return "\n".join(lines)


def _bind_scan(
    scan: WalScan,
    base_blob: bytes,
    kind,
    wal_name: str,
    report: RecoveryReport,
) -> bool:
    """Decide whether the scanned WAL may be replayed onto this base.

    Returns True to replay; flags ``report.superseded`` (marker names the
    current snapshot) instead when a compaction completed its snapshot
    install but crashed before resetting the log; raises
    :class:`GenerationMismatchError` for any other pairing.
    """
    header = scan.header
    assert header is not None
    base_size = len(base_blob)
    base_crc = zlib.crc32(base_blob)
    if header.base_size == base_size and header.base_crc == base_crc:
        if header.kind is not kind:
            raise GenerationMismatchError(
                f"{wal_name}: WAL kind {header.kind.value} does not match "
                f"base kind {kind.value}"
            )
        return True
    for marker_size, marker_crc in scan.markers:
        if marker_size == base_size and marker_crc == base_crc:
            report.superseded = True
            report.errors.append(
                f"{wal_name}: log precedes the current snapshot "
                "(compaction interrupted after installing it); "
                "records ignored -- run compact to reset the log"
            )
            return False
    raise GenerationMismatchError(
        f"{wal_name}: WAL is bound to a different base snapshot "
        f"(header says {header.base_size} bytes / crc 0x{header.base_crc:08x}, "
        f"base is {base_size} bytes / crc 0x{base_crc:08x})"
    )


def recover_bytes(
    base_blob: bytes,
    wal_blob: Optional[bytes],
    *,
    limits=None,
    base_source: str = "<base>",
    wal_source: str = "<wal>",
):
    """In-memory core of :func:`open_with_wal`; also the fault-test surface.

    Returns ``(graph, report)``.  Raises from ``FormatError`` when the
    base container or the WAL *header* is unusable, or on a generation
    mismatch; everything past a valid header is handled leniently.
    """
    from repro.core.serialize import load_compressed_bytes

    graph = load_compressed_bytes(base_blob, limits=limits, source=base_source)
    report = RecoveryReport(base_path=base_source, wal_path=wal_source)
    if wal_blob is None:
        return graph, report
    scan = scan_wal_bytes(wal_blob, wal_source)
    if scan.header is None:
        raise FormatError(
            scan.errors[0] if scan.errors
            else f"{wal_source}: unreadable WAL header"
        )
    report.generation = scan.header.generation
    if _bind_scan(scan, base_blob, graph.kind, wal_source, report):
        graph.apply_contacts(scan.contacts)
        report.batches_replayed = len(scan.batches)
        report.contacts_replayed = sum(len(b) for b in scan.batches)
        report.dropped_bytes = scan.dropped_bytes
        report.errors.extend(scan.errors)
    return graph, report


def open_with_wal(
    base_path: PathLike,
    wal_path: Optional[PathLike] = None,
    *,
    limits=None,
) -> Tuple["object", RecoveryReport]:
    """Open ``base_path`` with its WAL replayed; returns (graph, report).

    A missing WAL is a clean open of the base alone (``generation == -1``
    in the report).  See :func:`recover_bytes` for failure semantics.
    """
    base_path = pathlib.Path(base_path)
    wal_path = (
        default_wal_path(base_path) if wal_path is None
        else pathlib.Path(wal_path)
    )
    wal_blob = wal_path.read_bytes() if wal_path.exists() else None
    graph, report = recover_bytes(
        base_path.read_bytes(),
        wal_blob,
        limits=limits,
        base_source=str(base_path),
        wal_source=str(wal_path),
    )
    report.base_path = str(base_path)
    report.wal_path = str(wal_path)
    return graph, report


def open_for_ingest(
    base_path: PathLike,
    wal_path: Optional[PathLike] = None,
    *,
    fs: Filesystem = OS_FILESYSTEM,
    retry: RetryPolicy = DEFAULT_RETRY,
    limits=None,
) -> Tuple["object", WriteAheadLog]:
    """Open the base and a WAL ready for appending; returns (graph, wal).

    Creates a fresh generation-0 log when none exists; re-creates one
    (generation+1) when the existing log is superseded by a completed
    compaction; repairs a torn tail in place.  The returned graph has the
    log's committed contacts already replayed, so ingest code can bucket
    against its config and validate labels against live state.
    """
    from repro.core.serialize import load_compressed_bytes

    base_path = pathlib.Path(base_path)
    wal_path = (
        default_wal_path(base_path) if wal_path is None
        else pathlib.Path(wal_path)
    )
    base_blob = base_path.read_bytes()
    if not wal_path.exists():
        graph = load_compressed_bytes(
            base_blob, limits=limits, source=str(base_path)
        )
        header = WalHeader(
            kind=graph.kind,
            generation=0,
            base_size=len(base_blob),
            base_crc=zlib.crc32(base_blob),
        )
        return graph, WriteAheadLog.create(wal_path, header, fs=fs, retry=retry)
    graph, report = recover_bytes(
        base_blob,
        wal_path.read_bytes(),
        limits=limits,
        base_source=str(base_path),
        wal_source=str(wal_path),
    )
    if report.superseded:
        header = WalHeader(
            kind=graph.kind,
            generation=report.generation + 1,
            base_size=len(base_blob),
            base_crc=zlib.crc32(base_blob),
        )
        return graph, WriteAheadLog.create(wal_path, header, fs=fs, retry=retry)
    return graph, WriteAheadLog.open(wal_path, fs=fs)


@dataclasses.dataclass
class CompactionResult:
    """Outcome of one :func:`compact` run."""

    report: RecoveryReport
    generation: int
    snapshot_bytes: int
    num_contacts: int

    def summary(self) -> str:
        """Human-readable account, including a non-clean replay's report."""
        lines = [
            f"compacted {self.report.base_path}: {self.num_contacts} contacts "
            f"in {self.snapshot_bytes} bytes",
            f"  wal reset to generation {self.generation}",
        ]
        if not self.report.ok:
            lines.append("  replay was not clean:")
            lines.extend(
                "  " + line for line in self.report.summary().splitlines()
            )
        return "\n".join(lines)


def compact(
    base_path: PathLike,
    wal_path: Optional[PathLike] = None,
    *,
    fs: Filesystem = OS_FILESYSTEM,
    retry: RetryPolicy = DEFAULT_RETRY,
    limits=None,
) -> CompactionResult:
    """Fold base + WAL into a fresh snapshot and reset the log, crash-safely.

    Step order is the crash-safety argument:

    1. compress base + committed WAL contacts into new snapshot bytes
       (stored contacts are already bucketed, so compression runs at
       resolution 1 and the provenance resolution is stamped back --
       exactly :meth:`repro.core.growable.GrowableChronoGraph.checkpoint`);
    2. append a durable compaction marker naming the new snapshot
       (size + CRC32) to the old WAL -- crash after this: base unchanged,
       marker is replay-inert, nothing lost;
    3. atomically replace the snapshot -- crash after this: the old WAL
       no longer binds, but its marker proves the snapshot supersedes it
       (:func:`open_with_wal` reports ``superseded`` instead of failing);
    4. atomically replace the WAL with an empty generation+1 log bound to
       the new snapshot.
    """
    from repro.core import compress
    from repro.core.serialize import dumps_compressed
    from repro.graph.model import TemporalGraph

    base_path = pathlib.Path(base_path)
    wal_path = (
        default_wal_path(base_path) if wal_path is None
        else pathlib.Path(wal_path)
    )
    graph, report = open_with_wal(base_path, wal_path, limits=limits)

    resolution = graph.config.resolution
    cfg = (
        dataclasses.replace(graph.config, resolution=1)
        if resolution > 1 else graph.config
    )
    combined = TemporalGraph(
        graph.kind,
        graph.num_nodes,
        list(graph.iter_contacts()),
        name=graph.name,
        granularity="stored",
    )
    fresh = compress(combined, cfg)
    if resolution > 1:
        fresh.config = dataclasses.replace(fresh.config, resolution=resolution)
    payload = dumps_compressed(fresh)
    snapshot_crc = zlib.crc32(payload)

    if wal_path.exists() and not report.superseded:
        with WriteAheadLog.open(wal_path, fs=fs) as wal:
            wal.append_compact_marker(len(payload), snapshot_crc)
    atomic_write_bytes(base_path, payload, fs=fs, retry=retry)
    generation = max(report.generation, -1) + 1
    header = WalHeader(
        kind=graph.kind,
        generation=generation,
        base_size=len(payload),
        base_crc=snapshot_crc,
    )
    atomic_write_bytes(wal_path, header.to_bytes(), fs=fs, retry=retry)
    return CompactionResult(
        report=report,
        generation=generation,
        snapshot_bytes=len(payload),
        num_contacts=fresh.num_contacts,
    )
