"""Atomic, durable file replacement with an injectable filesystem.

Every artefact this repository persists -- ``.chrono`` containers, contact
lists, benchmark JSON, figure CSVs -- used to be written with a plain
truncate-and-write, so a crash or ``ENOSPC`` halfway through left a torn
file that the VERSION 2 verifier could detect but not prevent.  This module
provides the one sanctioned write path:

* :func:`atomic_write_bytes` writes to a temporary file *in the target's
  directory*, ``fsync``\\ s it, ``os.replace``\\ s it over the target and
  ``fsync``\\ s the directory, so at every instant the target path holds
  either the complete old content or the complete new content;
* all OS calls go through a :class:`Filesystem` object, so tests inject
  faults (``EIO``, ``ENOSPC``, partial writes, crash-at-op-N) without
  monkeypatching ``os`` -- see :mod:`repro.testing.faults`;
* transient errors (``EAGAIN``, ``EINTR``, ``EBUSY``) are retried with
  exponential backoff through an injectable :class:`RetryPolicy`.
"""

from __future__ import annotations

import errno
import itertools
import os
import pathlib
import random
import time
from typing import Callable, FrozenSet, Optional, Union

__all__ = [
    "Filesystem",
    "OS_FILESYSTEM",
    "RetryPolicy",
    "DEFAULT_RETRY",
    "NO_RETRY",
    "TRANSIENT_ERRNOS",
    "atomic_write_bytes",
    "atomic_write_text",
]

PathLike = Union[str, pathlib.Path]

#: OS errors worth retrying: the operation may succeed if simply re-issued.
#: ``ENOSPC``/``EIO`` are deliberately absent -- a full or failing disk does
#: not heal on a 10 ms backoff, and retrying would only delay the report.
TRANSIENT_ERRNOS: FrozenSet[int] = frozenset(
    {errno.EAGAIN, errno.EINTR, errno.EBUSY}
)

#: Distinguishes concurrent writers' temp files (same-PID collisions are
#: prevented by the counter, cross-PID ones by the pid in the name).
_TEMP_COUNTER = itertools.count()


class Filesystem:
    """The exact OS surface the durable writers rely on.

    Production code uses the module-level :data:`OS_FILESYSTEM` instance;
    tests substitute :class:`repro.testing.faults.FaultyFilesystem` to
    inject errors and crash points.  Only *mutating* calls are routed
    through here -- reads never endanger durability.
    """

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        """``os.open``; the only way writers obtain file descriptors."""
        return os.open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        """``os.write``; may write fewer bytes than given (callers loop)."""
        return os.write(fd, data)

    def fsync(self, fd: int) -> None:
        """``os.fsync``: the durability barrier for file contents."""
        os.fsync(fd)

    def close(self, fd: int) -> None:
        """``os.close``."""
        os.close(fd)

    def replace(self, src: str, dst: str) -> None:
        """``os.replace``: the atomic publish step."""
        os.replace(src, dst)

    def truncate(self, fd: int, length: int) -> None:
        """``os.ftruncate``: used to repair a torn WAL tail in place."""
        os.ftruncate(fd, length)

    def remove(self, path: str) -> None:
        """``os.remove``: cleanup of abandoned temp files."""
        os.remove(path)

    def fsync_dir(self, path: str) -> None:
        """Flush a directory entry so a rename survives power loss.

        Best effort: platforms that cannot ``open``/``fsync`` a directory
        (Windows) silently skip it -- the rename itself is still atomic.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


#: The real filesystem; default for every durable write in the repository.
OS_FILESYSTEM = Filesystem()


class RetryPolicy:
    """Retry an action on transient OS errors with exponential backoff.

    ``attempts`` bounds the total tries; ``base_delay`` (seconds) doubles
    after each failure.  ``jitter`` spreads each delay uniformly over
    ``[delay * (1 - jitter), delay * (1 + jitter)]`` so concurrent
    retriers hitting the same contended resource don't re-collide in
    lockstep; ``max_elapsed`` caps the *total* back-off time -- once the
    next sleep would push cumulative sleeping past it, the pending error
    is raised instead (an upper bound on how long a caller can be stalled
    regardless of ``attempts``).  ``sleep`` and ``rand`` are injectable so
    tests assert the schedule without waiting it out.  Non-transient
    errors and the final failure propagate unchanged.
    """

    def __init__(
        self,
        attempts: int = 3,
        base_delay: float = 0.01,
        *,
        jitter: float = 0.0,
        max_elapsed: Optional[float] = None,
        transient: FrozenSet[int] = TRANSIENT_ERRNOS,
        sleep: Callable[[float], None] = time.sleep,
        rand: Callable[[], float] = random.random,
    ) -> None:
        if attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {attempts}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if max_elapsed is not None and max_elapsed <= 0:
            raise ValueError(f"max_elapsed must be > 0, got {max_elapsed}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.jitter = jitter
        self.max_elapsed = max_elapsed
        self.transient = transient
        self.sleep = sleep
        self.rand = rand

    def _next_delay(self, delay: float) -> float:
        if not self.jitter:
            return delay
        return delay * (1.0 + self.jitter * (2.0 * self.rand() - 1.0))

    def run(self, action: Callable[[], int]) -> int:
        """Invoke ``action`` until it succeeds or retries are exhausted."""
        delay = self.base_delay
        elapsed = 0.0
        for attempt in range(self.attempts):
            try:
                return action()
            except OSError as exc:
                last = attempt == self.attempts - 1
                if exc.errno not in self.transient or last:
                    raise
                pause = self._next_delay(delay)
                if (
                    self.max_elapsed is not None
                    and elapsed + pause > self.max_elapsed
                ):
                    raise
                self.sleep(pause)
                elapsed += pause
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover


#: Default policy: three attempts, ~10 ms then ~20 ms backoff with 25 %
#: jitter, never stalling a caller more than one second in total.
DEFAULT_RETRY = RetryPolicy(jitter=0.25, max_elapsed=1.0)

#: Single attempt; for callers that prefer to surface transient errors.
NO_RETRY = RetryPolicy(attempts=1)


def _write_all(fs: Filesystem, fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = fs.write(fd, view)
        view = view[written:]


def atomic_write_bytes(
    path: PathLike,
    data: bytes,
    *,
    fs: Filesystem = OS_FILESYSTEM,
    retry: RetryPolicy = DEFAULT_RETRY,
    durable: bool = True,
) -> int:
    """Atomically replace ``path`` with ``data``; returns bytes written.

    The write lands in a fresh temp file beside the target (same
    filesystem, so the final ``replace`` is a true rename), is fsynced,
    renamed over the target, and the directory entry is fsynced.  A crash
    or error at any point leaves the target untouched (the temp file is
    removed on error; a crash may leave it behind, never in the target's
    place).  ``durable=False`` skips both fsyncs for throwaway outputs.
    """
    target = pathlib.Path(path)
    payload = bytes(data)

    def attempt() -> int:
        tmp = target.parent / (
            f".{target.name}.{next(_TEMP_COUNTER)}.{os.getpid()}.tmp"
        )
        fd = fs.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        try:
            try:
                _write_all(fs, fd, payload)
                if durable:
                    fs.fsync(fd)
            finally:
                fs.close(fd)
            fs.replace(str(tmp), str(target))
        except BaseException:
            try:
                fs.remove(str(tmp))
            except OSError:
                pass
            raise
        if durable:
            fs.fsync_dir(str(target.parent))
        return len(payload)

    return retry.run(attempt)


def atomic_write_text(
    path: PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fs: Filesystem = OS_FILESYSTEM,
    retry: RetryPolicy = DEFAULT_RETRY,
    durable: bool = True,
) -> int:
    """Text companion of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(
        path, text.encode(encoding), fs=fs, retry=retry, durable=durable
    )
