"""Time-partitioned segment store: LSM-style streaming ingest for ChronoGraph.

The single ``base + WAL`` pair of :mod:`repro.storage.recovery` rewrites the
whole snapshot on every compaction, which caps sustainable ingest rates.
This module generalises it into the structure continuous ingestion needs:

* a **store directory** holding immutable compressed ``.chrono`` segments
  (each a time partition of the contact stream), a hot WAL tail for the
  newest contacts, and a CRC-guarded, atomically-replaced ``MANIFEST``
  naming exactly which files constitute the store;
* a :class:`SegmentedChronoGraph` query facade that plans ``neighbors`` /
  ``snapshot`` / window queries across segments by time-range overlap and
  merges per-segment answers (each segment already implements the closed
  ``[t_start, t_end]`` window contract, and every contact lives in exactly
  one segment, so the union is exact);
* crash-safe **seal** and **compaction** protocols built on
  ``write-new -> fsync -> manifest swap -> delayed delete``: at every
  crash point the manifest references only complete, fsynced files, so
  recovery either restores bit-identical state or reports what it
  quarantined -- never silently wrong answers;
* per-segment **quarantine**: a segment that fails its CRC binding or
  strict load on open is isolated (queries degrade to the remaining
  segments) and surfaced in a :class:`HealthReport` instead of poisoning
  the store.

The background merge policy lives in :mod:`repro.storage.compactor`; this
module owns the on-disk protocol and the query plane.

Concurrency model: readers grab the immutable published view
(:attr:`SegmentStore.graph`) with a single attribute read -- they never
block.  All mutations (ingest commits, seals, compaction swaps) serialise
on a writer-writer commit guard that readers never touch, so holding it
across the durable manifest write is safe by construction: the
reader-visible swap is still one atomic reference assignment.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import struct
import threading
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bits import kernels
from repro.core.config import ChronoGraphConfig
from repro.errors import (
    ChecksumMismatchError,
    CorruptStreamError,
    FormatError,
    GenerationMismatchError,
    GraphDomainError,
    QueryInterrupted,
    RejectedError,
    TruncatedContainerError,
    UnsupportedVersionError,
)
from repro.graph.model import Contact, GraphKind
from repro.runtime.breaker import BreakerBoard
from repro.runtime.context import QueryContext, query_scope
from repro.storage.atomic import (
    DEFAULT_RETRY,
    OS_FILESYSTEM,
    Filesystem,
    RetryPolicy,
    atomic_write_bytes,
)
from repro.storage.wal import WalHeader, WriteAheadLog, repair_torn_tail, scan_wal

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "WAL_TAIL_NAME",
    "BackpressureError",
    "StoreClosedError",
    "StorePolicy",
    "SegmentInfo",
    "Manifest",
    "QuarantineEntry",
    "HealthReport",
    "SegmentedChronoGraph",
    "SegmentStore",
    "is_segment_store",
]

PathLike = Union[str, pathlib.Path]
ContactRow = Union[Contact, Tuple[int, ...]]

MANIFEST_NAME = "MANIFEST"
MANIFEST_MAGIC = b"CMAN"
MANIFEST_VERSION = 1
WAL_TAIL_NAME = "wal.tail"

_MANIFEST_FRAME = struct.Struct("<4sBI")
_MANIFEST_CRC = struct.Struct("<I")

#: Hard ceiling on the manifest JSON payload: a flipped length byte must
#: never trigger a proportional allocation (same discipline as DecodeLimits).
_MAX_MANIFEST_BYTES = 1 << 26

_KIND_NAMES = {k.value: k for k in GraphKind}

#: Sentinel distinguishing "part skipped" from any real sub-query result
#: (an empty list is a legitimate answer from a healthy part).
_PART_SKIPPED = object()


class BackpressureError(RuntimeError):
    """Raised when the hot tail is full and sealing is suspended.

    Happens only in degraded mode (dead or wedged compactor): the segment
    set is read-only, the tail keeps absorbing writes up to
    ``StorePolicy.backpressure_contacts``, and past that the store pushes
    back on the producer instead of growing without bound or crashing.

    Carries structured fields so producers can react without parsing the
    message: ``tail_size`` (committed contacts currently in the tail),
    ``cap`` (the policy bound that was hit) and ``retry_after`` (suggested
    seconds before retrying -- the compactor heartbeat timeout, since
    nothing can drain the tail sooner than a compactor state change).
    """

    def __init__(
        self,
        message: str,
        *,
        tail_size: Optional[int] = None,
        cap: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        """Attach the tail size, the cap it hit and a retry-after hint."""
        super().__init__(message)
        self.tail_size = tail_size
        self.cap = cap
        self.retry_after = retry_after


class StoreClosedError(RuntimeError):
    """Raised when ingesting into or sealing a closed store."""


@dataclasses.dataclass(frozen=True)
class StorePolicy:
    """Tuning knobs of the segmented store.

    ``seal_contacts`` is the tail size that triggers sealing into a fresh
    segment; ``max_segments`` is the segment count past which the
    compactor merges adjacent pairs; ``backpressure_contacts`` is the hard
    tail bound enforced while degraded; ``compactor_timeout`` is the
    heartbeat age (seconds) past which an attached compactor counts as
    wedged.
    """

    seal_contacts: int = 4096
    max_segments: int = 8
    backpressure_contacts: int = 65536
    compactor_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.seal_contacts < 1:
            raise ValueError(f"seal_contacts must be >= 1, got {self.seal_contacts}")
        if self.max_segments < 1:
            raise ValueError(f"max_segments must be >= 1, got {self.max_segments}")
        if self.backpressure_contacts < self.seal_contacts:
            raise ValueError(
                "backpressure_contacts must be >= seal_contacts "
                f"({self.backpressure_contacts} < {self.seal_contacts})"
            )


@dataclasses.dataclass(frozen=True)
class SegmentInfo:
    """One immutable segment as the manifest describes it.

    ``size``/``crc`` bind the manifest entry to the exact file bytes (the
    same discipline as the WAL's base binding); the time fields drive
    query planning: ``t_min``/``t_max`` bound the contact timestamps and
    ``t_end_max`` bounds ``t + duration`` so interval activity that
    outlives ``t_max`` still plans correctly.
    """

    name: str
    seq: int
    size: int
    crc: int
    contacts: int
    nodes: int
    t_min: int
    t_max: int
    t_end_max: int

    def overlaps(self, kind: GraphKind, t_start: int, t_end: int) -> bool:
        """Whether any contact of this segment can be active in the window.

        Must be a superset test: a segment this rejects may not contain an
        active contact for any graph kind's activity predicate (FORMAT.md,
        "Query window semantics"); a segment it accepts is simply queried.
        """
        if t_end < t_start:
            return False
        if self.t_min > t_end:
            # point: t in window; interval/incremental: t <= t_end.
            return False
        if kind is GraphKind.INCREMENTAL:
            return True  # edges persist once created
        if kind is GraphKind.INTERVAL:
            return self.t_end_max > t_start  # active on [t, t + d)
        return self.t_max >= t_start

    def to_json(self) -> Dict[str, int]:
        """Plain-dict form for the manifest payload."""
        return dataclasses.asdict(self)


def _segment_name(seq: int) -> str:
    return f"seg-{seq:08d}.chrono"


def _wal_binding(generation: int) -> Tuple[int, int]:
    """Synthetic (base_size, base_crc) binding a tail WAL to the store.

    The classic WAL binds to one immutable snapshot's bytes; the segmented
    store has no such single file, so the tail binds to its manifest-
    recorded generation instead: both sides of the pair are derived from
    the generation alone, and the manifest says which generation is
    current.  A WAL whose binding disagrees with its own generation field
    was written by something else entirely and is quarantined.
    """
    tag = f"chrono-segment-store:wal:{generation}".encode("ascii")
    return generation, zlib.crc32(tag)


def _require(cond: bool, source: str, message: str) -> None:
    if not cond:
        raise CorruptStreamError(f"{source}: {message}")


@dataclasses.dataclass(frozen=True)
class Manifest:
    """The generation-numbered list of files that constitute the store.

    Serialised as a small CRC-guarded binary frame around a JSON payload
    (FORMAT.md, "Segmented store"); always replaced atomically, never
    edited in place.  ``generation`` increases by one per manifest swap;
    ``wal_generation`` increases only when the tail log is reset (seal);
    ``next_seq`` is the lowest segment sequence number never yet used, so
    writers never reuse a file name whose delete may still be pending.
    """

    generation: int
    kind: GraphKind
    config: ChronoGraphConfig
    wal_generation: int
    next_seq: int
    segments: Tuple[SegmentInfo, ...]

    def to_bytes(self) -> bytes:
        """Serialise: magic, version, length-prefixed JSON, CRC32."""
        payload = json.dumps(
            {
                "generation": self.generation,
                "kind": self.kind.value,
                "config": dataclasses.asdict(self.config),
                "wal_generation": self.wal_generation,
                "next_seq": self.next_seq,
                "segments": [s.to_json() for s in self.segments],
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        return (
            _MANIFEST_FRAME.pack(MANIFEST_MAGIC, MANIFEST_VERSION, len(payload))
            + payload
            + _MANIFEST_CRC.pack(zlib.crc32(payload))
        )

    @classmethod
    def from_bytes(cls, data: bytes, source: str = "<manifest>") -> "Manifest":
        """Parse and verify a manifest; raises from ``FormatError`` on any flaw."""
        if len(data) < _MANIFEST_FRAME.size:
            raise TruncatedContainerError(
                f"{source}: truncated manifest frame "
                f"({len(data)} of {_MANIFEST_FRAME.size}+ bytes)"
            )
        magic, version, length = _MANIFEST_FRAME.unpack_from(data, 0)
        if magic != MANIFEST_MAGIC:
            raise FormatError(f"{source}: not a ChronoGraph segment manifest (bad magic)")
        if version != MANIFEST_VERSION:
            raise UnsupportedVersionError(
                f"{source}: unsupported manifest version {version}"
            )
        if length > _MAX_MANIFEST_BYTES:
            raise CorruptStreamError(
                f"{source}: manifest declares {length} payload bytes "
                f"(limit {_MAX_MANIFEST_BYTES})"
            )
        end = _MANIFEST_FRAME.size + length
        if end + _MANIFEST_CRC.size > len(data):
            raise TruncatedContainerError(f"{source}: truncated manifest payload")
        if end + _MANIFEST_CRC.size != len(data):
            raise CorruptStreamError(f"{source}: trailing bytes after manifest")
        payload = data[_MANIFEST_FRAME.size : end]
        (crc,) = _MANIFEST_CRC.unpack_from(data, end)
        if zlib.crc32(payload) != crc:
            raise ChecksumMismatchError(f"{source}: manifest checksum mismatch")
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise CorruptStreamError(
                f"{source}: manifest payload is not valid JSON: {exc}"
            ) from exc
        return cls._from_json(doc, source)

    @classmethod
    def _from_json(cls, doc: object, source: str) -> "Manifest":
        _require(isinstance(doc, dict), source, "manifest payload is not an object")
        assert isinstance(doc, dict)
        for key in ("generation", "wal_generation", "next_seq"):
            value = doc.get(key)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                source,
                f"manifest field {key!r} must be a non-negative integer",
            )
        kind = _KIND_NAMES.get(doc.get("kind"))
        _require(kind is not None, source, f"unknown graph kind {doc.get('kind')!r}")
        assert kind is not None
        try:
            config = ChronoGraphConfig(**doc.get("config", {}))
        except (TypeError, ValueError) as exc:
            raise CorruptStreamError(
                f"{source}: manifest config is invalid: {exc}"
            ) from exc
        raw_segments = doc.get("segments")
        _require(isinstance(raw_segments, list), source, "manifest segments must be a list")
        segments: List[SegmentInfo] = []
        seen_names = set()
        for i, raw in enumerate(raw_segments):
            segments.append(cls._segment_from_json(raw, i, source))
            info = segments[-1]
            _require(info.name not in seen_names, source, f"duplicate segment {info.name!r}")
            seen_names.add(info.name)
            _require(
                info.seq < doc["next_seq"],
                source,
                f"segment {info.name!r} has seq {info.seq} >= next_seq {doc['next_seq']}",
            )
        return cls(
            generation=doc["generation"],
            kind=kind,
            config=config,
            wal_generation=doc["wal_generation"],
            next_seq=doc["next_seq"],
            segments=tuple(segments),
        )

    @staticmethod
    def _segment_from_json(raw: object, index: int, source: str) -> SegmentInfo:
        _require(isinstance(raw, dict), source, f"segment #{index} is not an object")
        assert isinstance(raw, dict)
        for key in ("seq", "size", "crc", "contacts", "nodes"):
            value = raw.get(key)
            _require(
                isinstance(value, int) and not isinstance(value, bool) and value >= 0,
                source,
                f"segment #{index} field {key!r} must be a non-negative integer",
            )
        for key in ("t_min", "t_max", "t_end_max"):
            value = raw.get(key)
            _require(
                isinstance(value, int) and not isinstance(value, bool),
                source,
                f"segment #{index} field {key!r} must be an integer",
            )
        name = raw.get("name")
        _require(isinstance(name, str), source, f"segment #{index} name must be a string")
        assert isinstance(name, str)
        # A manifest is untrusted input: a hostile name must not escape the
        # store directory or collide with the store's own bookkeeping files.
        _require(
            name == os.path.basename(name)
            and name not in ("", ".", "..", MANIFEST_NAME)
            and not name.startswith("wal."),
            source,
            f"segment #{index} has an unsafe file name {name!r}",
        )
        _require(raw["contacts"] > 0, source, f"segment {name!r} declares no contacts")
        _require(
            raw["t_min"] <= raw["t_max"] <= raw["t_end_max"],
            source,
            f"segment {name!r} has an inverted time range",
        )
        return SegmentInfo(
            name=name,
            seq=raw["seq"],
            size=raw["size"],
            crc=raw["crc"],
            contacts=raw["contacts"],
            nodes=raw["nodes"],
            t_min=raw["t_min"],
            t_max=raw["t_max"],
            t_end_max=raw["t_end_max"],
        )


@dataclasses.dataclass(frozen=True)
class QuarantineEntry:
    """One isolated file: why it was pulled from service, what salvage saw."""

    name: str
    reason: str
    salvaged_nodes: int = 0
    salvaged_contacts: int = 0


@dataclasses.dataclass
class HealthReport:
    """Operational truth of a store at one instant.

    ``ok`` means full service: nothing quarantined, no data-bearing file
    unaccounted for, and an attached compactor (if any) alive.  A degraded
    store still answers queries over the healthy segments plus the tail --
    the report says exactly what is missing from those answers.
    """

    path: str
    generation: int
    wal_generation: int
    segments: int
    segment_contacts: int
    tail_contacts: int
    quarantined: List[QuarantineEntry]
    compactor: str  # "none" | "healthy" | "wedged" | "dead"
    degraded: bool
    events: List[str]
    #: Per-segment circuit-breaker snapshots keyed by segment name
    #: (see :meth:`repro.runtime.breaker.CircuitBreaker.snapshot`).
    breakers: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def ok(self) -> bool:
        """Full service: no quarantine, no degradation."""
        return not self.quarantined and not self.degraded

    @property
    def total_contacts(self) -> int:
        """Contacts currently served (healthy segments + tail)."""
        return self.segment_contacts + self.tail_contacts

    def summary(self) -> str:
        """One line per fact, mirroring the other report types."""
        status = "ok" if self.ok else "degraded"
        lines = [
            f"store {self.path}: {status} (generation {self.generation})",
            f"  segments: {self.segments} ({self.segment_contacts} contacts)",
            f"  tail: {self.tail_contacts} contacts "
            f"(wal generation {self.wal_generation})",
            f"  compactor: {self.compactor}",
        ]
        for q in self.quarantined:
            lines.append(
                f"  quarantined: {q.name}: {q.reason} "
                f"(salvage saw {q.salvaged_nodes} nodes / "
                f"{q.salvaged_contacts} contacts)"
            )
        for name in sorted(self.breakers):
            snap = self.breakers[name]
            if snap.get("state") == "closed" and not snap.get("trips"):
                continue  # quiet breakers are noise in a one-line-per-fact report
            lines.append(
                f"  breaker: {name}: {snap.get('state')} "
                f"(trips {snap.get('trips')}, "
                f"retry after {snap.get('retry_after')}s)"
            )
        for event in self.events:
            lines.append(f"  event: {event}")
        return "\n".join(lines)


class SegmentedChronoGraph:
    """Immutable query view over sealed segments plus the hot tail.

    Every query merges per-segment answers with the tail overlay graph's
    answer.  Each segment is a :class:`CompressedChronoGraph` already
    implementing the closed-window activity contract, and each contact
    lives in exactly one segment or the tail, so set-union of per-part
    results is exact -- the same merge semantics ``apply_contacts`` uses
    inside a single graph, lifted across partitions.

    The view object itself is immutable (the segment tuple never changes);
    the tail graph mutates internally via its own thread-safe overlay, so
    a reader holding one view sees a consistent segment set plus a
    linearizable tail.

    Resource governance: every query accepts an optional
    ``ctx=`` :class:`repro.runtime.context.QueryContext` (deadline /
    cancel / budget polls reach down into per-part decode loops), and when
    the view carries a :class:`repro.runtime.breaker.BreakerBoard` each
    *segment* part is guarded by a named circuit breaker -- a part that
    repeatedly fails decode (or stalls past the deadline) trips open and
    is skipped, annotated on the context as a reported subset when the
    query consents via ``allow_partial`` and rejected otherwise.  The hot
    tail is never breakered (it is in-memory and the store's only write
    path), and :meth:`iter_contacts` deliberately bypasses the breakers:
    seal and compaction read through it and must always see every contact.
    """

    def __init__(
        self,
        kind: GraphKind,
        segments: Tuple[Tuple[SegmentInfo, "object"], ...],
        tail: "object",
        *,
        breakers: Optional[BreakerBoard] = None,
    ) -> None:
        self.kind = kind
        self._segments = segments
        self._tail = tail
        self._breakers = breakers

    # -- size ----------------------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Healthy (servable) segments in this view."""
        return len(self._segments)

    @property
    def num_nodes(self) -> int:
        """One past the highest node label any part knows about."""
        n = self._tail.num_nodes
        for info, _graph in self._segments:
            n = max(n, info.nodes)
        return n

    @property
    def num_contacts(self) -> int:
        """Total contacts served across segments and tail."""
        return sum(info.contacts for info, _ in self._segments) + self._tail.num_contacts

    # -- planning ------------------------------------------------------------

    def decode_kernel_info(self) -> Dict[str, object]:
        """Which bulk-decode kernel tier per-part query merges resolve to.

        Mirrors :meth:`CompressedChronoGraph.decode_kernel_info` (the
        planner is process-wide); surfaced on the view so callers can
        confirm the tier without reaching into a segment.
        """
        return kernels.kernel_info()

    def plan(self, t_start: int, t_end: int) -> List[SegmentInfo]:
        """The segments a window query must consult, in seal order."""
        kind = self.kind
        return [
            info
            for info, _graph in self._segments
            if info.overlaps(kind, t_start, t_end)
        ]

    def _parts(self, t_start: int, t_end: int) -> List["object"]:
        """Graphs to consult for a window: planned segments plus the tail."""
        return [graph for _name, graph in self._named_parts(t_start, t_end)]

    def _named_parts(
        self, t_start: int, t_end: int
    ) -> List[Tuple[Optional[str], "object"]]:
        """(name, graph) pairs for a window; the unguarded tail is last.

        The tail's name is ``None`` -- the marker :meth:`_query_part` uses
        to exempt it from breaker consultation.
        """
        kind = self.kind
        parts: List[Tuple[Optional[str], object]] = [
            (info.name, graph)
            for info, graph in self._segments
            if info.overlaps(kind, t_start, t_end)
        ]
        parts.append((None, self._tail))
        return parts

    def _check_node(self, u: int) -> None:
        n = self.num_nodes
        if not 0 <= u < n:
            raise GraphDomainError(f"node {u} outside [0, {n})")

    # -- breaker-guarded part execution --------------------------------------

    def _query_part(self, name, ctx, run):
        """Run one part's sub-query under its circuit breaker, if any.

        Returns the sub-query's result, or the module sentinel
        ``_PART_SKIPPED`` when the part was skipped (breaker open, or the
        part failed decode and the context consented to a partial
        answer).  Outcomes feed the breaker: a clean return records
        success; a :class:`FormatError` records failure (CRC/decode rot in
        that part's bytes); a :class:`QueryInterrupted` *also* records
        failure -- the deadline blew while inside this part, so the stall
        is attributed to it -- but always propagates, because the query's
        envelope is violated regardless of which part consumed it.
        """
        board = self._breakers
        breaker = (
            board.get(name) if board is not None and name is not None else None
        )
        if breaker is not None and not breaker.allow():
            self._skip_part(
                name, ctx, f"breaker {breaker.state}", breaker.retry_after(),
                cause=None,
            )
            return _PART_SKIPPED
        try:
            result = run()
        except QueryInterrupted as exc:
            if breaker is not None:
                breaker.record_failure(f"{type(exc).__name__}: {exc}")
            raise
        except FormatError as exc:
            retry: Optional[float] = None
            if breaker is not None:
                breaker.record_failure(f"{type(exc).__name__}: {exc}")
                retry = breaker.retry_after()
            self._skip_part(
                name, ctx, f"{type(exc).__name__}: {exc}", retry, cause=exc
            )
            return _PART_SKIPPED
        if breaker is not None:
            breaker.record_success()
        return result

    def _skip_part(self, name, ctx, reason, retry_after, *, cause):
        """Annotate a skipped part on ``ctx``, or refuse the partial answer.

        A query only ever returns a subset with the caller's consent
        (``ctx.allow_partial``), and then the subset is *reported* via
        :meth:`QueryContext.note_skip`.  Without consent the original
        failure propagates, or -- when the part was never tried because
        its breaker is open -- a :class:`repro.errors.RejectedError` with
        the breaker's retry-after hint.
        """
        if ctx is not None and ctx.allow_partial:
            ctx.note_skip(name or "tail", reason, retry_after=retry_after)
            return
        if cause is not None:
            raise cause
        raise RejectedError(
            f"segment {name} is isolated by its circuit breaker ({reason}); "
            "pass a QueryContext with allow_partial=True to accept a "
            "reported subset",
            reason="segment-breaker",
            retry_after=retry_after,
        )

    # -- queries -------------------------------------------------------------

    def neighbors(
        self,
        u: int,
        t_start: int,
        t_end: int,
        *,
        ctx: Optional[QueryContext] = None,
    ) -> List[int]:
        """Distinct neighbors of ``u`` active in the closed window, sorted."""
        self._check_node(u)
        out: set = set()
        with query_scope(ctx):
            for name, graph in self._named_parts(t_start, t_end):
                if u >= graph.num_nodes:
                    continue
                part = self._query_part(
                    name,
                    ctx,
                    lambda g=graph: g.neighbors(u, t_start, t_end, ctx=ctx),
                )
                if part is not _PART_SKIPPED:
                    out.update(part)
        return sorted(out)

    def neighbors_many(
        self,
        queries: Sequence[Tuple[int, int, int]],
        *,
        ctx: Optional[QueryContext] = None,
    ) -> List[List[int]]:
        """Batch :meth:`neighbors`; one merged answer per (u, t1, t2) query."""
        with query_scope(ctx):
            return [self.neighbors(u, t1, t2, ctx=ctx) for u, t1, t2 in queries]

    def has_edge(
        self,
        u: int,
        v: int,
        t_start: int,
        t_end: int,
        *,
        ctx: Optional[QueryContext] = None,
    ) -> bool:
        """Whether edge (u, v) is active anywhere in the closed window."""
        self._check_node(u)
        with query_scope(ctx):
            for name, graph in self._named_parts(t_start, t_end):
                if u >= graph.num_nodes:
                    continue
                part = self._query_part(
                    name,
                    ctx,
                    lambda g=graph: g.has_edge(u, v, t_start, t_end, ctx=ctx),
                )
                if part is not _PART_SKIPPED and part:
                    return True
        return False

    def contacts_of(
        self, u: int, *, ctx: Optional[QueryContext] = None
    ) -> List[Contact]:
        """Every contact of ``u`` across all parts, (label, time)-sorted."""
        self._check_node(u)
        rows: List[Contact] = []
        with query_scope(ctx):
            for info, graph in self._segments:
                if u >= graph.num_nodes:
                    continue
                part = self._query_part(
                    info.name, ctx, lambda g=graph: g.contacts_of(u, ctx=ctx)
                )
                if part is not _PART_SKIPPED:
                    rows.extend(part)
            if u < self._tail.num_nodes:
                rows.extend(self._tail.contacts_of(u, ctx=ctx))
        rows.sort(key=lambda c: (c.v, c.time, c.duration))
        return rows

    def edge_timestamps(
        self, u: int, v: int, *, ctx: Optional[QueryContext] = None
    ) -> List[int]:
        """All activation timestamps of edge (u, v), ascending."""
        self._check_node(u)
        times: List[int] = []
        with query_scope(ctx):
            for info, graph in self._segments:
                if u >= graph.num_nodes:
                    continue
                part = self._query_part(
                    info.name,
                    ctx,
                    lambda g=graph: g.edge_timestamps(u, v, ctx=ctx),
                )
                if part is not _PART_SKIPPED:
                    times.extend(part)
            if u < self._tail.num_nodes:
                times.extend(self._tail.edge_timestamps(u, v, ctx=ctx))
        times.sort()
        return times

    def snapshot(
        self,
        t_start: int,
        t_end: int,
        *,
        ctx: Optional[QueryContext] = None,
    ) -> List[Tuple[int, int]]:
        """All distinct edges active within the closed window, sorted."""
        per_node: Dict[int, set] = {}
        with query_scope(ctx):
            for name, graph in self._named_parts(t_start, t_end):
                part = self._query_part(
                    name, ctx, lambda g=graph: g.snapshot(t_start, t_end, ctx=ctx)
                )
                if part is _PART_SKIPPED:
                    continue
                for u, v in part:
                    per_node.setdefault(u, set()).add(v)
        edges: List[Tuple[int, int]] = []
        for u in sorted(per_node):
            for v in sorted(per_node[u]):
                edges.append((u, v))
        return edges

    def iter_contacts(self):
        """Yield every stored contact, segments in seal order then the tail."""
        for _info, graph in self._segments:
            for c in graph.iter_contacts():
                yield c
        for c in self._tail.iter_contacts():
            yield c


def is_segment_store(path: PathLike) -> bool:
    """Whether ``path`` is a segment-store directory (has a MANIFEST)."""
    path = pathlib.Path(path)
    return path.is_dir() and (path / MANIFEST_NAME).is_file()


def _compress_stored(
    kind: GraphKind,
    contacts: Sequence[Contact],
    config: ChronoGraphConfig,
    name: str,
):
    """Compress already-bucketed contacts into container bytes.

    Stored contacts are in post-aggregation time units, so compression
    runs at resolution 1 and the provenance resolution is stamped back --
    the exact discipline of :func:`repro.storage.recovery.compact`.
    """
    from repro.core import compress
    from repro.core.serialize import dumps_compressed
    from repro.graph.model import TemporalGraph

    resolution = config.resolution
    cfg = (
        dataclasses.replace(config, resolution=1) if resolution > 1 else config
    )
    num_nodes = 0
    for c in contacts:
        num_nodes = max(num_nodes, c.u + 1, c.v + 1)
    graph = TemporalGraph(kind, num_nodes, list(contacts), name=name, granularity="stored")
    fresh = compress(graph, cfg)
    if resolution > 1:
        fresh.config = dataclasses.replace(fresh.config, resolution=resolution)
    return dumps_compressed(fresh)


def _segment_info_for(
    name: str, seq: int, payload: bytes, contacts: Sequence[Contact]
) -> SegmentInfo:
    """Manifest entry binding ``payload`` and summarising its time range."""
    t_min = min(c.time for c in contacts)
    t_max = max(c.time for c in contacts)
    t_end_max = max(c.time + c.duration for c in contacts)
    nodes = 0
    for c in contacts:
        nodes = max(nodes, c.u + 1, c.v + 1)
    return SegmentInfo(
        name=name,
        seq=seq,
        size=len(payload),
        crc=zlib.crc32(payload),
        contacts=len(contacts),
        nodes=nodes,
        t_min=t_min,
        t_max=t_max,
        t_end_max=max(t_max, t_end_max),
    )


def _empty_tail(kind: GraphKind):
    """A zero-node compressed graph ready to absorb the tail overlay."""
    from repro.core import compress
    from repro.graph.builders import graph_from_contacts

    return compress(graph_from_contacts(kind, [], num_nodes=0))


class SegmentStore:
    """Writer handle and query front end over one store directory.

    Create with :meth:`create`, reopen with :meth:`open` (which performs
    full crash recovery: manifest verification, per-segment quarantine,
    tail repair, orphan sweep).  Ingest with :meth:`ingest`; sealing and
    compaction normally run automatically (inline past the seal threshold,
    in the background via :class:`repro.storage.compactor.Compactor`) but
    are also callable directly for synchronous use.
    """

    def __init__(
        self,
        directory: pathlib.Path,
        manifest: Manifest,
        view: SegmentedChronoGraph,
        wal: Optional[WriteAheadLog],
        tail_contacts: List[Contact],
        *,
        fs: Filesystem,
        retry: RetryPolicy,
        limits=None,
        policy: StorePolicy,
        quarantined: Optional[List[QuarantineEntry]] = None,
        events: Optional[List[str]] = None,
        breakers: Optional[BreakerBoard] = None,
        mmap_segments: bool = True,
    ) -> None:
        self.directory = directory
        self.policy = policy
        self._fs = fs
        self._retry = retry
        self._limits = limits
        # Whether sealed segments are memory-mapped (shared page cache)
        # rather than read into per-process heap bytes.
        self._mmap_segments = mmap_segments
        self._manifest = manifest
        self._view = view
        self._wal = wal
        self._tail_contacts = tail_contacts
        self._quarantined = list(quarantined or [])
        self._events = list(events or [])
        # Breaker state belongs to the store, not the view: a tripped
        # segment stays tripped across the view rebuilds that follow
        # seals and compactions.
        self._breakers = breakers if breakers is not None else BreakerBoard()
        self._next_seq = manifest.next_seq
        # Writer-writer serialisation only; readers use the published view
        # and never touch this guard, so durable writes under it cannot
        # stall a query (the reader-visible swap is one reference store).
        self._commit_guard = threading.Lock()
        self._compactor = None  # attached by repro.storage.compactor
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: PathLike,
        kind: GraphKind,
        config: Optional[ChronoGraphConfig] = None,
        *,
        fs: Filesystem = OS_FILESYSTEM,
        retry: RetryPolicy = DEFAULT_RETRY,
        limits=None,
        policy: Optional[StorePolicy] = None,
    ) -> "SegmentStore":
        """Initialise an empty store directory (refuses to overwrite one)."""
        directory = pathlib.Path(path)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            raise FileExistsError(f"{directory} already holds a segment store")
        os.makedirs(str(directory), exist_ok=True)
        manifest = Manifest(
            generation=0,
            kind=kind,
            config=config or ChronoGraphConfig(),
            wal_generation=0,
            next_seq=0,
            segments=(),
        )
        atomic_write_bytes(manifest_path, manifest.to_bytes(), fs=fs, retry=retry)
        wal = cls._create_tail_wal(directory, manifest, fs=fs, retry=retry)
        board = BreakerBoard()
        view = SegmentedChronoGraph(kind, (), _empty_tail(kind), breakers=board)
        return cls(
            directory,
            manifest,
            view,
            wal,
            [],
            fs=fs,
            retry=retry,
            limits=limits,
            policy=policy or StorePolicy(),
            breakers=board,
        )

    @staticmethod
    def _create_tail_wal(
        directory: pathlib.Path,
        manifest: Manifest,
        *,
        fs: Filesystem,
        retry: RetryPolicy,
    ) -> WriteAheadLog:
        base_size, base_crc = _wal_binding(manifest.wal_generation)
        header = WalHeader(
            kind=manifest.kind,
            generation=manifest.wal_generation,
            base_size=base_size,
            base_crc=base_crc,
        )
        return WriteAheadLog.create(
            directory / WAL_TAIL_NAME, header, fs=fs, retry=retry
        )

    @classmethod
    def open(
        cls,
        path: PathLike,
        *,
        fs: Filesystem = OS_FILESYSTEM,
        retry: RetryPolicy = DEFAULT_RETRY,
        limits=None,
        policy: Optional[StorePolicy] = None,
        read_only: bool = False,
        mmap: bool = True,
    ) -> "SegmentStore":
        """Open with full crash recovery; raises ``FormatError`` only when
        the manifest itself is unreadable (segments and the tail degrade to
        quarantine instead).

        ``read_only`` skips every repair side effect (tail truncation,
        quarantine renames, orphan sweeps, WAL creation) so diagnostics can
        inspect a damaged store without changing a byte of it.

        With ``mmap=True`` (the default) sealed segments are memory-mapped
        read-only instead of read into the heap, so N processes opening the
        same store share one copy of every segment in the OS page cache.
        Integrity checking is unchanged -- the manifest binding and every
        container checksum are still verified eagerly at open (the CRC scan
        touches the mapped pages without copying them).  Segments are
        immutable and replaced only by whole-file rename, so a concurrent
        writer sealing or compacting never perturbs a mapped reader: the
        reader's mapping pins the old inode until the view is rebuilt.
        """
        from repro.core.serialize import _map_readonly, load_compressed_bytes
        from repro.core.validate import SalvageReport

        directory = pathlib.Path(path)
        manifest_path = directory / MANIFEST_NAME
        manifest = Manifest.from_bytes(
            manifest_path.read_bytes(), str(manifest_path)
        )
        events: List[str] = []
        quarantined: List[QuarantineEntry] = []
        loaded: List[Tuple[SegmentInfo, object]] = []
        for info in manifest.segments:
            seg_path = directory / info.name
            reason: Optional[str] = None
            blob = b""
            try:
                blob = _map_readonly(seg_path) if mmap else seg_path.read_bytes()
            except OSError as exc:
                reason = f"unreadable: {exc}"
            if reason is None and (
                len(blob) != info.size or zlib.crc32(blob) != info.crc
            ):
                reason = (
                    f"manifest binding mismatch ({len(blob)} bytes / "
                    f"crc 0x{zlib.crc32(blob):08x}, manifest says {info.size} "
                    f"bytes / crc 0x{info.crc:08x})"
                )
            if reason is None:
                try:
                    graph = load_compressed_bytes(
                        blob, limits=limits, source=str(seg_path)
                    )
                except FormatError as exc:
                    reason = f"{type(exc).__name__}: {exc}"
                else:
                    loaded.append((info, graph))
                    continue
            report: Optional[SalvageReport] = None
            if blob:
                from repro.core.serialize import salvage_bytes

                report = salvage_bytes(blob, limits=limits, source=str(seg_path))
            quarantined.append(
                QuarantineEntry(
                    name=info.name,
                    reason=reason,
                    salvaged_nodes=report.nodes_recovered if report else 0,
                    salvaged_contacts=report.contacts_recovered if report else 0,
                )
            )
        tail_contacts, wal, tail_events, tail_quarantine = cls._recover_tail(
            directory, manifest, fs=fs, retry=retry, read_only=read_only
        )
        events.extend(tail_events)
        quarantined.extend(tail_quarantine)
        if not read_only:
            events.extend(cls._sweep_orphans(directory, manifest, fs=fs))
        tail = _empty_tail(manifest.kind)
        if tail_contacts:
            tail.apply_contacts(tail_contacts)
        board = BreakerBoard()
        view = SegmentedChronoGraph(
            manifest.kind, tuple(loaded), tail, breakers=board
        )
        return cls(
            directory,
            manifest,
            view,
            wal,
            list(tail_contacts),
            fs=fs,
            retry=retry,
            limits=limits,
            policy=policy or StorePolicy(),
            quarantined=quarantined,
            events=events,
            breakers=board,
            mmap_segments=mmap,
        )

    @classmethod
    def _recover_tail(
        cls,
        directory: pathlib.Path,
        manifest: Manifest,
        *,
        fs: Filesystem,
        retry: RetryPolicy,
        read_only: bool,
    ) -> Tuple[List[Contact], Optional[WriteAheadLog], List[str], List[QuarantineEntry]]:
        """Recover the hot tail against the manifest's WAL generation.

        Returns (committed contacts, open writer handle or None, events,
        quarantine entries).  Every outcome is explicit: a missing or
        stale log is re-created (its contacts are provably already sealed
        or were never durable), a torn tail is truncated and reported, and
        a foreign or unreadable log is quarantined -- renamed aside, never
        replayed, never deleted.
        """
        wal_path = directory / WAL_TAIL_NAME
        events: List[str] = []
        quarantine: List[QuarantineEntry] = []
        expected_gen = manifest.wal_generation

        def fresh() -> Optional[WriteAheadLog]:
            if read_only:
                return None
            return cls._create_tail_wal(directory, manifest, fs=fs, retry=retry)

        if not wal_path.exists():
            events.append(
                "wal tail missing; created fresh (interrupted seal had "
                "already folded its contacts into a sealed segment)"
            )
            return [], fresh(), events, quarantine

        scan = scan_wal(wal_path)
        header = scan.header
        if header is not None:
            bound_size, bound_crc = _wal_binding(header.generation)
            bound = (
                header.kind is manifest.kind
                and header.base_size == bound_size
                and header.base_crc == bound_crc
            )
            if bound and header.generation == expected_gen:
                if scan.torn:
                    if read_only:
                        events.append(
                            f"wal tail torn: {scan.dropped_bytes} trailing "
                            "bytes would be dropped (read-only: not repaired)"
                        )
                    else:
                        dropped = repair_torn_tail(wal_path, scan, fs=fs)
                        events.append(
                            f"wal tail torn: dropped {dropped} trailing bytes "
                            "(crash mid-commit; committed batches intact)"
                        )
                    for err in scan.errors:
                        events.append(f"wal tail: {err}")
                wal = None if read_only else WriteAheadLog.open(wal_path, fs=fs)
                return list(scan.contacts), wal, events, quarantine
            if bound and header.generation < expected_gen:
                events.append(
                    f"wal tail at stale generation {header.generation} "
                    f"(manifest says {expected_gen}): its contacts are "
                    "already sealed; log reset"
                )
                return [], fresh(), events, quarantine
            reason = (
                f"wal tail at generation {header.generation} does not bind "
                f"to this store (manifest wal_generation {expected_gen})"
            )
        else:
            reason = "; ".join(scan.errors) or "unreadable WAL header"

        # Foreign or unreadable log: preserve the bytes out of the data
        # path.  Replay would risk serving contacts that were never part
        # of this store -- a silent wrong answer, the one forbidden outcome.
        quarantine.append(
            QuarantineEntry(
                name=WAL_TAIL_NAME,
                reason=reason,
                salvaged_contacts=sum(len(b) for b in scan.batches),
            )
        )
        if not read_only:
            aside = cls._quarantine_aside(directory, fs)
            fs.replace(str(wal_path), str(aside))
            events.append(f"wal tail quarantined to {aside.name}")
        return [], fresh(), events, quarantine

    @staticmethod
    def _quarantine_aside(directory: pathlib.Path, fs: Filesystem) -> pathlib.Path:
        for i in range(10_000):
            candidate = directory / f"wal.quarantine-{i:04d}"
            if not candidate.exists():
                return candidate
        raise RuntimeError(f"{directory}: too many quarantined WAL tails")

    @staticmethod
    def _sweep_orphans(
        directory: pathlib.Path, manifest: Manifest, *, fs: Filesystem
    ) -> List[str]:
        """Delete segment files the manifest no longer references.

        This is the delayed-delete half of every swap protocol: a crash
        between the manifest swap and the delete leaves complete, fsynced
        but unreferenced files, which are semantically already deleted.
        Temp litter from interrupted atomic writes goes the same way.
        Quarantine files (``wal.quarantine-*``) are never swept.
        """
        events: List[str] = []
        referenced = {info.name for info in manifest.segments}
        for entry in sorted(directory.iterdir()):
            name = entry.name
            doomed = (
                name.startswith("seg-")
                and name.endswith(".chrono")
                and name not in referenced
            ) or name.endswith(".tmp")
            if not doomed:
                continue
            try:
                fs.remove(str(entry))
            except OSError:
                continue  # sweep again next open
            events.append(f"swept orphan {name}")
        return events

    def close(self) -> None:
        """Detach the compactor reference and release the tail descriptor."""
        with self._commit_guard:
            self._closed = True
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- read side -----------------------------------------------------------

    @property
    def graph(self) -> SegmentedChronoGraph:
        """The current immutable query view (one atomic reference read)."""
        return self._view

    @property
    def manifest(self) -> Manifest:
        """The current in-memory manifest (matches the durable one)."""
        return self._manifest

    @property
    def tail_size(self) -> int:
        """Committed contacts currently living in the hot tail."""
        return len(self._tail_contacts)

    def attach_compactor(self, compactor) -> None:
        """Register the background compactor the watchdog should monitor."""
        self._compactor = compactor

    def _compactor_state(self) -> str:
        compactor = self._compactor
        if compactor is None:
            return "none"
        return compactor.state(self.policy.compactor_timeout)

    def health(self) -> HealthReport:
        """Snapshot the store's operational state into a report."""
        view = self._view
        manifest = self._manifest
        compactor = self._compactor_state()
        open_breakers = self._breakers.open_count()
        return HealthReport(
            path=str(self.directory),
            generation=manifest.generation,
            wal_generation=manifest.wal_generation,
            segments=view.segment_count,
            segment_contacts=sum(i.contacts for i in manifest.segments),
            tail_contacts=len(self._tail_contacts),
            quarantined=list(self._quarantined),
            compactor=compactor,
            degraded=bool(self._quarantined)
            or compactor in ("dead", "wedged")
            or open_breakers > 0,
            events=list(self._events),
            breakers=self._breakers.states(),
        )

    def decode_kernel_info(self) -> Dict[str, object]:
        """Which bulk-decode kernel tier per-part query merges resolve to.

        Mirrors :meth:`CompressedChronoGraph.decode_kernel_info` (the
        planner is process-wide); surfaced here so a segmented deployment
        can confirm its tier without reaching into a part.
        """
        return kernels.kernel_info()

    # -- ingest --------------------------------------------------------------

    def ingest(self, rows: Iterable[ContactRow]) -> int:
        """Durably commit a batch of contacts into the hot tail.

        Contacts are bucketed by the store's configured resolution (the
        same discipline as ``GrowableChronoGraph.add_contact``), appended
        to the tail WAL and fsynced as one all-or-nothing batch, then
        applied to the in-memory tail overlay.  Crossing the seal
        threshold seals inline -- unless the store is degraded (dead or
        wedged compactor), in which case the segment set is read-only and
        a full tail raises :class:`BackpressureError` instead.
        """
        batch = self._bucket(rows)
        if not batch:
            return 0
        with self._commit_guard:
            if self._closed or self._wal is None:
                raise StoreClosedError(f"{self.directory}: store is closed")
            degraded = self._compactor_state() in ("dead", "wedged")
            if degraded and (
                len(self._tail_contacts) + len(batch)
                > self.policy.backpressure_contacts
            ):
                raise BackpressureError(
                    f"{self.directory}: compactor is "
                    f"{self._compactor_state()} and the tail holds "
                    f"{len(self._tail_contacts)} contacts "
                    f"(cap {self.policy.backpressure_contacts}); "
                    "ingestion is backpressured until compaction resumes",
                    tail_size=len(self._tail_contacts),
                    cap=self.policy.backpressure_contacts,
                    retry_after=self.policy.compactor_timeout,
                )
            self._wal.append(batch)
            committed = self._wal.commit()
            self._tail_contacts.extend(batch)
            self._view._tail.apply_contacts(batch)
            if (
                not degraded
                and len(self._tail_contacts) >= self.policy.seal_contacts
            ):
                self._seal_locked()
        return committed

    def _bucket(self, rows: Iterable[ContactRow]) -> List[Contact]:
        from repro.graph.aggregate import _aggregate_duration

        manifest = self._manifest
        resolution = manifest.config.resolution
        interval = manifest.kind is GraphKind.INTERVAL
        batch: List[Contact] = []
        for row in rows:
            c = row if isinstance(row, Contact) else Contact(*row)
            if resolution > 1:
                duration = (
                    _aggregate_duration(c.time, c.duration, resolution)
                    if interval
                    else 0
                )
                c = Contact(c.u, c.v, c.time // resolution, duration)
            batch.append(c)
        return batch

    # -- seal (tail -> immutable segment) --------------------------------------

    def seal(self) -> Optional[SegmentInfo]:
        """Fold the committed tail into a fresh immutable segment.

        No-op (returns None) on an empty tail.  Crash-safe: the segment
        file lands complete and fsynced before the manifest swap names it,
        and the stale tail log left by a crash between the swap and the
        log reset is recognised by its old generation and discarded --
        exactly once, because its contacts are in the sealed segment.
        """
        with self._commit_guard:
            if self._closed or self._wal is None:
                raise StoreClosedError(f"{self.directory}: store is closed")
            return self._seal_locked()

    def _seal_locked(self) -> Optional[SegmentInfo]:
        contacts = list(self._tail_contacts)
        if not contacts:
            return None
        manifest = self._manifest
        seq = self._next_seq
        self._next_seq += 1
        name = _segment_name(seq)
        payload = _compress_stored(
            manifest.kind, contacts, manifest.config, name=name
        )
        info = _segment_info_for(name, seq, payload, contacts)
        # 1. write-new: the segment is complete and fsynced before anything
        #    references it; a crash here leaves an orphan the sweep removes.
        atomic_write_bytes(
            self.directory / name, payload, fs=self._fs, retry=self._retry
        )
        # 2. manifest swap: the store's contents change in one rename.
        new_manifest = dataclasses.replace(
            manifest,
            generation=manifest.generation + 1,
            wal_generation=manifest.wal_generation + 1,
            next_seq=self._next_seq,
            segments=manifest.segments + (info,),
        )
        atomic_write_bytes(
            self.directory / MANIFEST_NAME,
            new_manifest.to_bytes(),
            fs=self._fs,
            retry=self._retry,
        )
        # 3. log reset: a crash before this leaves the old-generation log,
        #    which recovery recognises as sealed-and-stale and discards.
        self._wal.close()
        self._manifest = new_manifest
        self._wal = self._create_tail_wal(
            self.directory, new_manifest, fs=self._fs, retry=self._retry
        )
        self._tail_contacts = []
        from repro.core.serialize import _map_readonly, load_compressed_bytes

        # Map the file just written rather than adopting the in-heap encode
        # buffer: the long-lived view then shares pages with every other
        # process, and the reload doubles as a read-back verification.
        seg_path = self.directory / name
        graph = load_compressed_bytes(
            _map_readonly(seg_path) if self._mmap_segments else payload,
            limits=self._limits,
            source=str(seg_path),
        )
        view = self._view
        self._view = SegmentedChronoGraph(
            new_manifest.kind,
            view._segments + ((info, graph),),
            _empty_tail(new_manifest.kind),
            breakers=self._breakers,
        )
        return info

    # -- compaction (merge adjacent segments) ----------------------------------

    def compaction_needed(self) -> bool:
        """Whether the segment count exceeds the policy bound."""
        return len(self._manifest.segments) > self.policy.max_segments

    def pick_merge(self) -> Optional[Tuple[SegmentInfo, SegmentInfo]]:
        """The adjacent pair to merge next: smallest combined byte size.

        Merging only ever adjacent (in seal order) pairs keeps segments
        time-partitioned: seal order is arrival order, so the merged
        segment's span covers a contiguous stretch of the stream.
        """
        segments = self._manifest.segments
        if len(segments) <= self.policy.max_segments:
            return None
        best = min(
            range(len(segments) - 1),
            key=lambda i: segments[i].size + segments[i + 1].size,
        )
        return segments[best], segments[best + 1]

    def compact_once(self) -> bool:
        """Merge one adjacent segment pair crash-safely; False when idle.

        Phases: (1) read the immutable inputs and write the merged
        replacement -- no guard held, ingest proceeds concurrently;
        (2) under the commit guard, re-check the inputs are still current
        and swap the manifest; (3) delayed delete of the replaced files.
        Killing this method at any point never changes query answers: the
        view only advances at the swap, and both old files outlive it.
        """
        pair = self.pick_merge()
        if pair is None:
            return False
        a, b = pair
        view = self._view
        graphs = {info.name: graph for info, graph in view._segments}
        if a.name not in graphs or b.name not in graphs:
            return False  # raced with another swap; retry next cycle
        manifest = self._manifest
        contacts = list(graphs[a.name].iter_contacts())
        contacts.extend(graphs[b.name].iter_contacts())
        with self._commit_guard:
            seq = self._next_seq
            self._next_seq += 1
        name = _segment_name(seq)
        payload = _compress_stored(manifest.kind, contacts, manifest.config, name=name)
        info = _segment_info_for(name, seq, payload, contacts)
        # 1. write-new (complete + fsynced before any reference exists).
        atomic_write_bytes(
            self.directory / name, payload, fs=self._fs, retry=self._retry
        )
        from repro.core.serialize import _map_readonly, load_compressed_bytes

        merged_path = self.directory / name
        merged_graph = load_compressed_bytes(
            _map_readonly(merged_path) if self._mmap_segments else payload,
            limits=self._limits,
            source=str(merged_path),
        )
        with self._commit_guard:
            if self._closed:
                return False
            current = self._manifest
            names = [s.name for s in current.segments]
            try:
                ia = names.index(a.name)
            except ValueError:
                ia = -1
            if ia < 0 or ia + 1 >= len(names) or names[ia + 1] != b.name:
                # Inputs vanished under us (concurrent swap): the freshly
                # written file is an orphan; drop it and report idle.
                try:
                    self._fs.remove(str(self.directory / name))
                except OSError:
                    pass
                return False
            new_segments = (
                current.segments[:ia] + (info,) + current.segments[ia + 2 :]
            )
            new_manifest = dataclasses.replace(
                current,
                generation=current.generation + 1,
                next_seq=max(current.next_seq, self._next_seq),
                segments=new_segments,
            )
            # 2. manifest swap: one rename retires a and b and enlists the
            #    merged segment.
            atomic_write_bytes(
                self.directory / MANIFEST_NAME,
                new_manifest.to_bytes(),
                fs=self._fs,
                retry=self._retry,
            )
            self._manifest = new_manifest
            old_view = self._view
            rebuilt: List[Tuple[SegmentInfo, object]] = []
            for seg_info, seg_graph in old_view._segments:
                if seg_info.name == a.name:
                    rebuilt.append((info, merged_graph))
                elif seg_info.name == b.name:
                    continue
                else:
                    rebuilt.append((seg_info, seg_graph))
            self._view = SegmentedChronoGraph(
                new_manifest.kind,
                tuple(rebuilt),
                old_view._tail,
                breakers=self._breakers,
            )
        # 3. delayed delete: failures leave orphans the next open sweeps.
        for old in (a, b):
            try:
                self._fs.remove(str(self.directory / old.name))
            except OSError:
                self._events.append(
                    f"delayed delete of {old.name} failed; orphan left for sweep"
                )
        return True

    def compact_all(self) -> int:
        """Seal the tail, then merge until within policy; returns merge count."""
        self.seal()
        merges = 0
        while self.compact_once():
            merges += 1
        return merges

    def verify_binding(self) -> None:
        """Cross-check the in-memory manifest against the durable one.

        Diagnostic used by tests and ``repro status``: raises
        :class:`GenerationMismatchError` when the directory's manifest is
        not the one this handle believes is current.
        """
        durable = Manifest.from_bytes(
            (self.directory / MANIFEST_NAME).read_bytes(),
            str(self.directory / MANIFEST_NAME),
        )
        if durable.generation != self._manifest.generation:
            raise GenerationMismatchError(
                f"{self.directory}: durable manifest is generation "
                f"{durable.generation}, handle believes {self._manifest.generation}"
            )
