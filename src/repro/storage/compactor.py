"""Background compaction for the segmented store, with a watchdog.

The :class:`Compactor` runs :meth:`SegmentStore.compact_once` on its own
daemon thread whenever the segment count exceeds policy, retrying
transient filesystem errors through a :class:`RetryPolicy` and beating a
monotonic heartbeat every cycle.  The heartbeat is the liveness contract:
:meth:`Compactor.state` classifies the thread as

* ``healthy`` -- alive and recently heartbeaten,
* ``wedged``  -- alive but the heartbeat is older than the store policy's
  ``compactor_timeout`` (stuck in a syscall, livelocked, or blocked),
* ``dead``    -- the thread exited without being stopped (an escaping
  exception, recorded in :attr:`Compactor.failure`).

The store's ingest path consults this state: ``dead`` or ``wedged``
switches it to read-only-tail degradation -- sealing and merging stop,
the hot tail keeps absorbing writes up to the backpressure cap, and past
that producers get :class:`repro.storage.segments.BackpressureError`
instead of a crash or an unbounded tail.  A cleanly :meth:`stop`-ped
compactor detaches itself, so shutdown never reads as degradation.

Nothing here weakens crash safety: the compactor only ever calls the
store's own crash-safe protocol, so killing the thread at *any* point --
including mid-merge -- never changes query answers (the fault-matrix
tests assert exactly this).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.storage.atomic import DEFAULT_RETRY, RetryPolicy

__all__ = ["Compactor"]


class Compactor:
    """Owns the background merge thread of one :class:`SegmentStore`.

    ``interval`` is the idle sleep between cycles; ``retry`` governs
    transient-error handling around each merge attempt; ``clock`` and
    ``on_cycle`` are injectable for tests (``on_cycle`` runs at the top of
    every cycle and may block -- simulating a wedge -- or raise --
    simulating a crash).
    """

    def __init__(
        self,
        store,
        *,
        interval: float = 0.05,
        retry: RetryPolicy = DEFAULT_RETRY,
        clock: Callable[[], float] = time.monotonic,
        on_cycle: Optional[Callable[[], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self._store = store
        self._interval = interval
        self._retry = retry
        self._clock = clock
        self._on_cycle = on_cycle
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._heartbeat = clock()
        self._stopped_cleanly = False
        #: The exception that killed the thread, if any (else None).
        self.failure: Optional[BaseException] = None
        #: Successful merges performed over the compactor's lifetime.
        self.merges = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Compactor":
        """Spawn the merge thread and register with the store's watchdog."""
        if self._thread is not None:
            raise RuntimeError("compactor already started")
        self._stop.clear()
        self._stopped_cleanly = False
        self.failure = None
        self._heartbeat = self._clock()
        self._store.attach_compactor(self)
        self._thread = threading.Thread(
            target=self._run, name="chrono-compactor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the thread to finish its cycle and detach from the store.

        A clean stop is not a failure: the compactor deregisters itself so
        the store returns to the no-compactor (inline sealing) regime
        rather than degrading.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._stopped_cleanly = self.failure is None
        self._store.attach_compactor(None)
        self._thread = None

    def __enter__(self) -> "Compactor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- watchdog ------------------------------------------------------------

    def state(self, timeout: float) -> str:
        """Classify liveness: ``healthy`` | ``wedged`` | ``dead``.

        ``timeout`` is the maximum tolerated heartbeat age in seconds
        (the store passes its policy's ``compactor_timeout``).
        """
        thread = self._thread
        if thread is None or not thread.is_alive():
            return "healthy" if self._stopped_cleanly and self.failure is None else "dead"
        if self._clock() - self._heartbeat > timeout:
            return "wedged"
        return "healthy"

    # -- the merge loop ------------------------------------------------------

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                self._heartbeat = self._clock()
                if self._on_cycle is not None:
                    self._on_cycle()
                worked = bool(self._retry.run(self._cycle))
                if worked:
                    self.merges += 1
                    continue  # drain the backlog before sleeping
                self._stop.wait(self._interval)
        except BaseException as exc:  # noqa: BLE001 -- liveness, not policy
            # Any escaping exception (including an injected CrashPoint)
            # kills only this thread; the store notices via the watchdog
            # and degrades instead of crashing the process.
            self.failure = exc

    def _cycle(self) -> int:
        return 1 if self._store.compact_once() else 0
