"""Stock vertex programs: PageRank, components, BFS levels.

These mirror the applications the paper motivates (Section I) expressed in
the 'think like a vertex' style of its Section VI future work.  Each runs
on the window view the engine is constructed with, i.e. on a historical
snapshot of the compressed temporal graph.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.vertexcentric.engine import ComputeContext, VertexProgram


class PageRankProgram(VertexProgram):
    """Classic Pregel PageRank with uniform dangling redistribution.

    Runs a fixed number of supersteps (the engine's ``max_supersteps``
    bounds it); converged values match the pull-based implementation in
    :mod:`repro.algorithms.pagerank` on dangling-free windows.
    """

    def __init__(self, damping: float = 0.85, supersteps: int = 30) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        self.damping = damping
        self.supersteps = supersteps

    def initial_value(self, vertex: int, ctx: ComputeContext) -> float:
        return 1.0 / max(1, ctx.num_vertices)

    def compute(self, vertex: int, value: float,
                messages: Optional[float], ctx: ComputeContext) -> float:
        n = ctx.num_vertices
        if ctx.superstep > 0:
            incoming = messages or 0.0
            value = (1.0 - self.damping) / n + self.damping * incoming
        if ctx.superstep < self.supersteps:
            degree = ctx.out_degree()
            if degree:
                ctx.send_to_neighbors(value / degree)
            else:
                # Dangling mass: spread uniformly (approximated by a
                # self-message of the retained share to keep totals stable).
                ctx.send(vertex, value)
        else:
            ctx.vote_to_halt()
        return value

    def combine(self, a: float, b: float) -> float:
        return a + b


class ConnectedComponents(VertexProgram):
    """Minimum-label propagation: weakly connected components.

    Run on an engine built with ``undirected=True``; at convergence each
    component carries the minimum vertex id of its members.
    """

    def initial_value(self, vertex: int, ctx: ComputeContext) -> int:
        return vertex

    def compute(self, vertex: int, value: int,
                messages: Optional[int], ctx: ComputeContext) -> int:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(value)
            ctx.vote_to_halt()
            return value
        if messages is not None and messages < value:
            value = messages
            ctx.send_to_neighbors(value)
        ctx.vote_to_halt()
        return value

    def combine(self, a: int, b: int) -> int:
        return min(a, b)


class BreadthFirstLevels(VertexProgram):
    """BFS hop levels from a source over the window's directed edges.

    Unreached vertices end with level -1 -- the snapshot analogue of the
    temporal reachability query in :mod:`repro.algorithms.reachability`.
    """

    def __init__(self, source: int) -> None:
        if source < 0:
            raise ValueError(f"negative source vertex {source}")
        self.source = source

    def initial_value(self, vertex: int, ctx: ComputeContext) -> int:
        return -1

    def compute(self, vertex: int, value: int,
                messages: Optional[int], ctx: ComputeContext) -> int:
        if ctx.superstep == 0:
            if vertex == self.source:
                ctx.send_to_neighbors(1)
                ctx.vote_to_halt()
                return 0
            ctx.vote_to_halt()
            return -1
        if messages is not None and value == -1:
            value = messages
            ctx.send_to_neighbors(value + 1)
        ctx.vote_to_halt()
        return value

    def combine(self, a: int, b: int) -> int:
        return min(a, b)
