"""A Pregel-style superstep engine over compressed temporal graphs.

The engine materialises nothing but the current vertex values and message
queues: each superstep pulls every active vertex's neighbors for the
configured time window straight from the compressed representation (any
object with ``num_nodes`` and ``neighbors(u, t_start, t_end)``).

Semantics follow the bulk-synchronous Pregel model:

* every vertex starts active with ``program.initial_value``;
* in each superstep, active vertices (and message recipients) run
  ``program.compute``, may ``send`` messages along out-edges and may
  ``vote_to_halt``;
* messages sent in superstep *s* are delivered in *s + 1*, combined with
  the program's ``combine``;
* the run ends when no messages are in flight and every vertex has halted,
  or after ``max_supersteps``.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, List, Optional


class ComputeContext:
    """Per-superstep facilities handed to ``VertexProgram.compute``."""

    def __init__(self, engine: "SuperstepEngine", vertex: int) -> None:
        self._engine = engine
        self._vertex = vertex
        self.halted = False

    @property
    def superstep(self) -> int:
        """0-based index of the running superstep."""
        return self._engine.superstep

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self._engine.graph.num_nodes

    def neighbors(self) -> List[int]:
        """The vertex's out-neighbors in the engine's time window (cached)."""
        return self._engine.adjacency(self._vertex)

    def out_degree(self) -> int:
        """Number of out-neighbors in the window."""
        return len(self.neighbors())

    def send(self, target: int, message: Any) -> None:
        """Queue a message for delivery in the next superstep."""
        self._engine.enqueue(target, message)

    def send_to_neighbors(self, message: Any) -> None:
        """Queue the same message along every out-edge."""
        for v in self.neighbors():
            self._engine.enqueue(v, message)

    def vote_to_halt(self) -> None:
        """Deactivate this vertex until a message wakes it up."""
        self.halted = True


class VertexProgram(abc.ABC):
    """User logic executed at every vertex."""

    @abc.abstractmethod
    def initial_value(self, vertex: int, ctx: ComputeContext) -> Any:
        """The vertex's value before superstep 0."""

    @abc.abstractmethod
    def compute(
        self, vertex: int, value: Any, messages: Optional[Any], ctx: ComputeContext
    ) -> Any:
        """One superstep at one vertex; returns the new value.

        ``messages`` is the combined incoming message (None when there are
        none, e.g. in superstep 0).
        """

    def combine(self, a: Any, b: Any) -> Any:
        """Fold two messages for the same recipient; default collects lists."""
        if isinstance(a, list):
            return a + ([b] if not isinstance(b, list) else b)
        return [a, b]


class SuperstepEngine:
    """Runs a :class:`VertexProgram` over one time window of a graph."""

    def __init__(
        self,
        graph,
        t_start: int,
        t_end: int,
        *,
        max_supersteps: int = 50,
        undirected: bool = False,
    ) -> None:
        if max_supersteps < 1:
            raise ValueError(f"max_supersteps must be >= 1, got {max_supersteps}")
        self.graph = graph
        self.t_start = t_start
        self.t_end = t_end
        self.max_supersteps = max_supersteps
        self.undirected = undirected
        self.superstep = -1
        self._adjacency: Dict[int, List[int]] = {}
        self._undirected_built = False
        self._inbox: Dict[int, Any] = {}
        self._combine: Optional[Callable[[Any, Any], Any]] = None

    def adjacency(self, u: int) -> List[int]:
        """Window-restricted neighbors, decoded once per run.

        With ``undirected=True`` the view is symmetrised (out plus in
        edges), which programs like connected components need; the reverse
        edges are derived in one pass over all vertices on first access.
        """
        if self.undirected and not self._undirected_built:
            symmetric: Dict[int, set] = {v: set() for v in range(self.graph.num_nodes)}
            bulk = getattr(self.graph, "iter_window_neighbors", None)
            if bulk is not None:
                pairs = bulk(self.t_start, self.t_end)
            else:
                pairs = (
                    (v, self.graph.neighbors(v, self.t_start, self.t_end))
                    for v in range(self.graph.num_nodes)
                )
            for v, neighbors in pairs:
                for w in neighbors:
                    symmetric[v].add(w)
                    symmetric[w].add(v)
            self._adjacency = {v: sorted(ws) for v, ws in symmetric.items()}
            self._undirected_built = True
        cached = self._adjacency.get(u)
        if cached is None:
            cached = self.graph.neighbors(u, self.t_start, self.t_end)
            self._adjacency[u] = cached
        return cached

    def enqueue(self, target: int, message: Any) -> None:
        """Deliver a message at the start of the next superstep."""
        if not 0 <= target < self.graph.num_nodes:
            raise ValueError(f"message target {target} out of range")
        if target in self._outbox:
            self._outbox[target] = self._combine(self._outbox[target], message)
        else:
            self._outbox[target] = message

    def run(self, program: VertexProgram) -> List[Any]:
        """Execute the program to convergence; returns final vertex values."""
        n = self.graph.num_nodes
        self._combine = program.combine
        self._outbox: Dict[int, Any] = {}
        self.superstep = -1

        values: List[Any] = []
        contexts = [ComputeContext(self, u) for u in range(n)]
        for u in range(n):
            values.append(program.initial_value(u, contexts[u]))

        active = set(range(n))
        inbox: Dict[int, Any] = {}
        for step in range(self.max_supersteps):
            self.superstep = step
            self._outbox = {}
            run_set = active | set(inbox)
            if not run_set:
                break
            for u in sorted(run_set):
                ctx = contexts[u]
                ctx.halted = False
                values[u] = program.compute(u, values[u], inbox.get(u), ctx)
                if ctx.halted:
                    active.discard(u)
                else:
                    active.add(u)
            inbox = self._outbox
            if not inbox and not active:
                break
        return values
