"""Vertex-centric computation over compressed temporal graphs.

The paper's stated future work (Section VI): "investigating the
applicability of our techniques for algorithms based on the 'think like a
vertex' programming paradigm".  This subpackage implements that extension:
a Pregel-style superstep engine whose graph accessor is any compressed
representation's window query -- vertices exchange messages while the
topology is decoded on demand from the compressed streams.

* :mod:`repro.vertexcentric.engine` -- the superstep engine, contexts and
  the :class:`VertexProgram` contract.
* :mod:`repro.vertexcentric.programs` -- PageRank, connected components and
  single-source shortest paths expressed as vertex programs.
"""

from repro.vertexcentric.engine import ComputeContext, SuperstepEngine, VertexProgram
from repro.vertexcentric.programs import (
    BreadthFirstLevels,
    ConnectedComponents,
    PageRankProgram,
)

__all__ = [
    "ComputeContext",
    "SuperstepEngine",
    "VertexProgram",
    "BreadthFirstLevels",
    "ConnectedComponents",
    "PageRankProgram",
]
