"""Structured exception taxonomy for corrupt or untrusted inputs.

Every failure mode of decoding a ``.chrono`` container, a compressed bit
stream or a contact-list file funnels into the :class:`FormatError`
hierarchy, so callers can write ``except FormatError`` and know they have
covered *all* data-driven failures -- truncation, checksum mismatches,
unsupported versions, resource-limit violations and plain stream
corruption -- without accidentally swallowing programming errors.

``FormatError`` subclasses :class:`ValueError` for backwards compatibility
with callers written against the VERSION 1 container, where decode errors
surfaced as assorted ``ValueError``/``EOFError``/``struct.error``.
"""

from __future__ import annotations

__all__ = [
    "FormatError",
    "TruncatedContainerError",
    "ChecksumMismatchError",
    "UnsupportedVersionError",
    "LimitExceededError",
    "CorruptStreamError",
    "EndOfStreamError",
    "GenerationMismatchError",
    "DomainError",
    "CodecDomainError",
    "GraphDomainError",
]


class FormatError(ValueError):
    """A file or byte stream is not a valid ChronoGraph artefact.

    Root of the taxonomy; raising the root class directly is reserved for
    "not our file at all" failures (e.g. a bad magic number).
    """


class TruncatedContainerError(FormatError):
    """The container ends before a declared section or field completes."""


class ChecksumMismatchError(FormatError):
    """A section's CRC32 footer does not match its payload."""


class UnsupportedVersionError(FormatError):
    """The container declares a version (or flags) this reader cannot parse."""


class LimitExceededError(FormatError):
    """A declared count or size is impossible or breaches a decode limit.

    Raised *before* any allocation proportional to the declared value, so a
    flipped header byte can never trigger a multi-gigabyte allocation.
    """


class CorruptStreamError(FormatError):
    """A compressed bit stream decoded to something structurally invalid."""


class EndOfStreamError(CorruptStreamError, EOFError):
    """A bit-stream read ran past the end of the stream.

    Subclasses both :class:`CorruptStreamError` (so container decoding
    funnels into :class:`FormatError`) and :class:`EOFError` (the exception
    :class:`repro.bits.bitio.BitReader` historically raised).
    """


class DomainError(ValueError):
    """A caller-supplied value lies outside an API's documented domain.

    The *usage-error* side of the taxonomy: unlike :class:`FormatError`,
    which covers data-driven failures of untrusted inputs, a
    :class:`DomainError` means the calling code itself passed an argument a
    codec, structure or configuration cannot represent (a negative width, a
    value a code is undefined for, a node label out of range).  Subclasses
    :class:`ValueError` so callers written against the historical bare
    ``ValueError`` contracts keep working, and so the decode paths'
    blanket ``except ValueError`` wrapping still funnels any such raise
    on a corrupt stream into :class:`CorruptStreamError`.
    """


class CodecDomainError(DomainError):
    """A value is outside the domain of a :mod:`repro.bits` codec.

    Raised by the instantaneous codes (unary/gamma/delta/zeta/...), the
    bit-stream primitives and the succinct structures when asked to encode
    a value their code is undefined for, or when an argument (width,
    modulus, shrinking parameter, seek position) is invalid.
    """


class GraphDomainError(DomainError):
    """A graph-level argument is invalid (labels, durations, config).

    Raised by :mod:`repro.core` on negative node labels, durations on
    non-interval graph kinds, out-of-range node lookups and configuration
    values outside their documented bounds.
    """


class GenerationMismatchError(FormatError):
    """A write-ahead log does not belong to the base snapshot it was
    opened against.

    The WAL header records the size and CRC32 of the exact ``.chrono``
    snapshot its records extend; replaying it onto any other snapshot
    would apply contacts to the wrong history, so the pairing is refused
    outright (unless a compaction marker proves the snapshot supersedes
    the log -- see :mod:`repro.storage.recovery`).
    """
