"""Structured exception taxonomy for corrupt or untrusted inputs.

Every failure mode of decoding a ``.chrono`` container, a compressed bit
stream or a contact-list file funnels into the :class:`FormatError`
hierarchy, so callers can write ``except FormatError`` and know they have
covered *all* data-driven failures -- truncation, checksum mismatches,
unsupported versions, resource-limit violations and plain stream
corruption -- without accidentally swallowing programming errors.

``FormatError`` subclasses :class:`ValueError` for backwards compatibility
with callers written against the VERSION 1 container, where decode errors
surfaced as assorted ``ValueError``/``EOFError``/``struct.error``.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "FormatError",
    "TruncatedContainerError",
    "ChecksumMismatchError",
    "UnsupportedVersionError",
    "LimitExceededError",
    "CorruptStreamError",
    "EndOfStreamError",
    "GenerationMismatchError",
    "DomainError",
    "CodecDomainError",
    "GraphDomainError",
    "QueryInterrupted",
    "QueryTimeout",
    "QueryCancelled",
    "QueryBudgetExceeded",
    "RejectedError",
]


class FormatError(ValueError):
    """A file or byte stream is not a valid ChronoGraph artefact.

    Root of the taxonomy; raising the root class directly is reserved for
    "not our file at all" failures (e.g. a bad magic number).
    """


class TruncatedContainerError(FormatError):
    """The container ends before a declared section or field completes."""


class ChecksumMismatchError(FormatError):
    """A section's CRC32 footer does not match its payload."""


class UnsupportedVersionError(FormatError):
    """The container declares a version (or flags) this reader cannot parse."""


class LimitExceededError(FormatError):
    """A declared count or size is impossible or breaches a decode limit.

    Raised *before* any allocation proportional to the declared value, so a
    flipped header byte can never trigger a multi-gigabyte allocation.
    """


class CorruptStreamError(FormatError):
    """A compressed bit stream decoded to something structurally invalid."""


class EndOfStreamError(CorruptStreamError, EOFError):
    """A bit-stream read ran past the end of the stream.

    Subclasses both :class:`CorruptStreamError` (so container decoding
    funnels into :class:`FormatError`) and :class:`EOFError` (the exception
    :class:`repro.bits.bitio.BitReader` historically raised).
    """


class DomainError(ValueError):
    """A caller-supplied value lies outside an API's documented domain.

    The *usage-error* side of the taxonomy: unlike :class:`FormatError`,
    which covers data-driven failures of untrusted inputs, a
    :class:`DomainError` means the calling code itself passed an argument a
    codec, structure or configuration cannot represent (a negative width, a
    value a code is undefined for, a node label out of range).  Subclasses
    :class:`ValueError` so callers written against the historical bare
    ``ValueError`` contracts keep working, and so the decode paths'
    blanket ``except ValueError`` wrapping still funnels any such raise
    on a corrupt stream into :class:`CorruptStreamError`.
    """


class CodecDomainError(DomainError):
    """A value is outside the domain of a :mod:`repro.bits` codec.

    Raised by the instantaneous codes (unary/gamma/delta/zeta/...), the
    bit-stream primitives and the succinct structures when asked to encode
    a value their code is undefined for, or when an argument (width,
    modulus, shrinking parameter, seek position) is invalid.
    """


class GraphDomainError(DomainError):
    """A graph-level argument is invalid (labels, durations, config).

    Raised by :mod:`repro.core` on negative node labels, durations on
    non-interval graph kinds, out-of-range node lookups and configuration
    values outside their documented bounds.
    """


class QueryInterrupted(DomainError):
    """A query was cut short by its own runtime envelope, not by bad data.

    Root of the query-runtime branch of the taxonomy: the *caller's*
    deadline, cancellation flag or decode-work budget stopped the query
    before it completed.  The underlying graph and its caches are left
    fully consistent -- retrying the same query with a larger envelope
    returns the complete answer.

    Subclasses :class:`DomainError` (and therefore :class:`ValueError`),
    but decode paths that blanket-catch ``ValueError`` to funnel corrupt
    streams into :class:`FormatError` re-raise this branch explicitly: an
    interrupted query is never evidence of corruption.
    """


class QueryTimeout(QueryInterrupted):
    """A query's wall-clock deadline expired before it finished.

    ``budget`` is the deadline's total allowance in seconds and ``elapsed``
    the time actually consumed when the expiry was observed (both ``None``
    when unknown).
    """

    def __init__(
        self,
        message: str,
        *,
        budget: Optional[float] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        """Store the structured timing fields alongside the message."""
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed


class QueryCancelled(QueryInterrupted):
    """A query observed its context's cooperative cancellation flag."""


class QueryBudgetExceeded(QueryInterrupted):
    """A query exhausted its decode-work budget before completing.

    ``budget`` is the allowance in decode-work units (roughly, codes
    decoded) and ``spent`` the units consumed when the overrun was
    observed.
    """

    def __init__(
        self,
        message: str,
        *,
        budget: Optional[int] = None,
        spent: Optional[int] = None,
    ) -> None:
        """Store the structured budget fields alongside the message."""
        super().__init__(message)
        self.budget = budget
        self.spent = spent


class RejectedError(DomainError):
    """The admission controller shed this query instead of running it.

    Raised *before* any work happens, so rejection is always safe to
    retry.  ``retry_after`` is the governor's structured backoff hint in
    seconds; ``reason`` is a short machine-readable tag (for example
    ``"concurrency"`` or ``"tenant-tokens"``); ``in_flight``/``limit``
    describe the load that triggered the shed when applicable.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after: Optional[float] = None,
        reason: Optional[str] = None,
        in_flight: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        """Store the structured load-shedding fields alongside the message."""
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason
        self.in_flight = in_flight
        self.limit = limit


class GenerationMismatchError(FormatError):
    """A write-ahead log does not belong to the base snapshot it was
    opened against.

    The WAL header records the size and CRC32 of the exact ``.chrono``
    snapshot its records extend; replaying it onto any other snapshot
    would apply contacts to the wrong history, so the pairing is refused
    outright (unless a compaction marker proves the snapshot supersedes
    the log -- see :mod:`repro.storage.recovery`).
    """
