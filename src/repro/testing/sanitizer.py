"""reprosan: a runtime lock-order and blocking-under-lock sanitizer.

The static engine (:mod:`repro.analysis`, rule CG002) proves lock
discipline over the *code*; this module validates it over *executions*.
While installed, every ``threading.Lock()`` / ``threading.RLock()``
created from repro code is replaced by a recording wrapper that tracks,
per thread, the real acquisition order; every bulk decode entry point and
blocking filesystem call reports when it runs with a shard or mutate lock
held.  A test run under the sanitizer therefore yields:

* **dynamic lock-order inversions** -- thread A observed ``a -> b`` while
  some thread observed ``b -> a``: a latent deadlock no single run need
  ever hit to be real;
* **blocking-under-lock events** -- decode or filesystem work that
  actually ran inside a governed critical section (the runtime analogue
  of a CG002 finding; the reentrant distinct-list lock is exempt by the
  same design rule);
* an **observed order graph** that :func:`crosscheck` compares against
  the static model from
  :func:`repro.analysis.rules_concurrency.collect_lock_model` -- an
  observed edge whose *reverse* is the only statically known order means
  the model and reality disagree and one of them is wrong.

Locks are named by their creation site: the assignment target on the
source line that called the factory (``self._mutate_lock =
threading.Lock()`` names the lock ``_mutate_lock``), which lines the
dynamic names up with the static model's AST-derived names.  Locks
created outside the repro tree (pytest, logging, stdlib pools) are left
unwrapped so the sanitizer only ever observes the system under test.

Typical use (see also :func:`repro.testing.races.run_sanitized_race_smoke`
and the ``sanitizer`` CI job)::

    with sanitized() as san:
        run_race_smoke()
    report = san.report()
    assert report.ok, report.summary()

The wrapper factories only affect locks created *inside* the ``with``
block; module-level locks that already exist keep their identity, so the
sanitizer can be installed mid-process without invalidating running code.
"""

from __future__ import annotations

import builtins
import dataclasses
import linecache
import os
import re
import sys
import threading
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = [
    "BlockingEvent",
    "InversionEvent",
    "SanitizerReport",
    "LockSanitizer",
    "sanitized",
    "crosscheck",
    "run_seeded_inversion",
    "main",
]

#: Assignment target on a lock factory's source line, used to name locks.
_ASSIGN_RE = re.compile(
    r"(?:self\.)?([A-Za-z_]\w*)\s*=\s*[\w.]*R?Lock\s*\("
)

#: Keyword-argument spelling (``lock=threading.Lock()``).
_KWARG_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*[\w.]*R?Lock\s*\(")

#: The path fragment that marks first-party code for wrap decisions.
_REPRO_FRAGMENT = os.sep + "repro" + os.sep

# Real factories, captured at import so sanitizer internals and unwrapped
# locks never recurse through the patched ones.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


def _governed(name: str) -> bool:
    """Whether a lock name is a governed (shard/mutate) lock.

    Mirrors CG002's recogniser: ``lock`` or ``*_lock``, with the
    reentrant distinct-list lock exempt by design.
    """
    if "distinct" in name:
        return False
    return name == "lock" or name.endswith("_lock")


@dataclasses.dataclass(frozen=True)
class BlockingEvent:
    """One blocking call that ran while a governed lock was held."""

    kind: str  # "decode" or "fs"
    func: str
    lock: str
    location: str

    def render(self) -> str:
        """Human-readable one-liner for reports and CI logs."""
        return (
            f"{self.kind} call `{self.func}` ran while holding "
            f"`{self.lock}` at {self.location}"
        )


@dataclasses.dataclass(frozen=True)
class InversionEvent:
    """Two threads acquired the same pair of locks in opposite orders."""

    first: Tuple[str, str]
    first_location: str
    second: Tuple[str, str]
    second_location: str

    def render(self) -> str:
        """Human-readable one-liner for reports and CI logs."""
        return (
            f"lock-order inversion: {self.first[0]} -> {self.first[1]} "
            f"(at {self.first_location}) vs {self.second[0]} -> "
            f"{self.second[1]} (at {self.second_location})"
        )


@dataclasses.dataclass
class SanitizerReport:
    """Everything one sanitized run observed."""

    locks_created: int
    acquisitions: int
    order_edges: Set[Tuple[str, str]]
    inversions: List[InversionEvent]
    blocking: List[BlockingEvent]

    @property
    def ok(self) -> bool:
        """True when the run saw no inversion and no blocking-under-lock."""
        return not self.inversions and not self.blocking

    def summary(self) -> str:
        """One-line outcome for logs and assertion messages."""
        status = (
            "PASS"
            if self.ok
            else (
                f"FAIL ({len(self.inversions)} inversions, "
                f"{len(self.blocking)} blocking)"
            )
        )
        return (
            f"reprosan: {status}; {self.locks_created} locks, "
            f"{self.acquisitions} acquisitions, "
            f"{len(self.order_edges)} order edges"
        )


#: Sanitizer-internal frames to skip when attributing an event to code.
_INTERNAL_FRAMES = {
    "_caller_location",
    "_note_acquired",
    "_note_blocking",
    "acquire",
    "release",
    "__enter__",
    "__exit__",
    "wrapped",
}


def _caller_location() -> str:
    """``file:line`` of the nearest frame outside the sanitizer machinery."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None:
        filename = frame.f_code.co_filename
        internal = filename == here and frame.f_code.co_name in _INTERNAL_FRAMES
        if not internal and "threading" not in os.path.basename(filename):
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _SanitizedLock:
    """A recording proxy around one real lock (or RLock).

    Supports the full lock protocol (``acquire``/``release``/context
    manager/``locked``) and forwards everything else to the real lock.
    """

    def __init__(
        self, sanitizer: "LockSanitizer", real: Any, name: str
    ) -> None:
        self._san = sanitizer
        self._real = real
        self._name = name

    @property
    def name(self) -> str:
        """The creation-site name the sanitizer derived for this lock."""
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the real lock, then record the acquisition order."""
        got = self._real.acquire(blocking, timeout)
        if got:
            self._san._note_acquired(self)
        return got

    def release(self) -> None:
        """Record the release, then release the real lock."""
        self._san._note_released(self)
        self._real.release()

    def locked(self) -> bool:
        """Whether the real lock is currently held (Lock protocol)."""
        return self._real.locked()

    def __enter__(self) -> bool:
        """Context-manager acquire."""
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        """Context-manager release."""
        self.release()

    def __repr__(self) -> str:
        """Name plus the real lock's state."""
        return f"_SanitizedLock({self._name!r}, {self._real!r})"


class LockSanitizer:
    """The installable sanitizer: lock factories plus blocking patches.

    Use :func:`sanitized` for the context-managed form.  ``install`` and
    ``uninstall`` are idempotent per instance and must be called from the
    same thread.
    """

    #: (module, attribute) pairs patched to report decode-under-lock.
    _DECODE_PATCHES = (
        ("repro.bits.codes", "_decode_run"),
        ("repro.bits.codes", "_decode_run_pairs"),
        ("repro.bits.vectorized", "decode_run"),
        ("repro.bits.vectorized", "decode_run_pairs"),
    )

    #: os-level filesystem calls patched to report fs-under-lock.
    _FS_PATCHES = ("fsync", "replace", "rename")

    def __init__(self, all_locks: bool = False) -> None:
        self._all_locks = all_locks
        self._meta = _REAL_LOCK()  # guards the shared tables below
        self._held = threading.local()
        self._edges: Dict[Tuple[str, str], str] = {}
        self._inversions: List[InversionEvent] = []
        self._blocking: List[BlockingEvent] = []
        self._locks_created = 0
        self._acquisitions = 0
        self._installed = False
        self._saved: List[Tuple[Any, str, Any]] = []

    # -- lock factory ---------------------------------------------------

    def _lock_name_from_site(self) -> Optional[str]:
        """Name for a lock created now, from its creation source line.

        Walks out of the sanitizer/threading frames to the creating
        statement and pulls the assignment target off that line.  Returns
        None when the creator is not first-party repro code -- such locks
        stay unwrapped.
        """
        frame: Any = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            in_factory = (
                filename == __file__
                and frame.f_code.co_name
                in ("_factory", "_lock_name_from_site", "<lambda>")
            )
            if not in_factory and "threading" not in os.path.basename(filename):
                break
            frame = frame.f_back
        if frame is None:
            return None
        filename = frame.f_code.co_filename
        if _REPRO_FRAGMENT not in filename and not self._all_locks:
            return None
        line = linecache.getline(filename, frame.f_lineno)
        m = _ASSIGN_RE.search(line) or _KWARG_RE.search(line)
        if m:
            return m.group(1)
        return f"lock@{os.path.basename(filename)}:{frame.f_lineno}"

    def _factory(self, real_factory: Callable[[], Any]) -> Any:
        name = self._lock_name_from_site()
        real = real_factory()
        if name is None or not self._installed:
            return real
        with self._meta:
            self._locks_created += 1
        return _SanitizedLock(self, real, name)

    # -- per-thread bookkeeping ----------------------------------------

    def _stack(self) -> List[_SanitizedLock]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _note_acquired(self, lock: _SanitizedLock) -> None:
        stack = self._stack()
        location = _caller_location()
        with self._meta:
            self._acquisitions += 1
            held_names = []
            for prior in stack:
                if prior._name not in held_names:
                    held_names.append(prior._name)
            for prior in held_names:
                if prior == lock._name:
                    continue  # reentrant / same-named shard locks
                edge = (prior, lock._name)
                if edge not in self._edges:
                    self._edges[edge] = location
                    reverse = (lock._name, prior)
                    if reverse in self._edges:
                        self._inversions.append(
                            InversionEvent(
                                first=reverse,
                                first_location=self._edges[reverse],
                                second=edge,
                                second_location=location,
                            )
                        )
        stack.append(lock)

    def _note_released(self, lock: _SanitizedLock) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is lock:
                del stack[i]
                return
        # Released by a thread that never acquired it (legal for Lock):
        # nothing to unwind locally.

    def _governed_lock_held(self) -> Optional[str]:
        for lock in reversed(self._stack()):
            if _governed(lock._name):
                return lock._name
        return None

    def _note_blocking(self, kind: str, func: str) -> None:
        lock = self._governed_lock_held()
        if lock is None:
            return
        event = BlockingEvent(
            kind=kind, func=func, lock=lock, location=_caller_location()
        )
        with self._meta:
            self._blocking.append(event)

    # -- install / uninstall -------------------------------------------

    def _patch(self, owner: Any, attr: str, wrapper: Any) -> None:
        self._saved.append((owner, attr, getattr(owner, attr)))
        setattr(owner, attr, wrapper)

    def _blocking_wrapper(
        self, kind: str, func: Callable[..., Any]
    ) -> Callable[..., Any]:
        name = getattr(func, "__name__", str(func))

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            self._note_blocking(kind, name)
            return func(*args, **kwargs)

        wrapped.__name__ = name
        return wrapped

    def install(self) -> None:
        """Patch the lock factories and blocking entry points."""
        if self._installed:
            return
        self._installed = True
        self._patch(
            threading, "Lock", lambda: self._factory(_REAL_LOCK)
        )
        self._patch(
            threading, "RLock", lambda: self._factory(_REAL_RLOCK)
        )
        self._patch(
            builtins, "open", self._blocking_wrapper("fs", builtins.open)
        )
        for attr in self._FS_PATCHES:
            self._patch(os, attr, self._blocking_wrapper("fs", getattr(os, attr)))
        import importlib

        for module_name, attr in self._DECODE_PATCHES:
            module = importlib.import_module(module_name)
            self._patch(
                module, attr, self._blocking_wrapper("decode", getattr(module, attr))
            )

    def uninstall(self) -> None:
        """Restore every patched attribute, newest first."""
        if not self._installed:
            return
        self._installed = False
        while self._saved:
            owner, attr, value = self._saved.pop()
            setattr(owner, attr, value)

    # -- results --------------------------------------------------------

    def report(self) -> SanitizerReport:
        """Snapshot of everything observed so far."""
        with self._meta:
            return SanitizerReport(
                locks_created=self._locks_created,
                acquisitions=self._acquisitions,
                order_edges=set(self._edges),
                inversions=list(self._inversions),
                blocking=list(self._blocking),
            )


@contextmanager
def sanitized(all_locks: bool = False) -> Iterator[LockSanitizer]:
    """Install a fresh :class:`LockSanitizer` for the block, then restore.

    ``all_locks=True`` wraps locks created from *any* file, not just the
    repro tree -- the hook test fixtures use to seed violations from a
    test module.
    """
    sanitizer = LockSanitizer(all_locks=all_locks)
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()


def crosscheck(
    observed: Set[Tuple[str, str]], static_edges: Set[Tuple[str, str]]
) -> List[str]:
    """Contradictions between an observed order graph and the static model.

    An observed edge ``a -> b`` contradicts the model when the model knows
    the pair *only* in the opposite order: the code as analysed promises
    ``b`` before ``a``, but a real thread did the reverse.  Observed edges
    the model has never seen are fine (runtime composition can order locks
    the AST never does in one function); same-order agreement is fine.
    """
    problems: List[str] = []
    for a, b in sorted(observed):
        if (b, a) in static_edges and (a, b) not in static_edges:
            problems.append(
                f"observed acquisition order {a} -> {b} contradicts the "
                f"static model, which only knows {b} -> {a}"
            )
    return problems


def run_seeded_inversion() -> SanitizerReport:
    """Provoke a deliberate lock-order inversion under the sanitizer.

    The CI proof that reprosan actually fires: two threads take the same
    two locks in opposite orders (with a barrier ensuring both orders
    really execute).  Returns the report, which must contain exactly the
    seeded inversion.
    """
    # The names deliberately sit outside CG002's lock-naming convention:
    # this inversion must be invisible to the static model, so detecting
    # it proves the *dynamic* half of the sanitizer works on its own.
    with sanitized() as sanitizer:
        seeded_alpha = threading.Lock()
        seeded_beta = threading.Lock()
        barrier = threading.Barrier(2)

        def ab() -> None:
            with seeded_alpha:
                barrier.wait()
                with seeded_beta:
                    pass

        def ba() -> None:
            with seeded_beta:
                barrier.wait()
                with seeded_alpha:
                    pass

        # a->b runs to completion first, then b->a: both edges are
        # observed without ever deadlocking on the real locks.
        t = threading.Thread(target=ab)
        u = threading.Thread(target=ba)
        t.start()
        barrier.wait()  # let ab() proceed while main mirrors ba's slot
        t.join()
        u.start()
        barrier.wait()
        u.join()
    return sanitizer.report()


def main(argv: Optional[List[str]] = None) -> int:
    """CI entry point: prove the sanitizer fires, then gate the real run.

    1. The seeded inversion must be detected (else the sanitizer is
       broken and exit code is 2).
    2. The race smoke suite must pass under the sanitizer with zero
       inversions and zero blocking-under-lock events, and the observed
       order graph must not contradict CG002's static model (exit 1).
    """
    from repro.testing.races import run_sanitized_race_smoke

    seeded = run_seeded_inversion()
    if not seeded.inversions:
        print("reprosan: seeded inversion was NOT detected", flush=True)
        return 2
    print(
        "reprosan: seeded inversion detected: "
        + seeded.inversions[0].render()
    )

    race, observed = run_sanitized_race_smoke()
    print(race.summary())
    print(observed.summary())
    for event in observed.inversions:
        print("  " + event.render())
    for event in observed.blocking:
        print("  " + event.render())
    problems: List[str] = []
    if not race.ok:
        problems.extend(race.violations)
    if not observed.ok:
        problems.append("sanitizer observed inversions/blocking (above)")
    try:
        from repro.analysis.rules_concurrency import collect_lock_model

        model = collect_lock_model(["src"])
        disagreements = crosscheck(observed.order_edges, model.edges)
    except Exception as exc:  # pragma: no cover - static model optional
        print(f"reprosan: static cross-check skipped: {exc}")
        disagreements = []
    for line in disagreements:
        print("  " + line)
        problems.append(line)
    if problems:
        print(f"reprosan: FAIL ({len(problems)} problem(s))")
        return 1
    print("reprosan: static/dynamic cross-check clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    raise SystemExit(main())
