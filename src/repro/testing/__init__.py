"""Fault-injection tooling for hardening the ``.chrono`` container.

This package is part of the shipped library (not the test suite) so that
downstream users can exercise their own containers against the same
robustness contract the repository enforces: every mutation of a valid
container either round-trips identically or raises
:class:`repro.errors.FormatError` -- never a hang, crash or silently wrong
graph.

The same contract extends to the crash-safe persistence layer: WAL
mutations drive :func:`run_wal_fault_injection`, and
:class:`FaultyFilesystem` / :func:`crash_points` exhaust every possible
crash point of any write path built on :mod:`repro.storage.atomic`.
The segmented store adds its own surfaces:
:func:`manifest_field_mutations` forges CRC-valid manifests that lie,
:func:`run_segment_store_fault_injection` classifies every mutated open
against the quarantine-or-detect contract, and
:func:`run_segment_crash_matrix` exhausts every crash point of the full
ingest -> seal -> compact -> swap -> delete lifecycle.

The concurrency contract has its own harness: :func:`run_race_smoke`
(:mod:`repro.testing.races`) races seeded reader threads against an
``apply_contacts`` writer and verifies torn-record freedom, counter
monotonicity and overlay-read linearizability.
"""

from repro.testing.faults import (
    CrashPoint,
    FaultInjectionReport,
    FaultResult,
    FaultyFilesystem,
    Mutation,
    bit_flip_mutations,
    crash_points,
    default_manifest_mutations,
    default_mutations,
    default_wal_mutations,
    extend_mutations,
    manifest_field_mutations,
    random_region_mutations,
    run_fault_injection,
    run_segment_crash_matrix,
    run_segment_store_fault_injection,
    run_wal_fault_injection,
    section_shuffle_mutations,
    truncate_mutations,
    wal_crc_flip_mutations,
    wal_generation_mutations,
    wal_truncate_mutations,
)
from repro.testing.races import RaceReport, run_race_smoke

__all__ = [
    "Mutation",
    "FaultResult",
    "FaultInjectionReport",
    "bit_flip_mutations",
    "truncate_mutations",
    "extend_mutations",
    "section_shuffle_mutations",
    "random_region_mutations",
    "default_mutations",
    "run_fault_injection",
    "CrashPoint",
    "FaultyFilesystem",
    "crash_points",
    "wal_truncate_mutations",
    "wal_crc_flip_mutations",
    "wal_generation_mutations",
    "default_wal_mutations",
    "run_wal_fault_injection",
    "manifest_field_mutations",
    "default_manifest_mutations",
    "run_segment_store_fault_injection",
    "run_segment_crash_matrix",
    "RaceReport",
    "run_race_smoke",
]
