"""Fault-injection tooling for hardening the ``.chrono`` container.

This package is part of the shipped library (not the test suite) so that
downstream users can exercise their own containers against the same
robustness contract the repository enforces: every mutation of a valid
container either round-trips identically or raises
:class:`repro.errors.FormatError` -- never a hang, crash or silently wrong
graph.
"""

from repro.testing.faults import (
    FaultInjectionReport,
    FaultResult,
    Mutation,
    bit_flip_mutations,
    default_mutations,
    extend_mutations,
    random_region_mutations,
    run_fault_injection,
    section_shuffle_mutations,
    truncate_mutations,
)

__all__ = [
    "Mutation",
    "FaultResult",
    "FaultInjectionReport",
    "bit_flip_mutations",
    "truncate_mutations",
    "extend_mutations",
    "section_shuffle_mutations",
    "random_region_mutations",
    "default_mutations",
    "run_fault_injection",
]
