"""Systematic fault injection over ``.chrono`` containers.

The mutators each take the bytes of a *valid* container and yield
:class:`Mutation` variants of it: single-bit flips on a stride, prefix
truncations, junk extensions, permutations of the VERSION 2 sections and
seeded random-region overwrites.  :func:`run_fault_injection` drives any
iterable of mutations through a full load-and-decode cycle and classifies
every outcome against the robustness contract:

* ``identical`` -- the mutation decoded to exactly the baseline contacts
  (e.g. the flip landed in a byte the decoder never dereferences);
* ``detected`` -- decoding raised from the
  :class:`repro.errors.FormatError` hierarchy;
* ``mismatch`` -- decoded without error but to *different* contacts
  (a silent corruption: always a failure);
* ``escaped`` -- raised anything outside ``FormatError`` (a failure);
* ``overbudget`` -- took longer than the per-mutation time budget
  (a proxy for hangs; always a failure).

All mutators are deterministic (random ones take a seed), so a passing
campaign stays passing.

Two further surfaces cover the crash-safe persistence layer (PR 3):

* **WAL mutations** -- :func:`wal_truncate_mutations` (record-boundary and
  mid-record cuts), :func:`wal_crc_flip_mutations` (checksum and payload
  flips) and :func:`wal_generation_mutations` (headers whose own CRC is
  *valid* but whose snapshot binding is wrong), driven by
  :func:`run_wal_fault_injection` against the replay contract: recovery
  must yield exactly a prefix of the committed batches, and any dropped
  suffix must be reported, never silent.
* **Crash points** -- :class:`FaultyFilesystem` implements the
  :class:`repro.storage.atomic.Filesystem` surface but dies
  (:class:`CrashPoint`) at the N-th mutating operation;
  :func:`crash_points` iterates N upward until the action survives,
  giving an exhaustive every-possible-crash matrix for any write path.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import os
import pathlib
import random
import shutil
import struct
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.serialize import (
    DecodeLimits,
    MAGIC,
    load_compressed_bytes,
    salvage_bytes,
)
from repro.errors import FormatError
from repro.storage.atomic import Filesystem

__all__ = [
    "Mutation",
    "FaultResult",
    "FaultInjectionReport",
    "bit_flip_mutations",
    "truncate_mutations",
    "extend_mutations",
    "section_shuffle_mutations",
    "random_region_mutations",
    "default_mutations",
    "run_fault_injection",
    "run_mmap_fault_injection",
    "CrashPoint",
    "FaultyFilesystem",
    "crash_points",
    "wal_truncate_mutations",
    "wal_crc_flip_mutations",
    "wal_generation_mutations",
    "default_wal_mutations",
    "run_wal_fault_injection",
    "manifest_field_mutations",
    "default_manifest_mutations",
    "run_segment_store_fault_injection",
    "run_segment_crash_matrix",
    "StepClock",
    "SlowFilesystem",
    "StallingGraph",
    "ChaosReport",
    "run_chaos_harness",
]


@dataclasses.dataclass(frozen=True)
class Mutation:
    """One corrupted variant of a container, with a descriptive name."""

    name: str
    data: bytes


# --------------------------------------------------------------------------
# Mutators
# --------------------------------------------------------------------------

def bit_flip_mutations(
    data: bytes, *, stride_bits: int = 64, start_bit: int = 0
) -> Iterator[Mutation]:
    """Flip every ``stride_bits``-th bit of the container, one at a time.

    ``stride_bits=1`` exhausts every bit; the default keeps campaigns on
    larger containers tractable while still touching every region.
    """
    if stride_bits < 1:
        raise ValueError(f"stride_bits must be >= 1, got {stride_bits}")
    for bit in range(start_bit, 8 * len(data), stride_bits):
        mutated = bytearray(data)
        mutated[bit >> 3] ^= 0x80 >> (bit & 7)
        yield Mutation(f"bitflip@{bit}", bytes(mutated))


def truncate_mutations(data: bytes, *, steps: int = 24) -> Iterator[Mutation]:
    """Yield ``steps`` evenly spaced strict prefixes of the container."""
    n = len(data)
    seen = set()
    for i in range(steps):
        keep = (n * i) // steps
        if keep >= n or keep in seen:
            continue
        seen.add(keep)
        yield Mutation(f"truncate@{keep}", data[:keep])


def extend_mutations(
    data: bytes, *, tails: Sequence[int] = (1, 8, 64, 4096)
) -> Iterator[Mutation]:
    """Append junk tails (zero and 0xFF runs) after the final section."""
    for tail in tails:
        yield Mutation(f"extend+{tail}x00", data + b"\x00" * tail)
        yield Mutation(f"extend+{tail}xff", data + b"\xff" * tail)


def _v2_section_spans(data: bytes) -> Optional[List[tuple]]:
    """(start, end) byte spans of the four framed sections, or None."""
    if len(data) < 10 or data[:4] != MAGIC or data[4] != 2:
        return None
    (header_len,) = struct.unpack_from("<I", data, 6)
    pos = 10 + header_len + 4
    spans = []
    for _ in range(4):
        if pos + 9 > len(data):
            return None
        (payload_len,) = struct.unpack_from("<Q", data, pos + 1)
        end = pos + 9 + payload_len + 4
        if end > len(data):
            return None
        spans.append((pos, end))
        pos = end
    if pos != len(data):
        return None
    return spans


def section_shuffle_mutations(data: bytes) -> Iterator[Mutation]:
    """Permute the order of the four VERSION 2 sections.

    Yields nothing for containers that are not well-formed VERSION 2 (the
    section table cannot be located without valid framing).
    """
    spans = _v2_section_spans(data)
    if spans is None:
        return
    prefix = data[: spans[0][0]]
    sections = [data[a:b] for a, b in spans]
    for order in ((1, 0, 2, 3), (0, 2, 1, 3), (0, 1, 3, 2), (3, 2, 1, 0)):
        shuffled = prefix + b"".join(sections[i] for i in order)
        yield Mutation(f"shuffle{order}", shuffled)


def random_region_mutations(
    data: bytes, *, seed: int = 0, count: int = 64, max_len: int = 16
) -> Iterator[Mutation]:
    """Overwrite ``count`` seeded-random regions with random bytes."""
    rng = random.Random(seed)
    if not data:
        return
    for i in range(count):
        start = rng.randrange(len(data))
        length = min(1 + rng.randrange(max_len), len(data) - start)
        junk = bytes(rng.randrange(256) for _ in range(length))
        mutated = bytearray(data)
        mutated[start : start + length] = junk
        yield Mutation(f"region@{start}+{length}#{i}", bytes(mutated))


def default_mutations(
    data: bytes, *, stride_bits: int = 8, seed: int = 0
) -> Iterator[Mutation]:
    """The standard campaign: all five mutator families, chained."""
    yield from bit_flip_mutations(data, stride_bits=stride_bits)
    yield from truncate_mutations(data)
    yield from extend_mutations(data)
    yield from section_shuffle_mutations(data)
    yield from random_region_mutations(data, seed=seed)


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------

@dataclasses.dataclass
class FaultResult:
    """Classification of a single mutation's decode attempt."""

    mutation: str
    outcome: str
    detail: str = ""
    elapsed: float = 0.0

    @property
    def failed(self) -> bool:
        """Whether this outcome violates the robustness contract."""
        return self.outcome in ("mismatch", "escaped", "overbudget")


@dataclasses.dataclass
class FaultInjectionReport:
    """Aggregate outcome of a fault-injection campaign."""

    total: int = 0
    identical: int = 0
    detected: int = 0
    failures: List[FaultResult] = dataclasses.field(default_factory=list)
    slowest: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every mutation round-tripped or was cleanly detected."""
        return not self.failures

    def summary(self) -> str:
        """One-paragraph human-readable account of the campaign."""
        lines = [
            f"{self.total} mutations: {self.identical} identical, "
            f"{self.detected} detected, {len(self.failures)} failures "
            f"(slowest {self.slowest * 1000:.1f} ms)"
        ]
        for failure in self.failures[:20]:
            lines.append(
                f"  - {failure.mutation}: {failure.outcome} {failure.detail}"
            )
        return "\n".join(lines)


def _decode_fully(blob: bytes, limits: Optional[DecodeLimits]) -> list:
    graph = load_compressed_bytes(blob, limits=limits)
    return list(graph.iter_contacts())


def run_fault_injection(
    container: bytes,
    mutations: Iterable[Mutation],
    *,
    time_budget: float = 5.0,
    limits: Optional[DecodeLimits] = None,
    check_salvage: bool = False,
) -> FaultInjectionReport:
    """Drive mutations through load-and-full-decode and classify outcomes.

    ``container`` must be a valid container; its decoded contacts are the
    baseline every mutation is compared against.  ``time_budget`` is the
    per-mutation ceiling in seconds (exceeding it is recorded as an
    ``overbudget`` failure -- the hang proxy).  With ``check_salvage`` the
    harness additionally asserts that salvage-mode loading never raises on
    any mutation.
    """
    baseline = _decode_fully(container, limits)
    report = FaultInjectionReport()
    for mutation in mutations:
        start = time.perf_counter()
        detail = ""
        try:
            contacts = _decode_fully(mutation.data, limits)
        except FormatError as exc:
            outcome = "detected"
            detail = f"{type(exc).__name__}"
        except Exception as exc:  # noqa: BLE001 - the contract under test
            outcome = "escaped"
            detail = repr(exc)
        else:
            if contacts == baseline:
                outcome = "identical"
            else:
                outcome = "mismatch"
                detail = f"{len(contacts)} vs {len(baseline)} contacts"
        elapsed = time.perf_counter() - start
        if elapsed > time_budget:
            outcome = "overbudget"
            detail = f"{elapsed:.2f}s > {time_budget:.2f}s budget"
        if check_salvage and outcome != "overbudget":
            try:
                salvage_bytes(mutation.data, limits=limits)
            except Exception as exc:  # noqa: BLE001 - salvage must not raise
                outcome = "escaped"
                detail = f"salvage raised {exc!r}"
        result = FaultResult(mutation.name, outcome, detail, elapsed)
        report.total += 1
        report.slowest = max(report.slowest, elapsed)
        if outcome == "identical":
            report.identical += 1
        elif outcome == "detected":
            report.detected += 1
        if result.failed:
            report.failures.append(result)
    return report


def run_mmap_fault_injection(
    container: bytes,
    mutations: Iterable[Mutation],
    *,
    time_budget: float = 5.0,
    limits: Optional[DecodeLimits] = None,
) -> FaultInjectionReport:
    """Assert lazy-CRC (mmap-mode) loading has outcome parity with eager.

    Every mutation is decoded twice: eagerly (the default
    :func:`load_compressed_bytes` path) and lazily (``lazy_crc=True`` --
    the ``load_compressed(mmap=True)`` path -- followed by a full decode
    so every deferred stream checksum fires).  The contract extends the
    eager one with *parity*:

    * if the eager path raises a :class:`FormatError` subclass, the lazy
      path must raise the **same subclass** (at load time or at first
      stream touch -- never succeed silently);
    * if the eager path decodes contacts, the lazy path must decode the
      identical contacts.

    Parity violations are recorded as ``mismatch`` failures with both
    sides' outcomes in the detail.
    """
    baseline = _decode_fully(container, limits)
    report = FaultInjectionReport()

    def attempt(decode: Callable[[], list]) -> Tuple[str, object]:
        try:
            return "contacts", decode()
        except FormatError as exc:
            return "error", type(exc).__name__
        except Exception as exc:  # noqa: BLE001 - the contract under test
            return "escaped", repr(exc)

    for mutation in mutations:
        start = time.perf_counter()
        detail = ""
        eager_kind, eager_value = attempt(
            lambda: _decode_fully(mutation.data, limits)
        )
        lazy_kind, lazy_value = attempt(
            lambda: list(
                load_compressed_bytes(
                    memoryview(mutation.data), limits=limits, lazy_crc=True
                ).iter_contacts()
            )
        )
        if eager_kind == "escaped" or lazy_kind == "escaped":
            outcome = "escaped"
            detail = str(eager_value if eager_kind == "escaped" else lazy_value)
        elif eager_kind != lazy_kind:
            outcome = "mismatch"
            detail = (
                f"eager {eager_kind}:{eager_value if eager_kind == 'error' else ''} "
                f"vs lazy {lazy_kind}:{lazy_value if lazy_kind == 'error' else ''}"
            )
        elif eager_kind == "error":
            if eager_value == lazy_value:
                outcome = "detected"
                detail = str(eager_value)
            else:
                outcome = "mismatch"
                detail = f"eager raised {eager_value}, lazy raised {lazy_value}"
        else:
            if eager_value != lazy_value:
                outcome = "mismatch"
                detail = "eager and lazy decoded different contacts"
            elif eager_value == baseline:
                outcome = "identical"
            else:
                outcome = "mismatch"
                detail = f"{len(eager_value)} vs {len(baseline)} contacts"  # type: ignore[arg-type]
        elapsed = time.perf_counter() - start
        if elapsed > time_budget:
            outcome = "overbudget"
            detail = f"{elapsed:.2f}s > {time_budget:.2f}s budget"
        result = FaultResult(mutation.name, outcome, detail, elapsed)
        report.total += 1
        report.slowest = max(report.slowest, elapsed)
        if outcome == "identical":
            report.identical += 1
        elif outcome == "detected":
            report.detected += 1
        if result.failed:
            report.failures.append(result)
    return report


# --------------------------------------------------------------------------
# Crash-point injection over the filesystem shim
# --------------------------------------------------------------------------

class CrashPoint(OSError):
    """Simulated process death, raised by :class:`FaultyFilesystem`.

    Subclasses :class:`OSError` (with ``errno`` left ``None``) so cleanup
    code written for real I/O errors handles it, while the retry policy's
    transient-errno check never swallows it.
    """


class FaultyFilesystem(Filesystem):
    """A :class:`repro.storage.atomic.Filesystem` that injects faults.

    Mutating operations (``write``, ``fsync``, ``fsync_dir``, ``replace``,
    ``truncate``, ``remove``) are numbered 0, 1, 2, ... in call order:

    * ``crash_at=N`` makes operation N die with :class:`CrashPoint`
      *instead of happening* -- except a crashing ``write``, which first
      lands ``partial_bytes`` of its data (crash-at-byte-N); every later
      mutating operation and ``open`` also raise, modelling a dead
      process (``close`` still works so tests do not leak descriptors);
    * ``errors={N: errno}`` makes operation N fail once with that errno
      and lets subsequent calls proceed (transient / ``ENOSPC`` faults).

    ``ops`` journals every mutating call as ``(index, name)`` so tests
    can assert what a write path actually did.
    """

    def __init__(
        self,
        *,
        crash_at: Optional[int] = None,
        partial_bytes: int = 0,
        errors: Optional[Dict[int, int]] = None,
    ) -> None:
        self.crash_at = crash_at
        self.partial_bytes = partial_bytes
        self.errors = dict(errors or {})
        self.ops: List[Tuple[int, str]] = []
        self.crashed = False
        self._next = 0

    def _gate(self, name: str) -> bool:
        """Count one mutating op; True means "crash now"."""
        if self.crashed:
            raise CrashPoint(f"filesystem dead after crash ({name})")
        index = self._next
        self._next += 1
        self.ops.append((index, name))
        err = self.errors.pop(index, None)
        if err is not None:
            raise OSError(err, os.strerror(err))
        if self.crash_at is not None and index >= self.crash_at:
            self.crashed = True
            return True
        return False

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        if self.crashed:
            raise CrashPoint("filesystem dead after crash (open)")
        return super().open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        if self._gate("write"):
            if self.partial_bytes > 0:
                os.write(fd, bytes(data)[: self.partial_bytes])
            raise CrashPoint("crash during write")
        return super().write(fd, data)

    def fsync(self, fd: int) -> None:
        if self._gate("fsync"):
            raise CrashPoint("crash during fsync")
        super().fsync(fd)

    def fsync_dir(self, path: str) -> None:
        if self._gate("fsync_dir"):
            raise CrashPoint("crash during fsync_dir")
        super().fsync_dir(path)

    def replace(self, src: str, dst: str) -> None:
        if self._gate("replace"):
            raise CrashPoint("crash during replace")
        super().replace(src, dst)

    def truncate(self, fd: int, length: int) -> None:
        if self._gate("truncate"):
            raise CrashPoint("crash during truncate")
        super().truncate(fd, length)

    def remove(self, path: str) -> None:
        if self._gate("remove"):
            raise CrashPoint("crash during remove")
        super().remove(path)


def crash_points(
    action: Callable[[FaultyFilesystem], None],
    *,
    partial_bytes: int = 0,
    max_points: int = 10_000,
) -> Iterator[Tuple[int, FaultyFilesystem]]:
    """Run ``action`` once per possible crash point, yielding each crash.

    ``action(fs)`` must set up its own fresh inputs each call and route
    all mutating I/O through ``fs``.  Iteration yields ``(n, fs)`` for
    every n at which the action died, and stops after the first run that
    completes without crashing -- so a consumer that asserts its recovery
    invariant per yield has, by construction, covered *every* crash point
    of the write path.
    """
    for n in range(max_points + 1):
        fs = FaultyFilesystem(crash_at=n, partial_bytes=partial_bytes)
        try:
            action(fs)
        except CrashPoint:
            yield n, fs
        else:
            return
    raise RuntimeError(
        f"action still crashing after {max_points} crash points; "
        "is it re-running its own setup each call?"
    )


# --------------------------------------------------------------------------
# WAL-aware mutators
# --------------------------------------------------------------------------

def _wal_spans(data: bytes) -> Tuple[int, List[Tuple[int, int]]]:
    """(header_size, [(start, end) per intact record]) of a WAL image."""
    from repro.storage.wal import WAL_HEADER_SIZE, scan_wal_bytes

    scan = scan_wal_bytes(data)
    spans: List[Tuple[int, int]] = []
    prev = WAL_HEADER_SIZE
    for end in scan.record_ends:
        spans.append((prev, end))
        prev = end
    return WAL_HEADER_SIZE, spans


def wal_truncate_mutations(data: bytes) -> Iterator[Mutation]:
    """Cuts at and around every record boundary, plus header-level cuts.

    Boundary cuts model a crash exactly between commits; the off-by-one
    and mid-record cuts model a crash inside a commit's single append.
    """
    header_size, spans = _wal_spans(data)
    cuts = {0, header_size // 2, header_size}
    for start, end in spans:
        cuts.add(end)          # clean boundary: a whole batch missing
        cuts.add(end - 1)      # torn checksum
        cuts.add(start + 4)    # tear exactly after the length prefix
        cuts.add(start + 5)    # torn payload, length prefix intact
        cuts.add((start + end) // 2)
    for keep in sorted(cuts):
        if 0 <= keep < len(data):
            yield Mutation(f"wal-truncate@{keep}", data[:keep])


def wal_crc_flip_mutations(data: bytes) -> Iterator[Mutation]:
    """Per record: flip a checksum byte, and flip a payload byte.

    Both must be caught by the record CRC; the payload flip additionally
    proves the checksum actually covers the payload.
    """
    _, spans = _wal_spans(data)
    for start, end in spans:
        crc_at = end - 1
        mutated = bytearray(data)
        mutated[crc_at] ^= 0xFF
        yield Mutation(f"wal-crcflip@{crc_at}", bytes(mutated))
        payload_at = start + 4
        mutated = bytearray(data)
        mutated[payload_at] ^= 0x01
        yield Mutation(f"wal-payloadflip@{payload_at}", bytes(mutated))


def wal_generation_mutations(data: bytes) -> Iterator[Mutation]:
    """Headers whose own CRC is valid but whose snapshot binding is wrong.

    These must be refused by the *binding* check (generation mismatch),
    not the header checksum -- plus one plain header-CRC flip for the
    checksum path itself.
    """
    from repro.storage.wal import WAL_HEADER_SIZE, scan_wal_bytes

    if len(data) < WAL_HEADER_SIZE:
        return
    scan = scan_wal_bytes(data)
    if scan.header is None:
        return
    header = scan.header
    body = data[WAL_HEADER_SIZE:]
    rebinds = (
        ("wal-gen-basecrc", dataclasses.replace(
            header, base_crc=header.base_crc ^ 0xDEADBEEF)),
        ("wal-gen-basesize", dataclasses.replace(
            header, base_size=header.base_size + 1)),
        ("wal-gen-bothzero", dataclasses.replace(
            header, base_size=0, base_crc=0)),
    )
    for name, rebound in rebinds:
        yield Mutation(name, rebound.to_bytes() + body)
    kinds = [k for k in type(header.kind) if k is not header.kind]
    for kind in kinds[:1]:
        yield Mutation(
            "wal-gen-kind",
            dataclasses.replace(header, kind=kind).to_bytes() + body,
        )
    mutated = bytearray(data)
    mutated[WAL_HEADER_SIZE - 1] ^= 0xFF
    yield Mutation("wal-headercrcflip", bytes(mutated))


def default_wal_mutations(
    data: bytes, *, stride_bits: int = 8, seed: int = 0
) -> Iterator[Mutation]:
    """The standard WAL campaign: structural mutators plus raw bit flips."""
    yield from wal_truncate_mutations(data)
    yield from wal_crc_flip_mutations(data)
    yield from wal_generation_mutations(data)
    yield from bit_flip_mutations(data, stride_bits=stride_bits)
    yield from extend_mutations(data, tails=(1, 8, 64))
    yield from random_region_mutations(data, seed=seed, count=32)


def run_wal_fault_injection(
    base_container: bytes,
    wal_image: bytes,
    mutations: Iterable[Mutation],
    *,
    time_budget: float = 5.0,
    limits: Optional[DecodeLimits] = None,
) -> FaultInjectionReport:
    """Drive WAL mutations through recovery and classify against the contract.

    The contract: recovery of a mutated WAL must either raise from
    ``FormatError`` (``detected``), or replay exactly some *prefix* of the
    committed batches -- the full log with no complaints (``identical``),
    or a proper prefix **with the loss reported** (``detected``).  A
    replay that is not a committed-batch prefix, or that dropped data
    silently, is a ``mismatch``; any non-``FormatError`` exception is an
    ``escaped``; exceeding ``time_budget`` is ``overbudget``.
    """
    from repro.storage.recovery import recover_bytes
    from repro.storage.wal import scan_wal_bytes

    baseline = scan_wal_bytes(wal_image)
    if baseline.header is None or baseline.errors:
        raise ValueError("wal_image must be a pristine WAL")
    prefixes = []
    flat: List[tuple] = []
    prefixes.append(tuple(flat))
    for batch in baseline.batches:
        flat.extend(batch)
        prefixes.append(tuple(flat))
    full = prefixes[-1]

    report = FaultInjectionReport()
    for mutation in mutations:
        start = time.perf_counter()
        detail = ""
        try:
            graph, recovery = recover_bytes(
                base_container, mutation.data, limits=limits
            )
        except FormatError as exc:
            outcome = "detected"
            detail = type(exc).__name__
        except Exception as exc:  # noqa: BLE001 - the contract under test
            outcome = "escaped"
            detail = repr(exc)
        else:
            replay_scan = scan_wal_bytes(mutation.data)
            replayed = tuple(replay_scan.contacts)
            if recovery.superseded:
                replayed = ()
            if replayed not in prefixes:
                outcome = "mismatch"
                detail = f"replayed {len(replayed)} contacts: not a committed-batch prefix"
            elif replayed == full and recovery.ok:
                outcome = "identical"
            elif recovery.errors or recovery.dropped_bytes:
                outcome = "detected"
                detail = f"prefix of {len(replayed)}/{len(full)} contacts, reported"
            elif not replay_scan.torn:
                # A cut at an exact record boundary leaves a well-formed
                # shorter log -- indistinguishable from fewer commits, so
                # a clean report is correct, not a silent loss.
                outcome = "detected"
                detail = (
                    f"clean boundary cut: {len(replayed)}/{len(full)} "
                    "committed contacts remain"
                )
            else:
                outcome = "mismatch"
                detail = (
                    f"silent loss: {len(replayed)}/{len(full)} contacts "
                    "with a clean report"
                )
        elapsed = time.perf_counter() - start
        if elapsed > time_budget:
            outcome = "overbudget"
            detail = f"{elapsed:.2f}s > {time_budget:.2f}s budget"
        result = FaultResult(mutation.name, outcome, detail, elapsed)
        report.total += 1
        report.slowest = max(report.slowest, elapsed)
        if outcome == "identical":
            report.identical += 1
        elif outcome == "detected":
            report.detected += 1
        if result.failed:
            report.failures.append(result)
    return report


# --------------------------------------------------------------------------
# Segment-store mutators and harnesses
# --------------------------------------------------------------------------

def _manifest_frame(data: bytes) -> Optional[dict]:
    """The JSON document of a manifest image, or None if unframeable."""
    from repro.storage.segments import MANIFEST_MAGIC

    if len(data) < 9 or data[:4] != MANIFEST_MAGIC:
        return None
    (length,) = struct.unpack_from("<I", data, 5)
    if 9 + length + 4 != len(data):
        return None
    try:
        doc = json.loads(data[9 : 9 + length].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _reseal_manifest(doc: dict) -> bytes:
    """Re-frame a (possibly lying) manifest document with a *valid* CRC."""
    import zlib

    from repro.storage.segments import MANIFEST_MAGIC, MANIFEST_VERSION

    payload = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return (
        struct.pack("<4sBI", MANIFEST_MAGIC, MANIFEST_VERSION, len(payload))
        + payload
        + struct.pack("<I", zlib.crc32(payload))
    )


def manifest_field_mutations(data: bytes) -> Iterator[Mutation]:
    """Manifests whose frame CRC is *valid* but whose contents lie.

    The CRC guard cannot catch these -- they exercise the semantic
    validation (unsafe names, duplicate entries, sequence invariants) and
    the per-segment binding checks (a manifest claiming the wrong size or
    checksum for a real file must quarantine it, not serve it).  Yields
    nothing for images that do not frame as a manifest.
    """
    import copy

    doc = _manifest_frame(data)
    if doc is None:
        return
    segments = doc.get("segments") or []

    def variant(label: str, **changes) -> Mutation:
        lied = copy.deepcopy(doc)
        lied.update(changes)
        return Mutation(label, _reseal_manifest(lied))

    def seg_variant(label: str, index: int, **changes) -> Mutation:
        lied = copy.deepcopy(doc)
        lied["segments"][index] = dict(lied["segments"][index], **changes)
        return Mutation(label, _reseal_manifest(lied))

    yield variant("manifest-lie-kind", kind="sausage")
    yield variant("manifest-lie-negative-generation", generation=-1)
    yield variant("manifest-lie-wal-generation",
                  wal_generation=doc.get("wal_generation", 0) + 7)
    if segments:
        yield seg_variant("manifest-lie-segment-crc", 0,
                          crc=segments[0]["crc"] ^ 0xDEADBEEF)
        yield seg_variant("manifest-lie-segment-size", 0,
                          size=segments[0]["size"] + 1)
        yield seg_variant("manifest-lie-segment-missing", 0,
                          name="seg-99999999.chrono")
        yield seg_variant("manifest-lie-segment-escape", 0,
                          name="../escaped.chrono")
        yield seg_variant("manifest-lie-segment-seq", 0,
                          seq=doc.get("next_seq", 0) + 5)
        yield seg_variant("manifest-lie-segment-empty", 0, contacts=0)
        yield seg_variant("manifest-lie-segment-timerange", 0,
                          t_min=segments[0]["t_max"] + 1)
        lied = copy.deepcopy(doc)
        lied["segments"].append(copy.deepcopy(lied["segments"][0]))
        yield Mutation("manifest-lie-duplicate-segment", _reseal_manifest(lied))


def default_manifest_mutations(
    data: bytes, *, stride_bits: int = 8, seed: int = 0
) -> Iterator[Mutation]:
    """The standard manifest campaign: frame damage plus semantic lies."""
    yield from bit_flip_mutations(data, stride_bits=stride_bits)
    yield from truncate_mutations(data)
    yield from extend_mutations(data, tails=(1, 8, 64))
    yield from random_region_mutations(data, seed=seed, count=32)
    yield from manifest_field_mutations(data)


def run_segment_store_fault_injection(
    directory,
    target: str,
    mutations: Iterable[Mutation],
    *,
    time_budget: float = 5.0,
    limits: Optional[DecodeLimits] = None,
) -> FaultInjectionReport:
    """Mutate one file of a segment store and classify every open.

    ``directory`` must hold a *healthy* store; ``target`` names the file
    under mutation (the manifest or a segment).  The contract mirrors the
    container campaigns, lifted to the store level: every mutated open
    must either raise from ``FormatError`` (``detected``), serve the
    baseline answers untouched (``identical``), or serve a *subset* of
    the baseline with the damage explicitly reported via quarantine
    entries or recovery events (``detected``).  Serving a contact the
    baseline never held, or dropping data with a clean health report, is
    a ``mismatch`` -- the silent wrong answer the store exists to prevent.

    Opens run read-only so no repair side effects touch the fixture; the
    target's original bytes are restored before returning.
    """
    from repro.storage.segments import SegmentStore

    directory = pathlib.Path(directory)
    target_path = directory / target

    def answers(store) -> List[tuple]:
        return sorted(
            (c.u, c.v, c.time, c.duration) for c in store.graph.iter_contacts()
        )

    with SegmentStore.open(directory, read_only=True, limits=limits) as store:
        if not store.health().ok:
            raise ValueError(f"{directory}: baseline store must be healthy")
        baseline = answers(store)
    base_counts = collections.Counter(baseline)

    original = target_path.read_bytes()
    report = FaultInjectionReport()
    try:
        for mutation in mutations:
            target_path.write_bytes(mutation.data)
            start = time.perf_counter()
            detail = ""
            try:
                store = SegmentStore.open(
                    directory, read_only=True, limits=limits
                )
            except FormatError as exc:
                outcome = "detected"
                detail = type(exc).__name__
            except Exception as exc:  # noqa: BLE001 - the contract under test
                outcome = "escaped"
                detail = repr(exc)
            else:
                health = store.health()
                served = answers(store)
                store.close()
                reported = bool(health.quarantined or health.events)
                fabricated = collections.Counter(served) - base_counts
                if fabricated:
                    outcome = "mismatch"
                    detail = (
                        f"served {sum(fabricated.values())} contact(s) the "
                        "baseline never held"
                    )
                elif served == baseline:
                    outcome = "identical" if not reported else "detected"
                    if reported:
                        detail = "full answers, damage reported"
                elif reported:
                    outcome = "detected"
                    detail = (
                        f"degraded to {len(served)}/{len(baseline)} "
                        "contacts, reported"
                    )
                else:
                    outcome = "mismatch"
                    detail = (
                        f"silent loss: {len(served)}/{len(baseline)} "
                        "contacts with a clean health report"
                    )
            elapsed = time.perf_counter() - start
            if elapsed > time_budget:
                outcome = "overbudget"
                detail = f"{elapsed:.2f}s > {time_budget:.2f}s budget"
            result = FaultResult(mutation.name, outcome, detail, elapsed)
            report.total += 1
            report.slowest = max(report.slowest, elapsed)
            if outcome == "identical":
                report.identical += 1
            elif outcome == "detected":
                report.detected += 1
            if result.failed:
                report.failures.append(result)
    finally:
        target_path.write_bytes(original)
    return report


def run_segment_crash_matrix(
    workdir,
    batches: Sequence[Sequence[tuple]],
    *,
    kind=None,
    policy=None,
    partial_bytes: int = 0,
    queries_per_crash: int = 8,
) -> FaultInjectionReport:
    """Exhaustive crash matrix over the full segment-store lifecycle.

    Drives ``create -> ingest (with inline seals) -> seal -> compact ->
    close`` through :func:`crash_points`, killing the store at every
    mutating filesystem operation, then reopens each wreck with the real
    filesystem and asserts the recovery contract:

    * recovery never quarantines anything (a pure crash only ever leaves
      complete-but-unreferenced files or a torn WAL tail, both of which
      recover losslessly);
    * the recovered contacts equal exactly a *batch prefix* bounded below
      by the last ingest that returned and above by the last one started
      (the durability boundary is the WAL commit inside ingest);
    * query answers over the recovered store are bit-identical to a fresh
      reference graph compressed from that same prefix;
    * the recovered store accepts further ingest.

    Every crash point is one report entry: ``identical`` when the
    contract holds, a failure naming the violated clause otherwise.
    """
    from repro.core import compress
    from repro.graph.builders import graph_from_contacts
    from repro.graph.model import Contact, GraphKind
    from repro.storage.atomic import NO_RETRY
    from repro.storage.segments import SegmentStore, StorePolicy

    kind = kind or GraphKind.POINT
    policy = policy or StorePolicy(
        seal_contacts=6, max_segments=1, backpressure_contacts=4096
    )
    workdir = pathlib.Path(workdir)
    store_dir = workdir / "crash-store"
    rows = [
        [
            (r.u, r.v, r.time, r.duration) if isinstance(r, Contact) else tuple(r)
            for r in batch
        ]
        for batch in batches
    ]
    prefixes: List[List[tuple]] = [[]]
    for batch in rows:
        prefixes.append(sorted(prefixes[-1] + list(batch)))
    progress = {"started": 0, "done": 0}

    def action(fs: FaultyFilesystem) -> None:
        shutil.rmtree(store_dir, ignore_errors=True)
        progress["started"] = progress["done"] = 0
        store = SegmentStore.create(
            store_dir, kind, fs=fs, retry=NO_RETRY, policy=policy
        )
        for batch in rows:
            progress["started"] += 1
            store.ingest(batch)
            progress["done"] += 1
        store.seal()
        store.compact_once()
        store.close()

    report = FaultInjectionReport()

    def record(n: int, outcome: str, detail: str = "") -> None:
        result = FaultResult(f"crash@{n}", outcome, detail)
        report.total += 1
        if outcome == "identical":
            report.identical += 1
        elif outcome == "detected":
            report.detected += 1
        if result.failed:
            report.failures.append(result)

    for n, _fs in crash_points(action, partial_bytes=partial_bytes):
        lo, hi = progress["done"], progress["started"]
        try:
            store = SegmentStore.open(store_dir, policy=policy)
        except FileNotFoundError:
            # Crash before the very first manifest write: the store was
            # never durably created, which is only honest if nothing had
            # been durably ingested either.
            if lo == 0:
                record(n, "detected", "store creation never completed")
            else:
                record(n, "mismatch", "manifest vanished after durable ingest")
            continue
        except Exception as exc:  # noqa: BLE001 - recovery must not raise
            record(n, "escaped", f"recovery raised {exc!r}")
            continue
        try:
            health = store.health()
            if health.quarantined:
                record(
                    n, "mismatch",
                    "pure crash produced quarantine: "
                    + "; ".join(q.reason for q in health.quarantined),
                )
                continue
            recovered = sorted(
                (c.u, c.v, c.time, c.duration)
                for c in store.graph.iter_contacts()
            )
            match = next(
                (k for k in range(lo, hi + 1) if recovered == prefixes[k]),
                None,
            )
            if match is None:
                record(
                    n, "mismatch",
                    f"recovered {len(recovered)} contacts: not a batch "
                    f"prefix in [{lo}, {hi}]",
                )
                continue
            flaw = _crash_queries_match(
                store, prefixes[match], kind, compress, graph_from_contacts,
                queries_per_crash,
            )
            if flaw is not None:
                record(n, "mismatch", flaw)
                continue
            # Recovery must yield a live, writable store.
            probe_d = 1 if kind is GraphKind.INTERVAL else 0
            store.ingest([(0, 1, 1, probe_d)])
            record(n, "identical", f"prefix {match}/{len(rows)}")
        finally:
            store.close()
    return report


def _crash_queries_match(
    store, prefix_rows, kind, compress, graph_from_contacts, per_node: int
) -> Optional[str]:
    """Compare recovered query answers against a reference graph; None if ok."""
    if not prefix_rows:
        return None
    n = store.graph.num_nodes
    reference = compress(graph_from_contacts(kind, prefix_rows, num_nodes=n))
    t_lo = min(r[2] for r in prefix_rows)
    t_hi = max(r[2] + r[3] for r in prefix_rows)
    third = (t_hi - t_lo) // 3
    windows = [(t_lo, t_hi), (t_lo + third, t_hi - third), (t_hi + 1, t_hi + 2)]
    for t1, t2 in windows:
        if store.graph.snapshot(t1, t2) != reference.snapshot(t1, t2):
            return f"snapshot({t1}, {t2}) diverged from the reference"
        for u in range(min(n, per_node)):
            if store.graph.neighbors(u, t1, t2) != reference.neighbors(u, t1, t2):
                return f"neighbors({u}, {t1}, {t2}) diverged from the reference"
    return None


# --------------------------------------------------------------------------
# Latency / stall injection and the chaos harness
# --------------------------------------------------------------------------

class StepClock:
    """A manually advanced monotonic clock for deterministic stall tests.

    Inject it as the ``clock`` of :class:`repro.runtime.context.Deadline`,
    :class:`repro.runtime.context.QueryContext` and
    :class:`repro.runtime.breaker.BreakerBoard`, then :meth:`advance` it
    from a fault to model a 10-second stall without sleeping 10 seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        """Start the clock at ``start`` seconds."""
        self._now = float(start)

    def __call__(self) -> float:
        """The current time (monotonic-clock calling convention)."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward by ``seconds`` (never backward)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds}")
        self._now += seconds


class SlowFilesystem(Filesystem):
    """A :class:`repro.storage.atomic.Filesystem` that injects latency.

    Before each operation named in ``operations`` (default: every
    mutating op plus ``open``), ``delay`` seconds are charged through the
    injectable ``sleep`` -- pass a :class:`StepClock`-advancing lambda to
    model pathological I/O latency without real waiting, or
    ``time.sleep`` to exercise true wall-clock stalls.  ``stalls`` counts
    injections so tests can assert the slow path was actually taken.
    """

    _ALL_OPS = frozenset(
        {"open", "write", "fsync", "fsync_dir", "replace", "truncate", "remove"}
    )

    def __init__(
        self,
        *,
        delay: float,
        operations: Optional[Iterable[str]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Configure which operations stall, for how long, and how."""
        self.delay = delay
        self.operations = (
            frozenset(operations) if operations is not None else self._ALL_OPS
        )
        unknown = self.operations - self._ALL_OPS
        if unknown:
            raise ValueError(f"unknown operations: {sorted(unknown)}")
        self._sleep = sleep
        self.stalls = 0

    def _stall(self, name: str) -> None:
        if name in self.operations and self.delay > 0:
            self.stalls += 1
            self._sleep(self.delay)

    def open(self, path: str, flags: int, mode: int = 0o666) -> int:
        self._stall("open")
        return super().open(path, flags, mode)

    def write(self, fd: int, data: bytes) -> int:
        self._stall("write")
        return super().write(fd, data)

    def fsync(self, fd: int) -> None:
        self._stall("fsync")
        super().fsync(fd)

    def fsync_dir(self, path: str) -> None:
        self._stall("fsync_dir")
        super().fsync_dir(path)

    def replace(self, src: str, dst: str) -> None:
        self._stall("replace")
        super().replace(src, dst)

    def truncate(self, fd: int, length: int) -> None:
        self._stall("truncate")
        super().truncate(fd, length)

    def remove(self, path: str) -> None:
        self._stall("remove")
        super().remove(path)


class StallingGraph:
    """Proxy over one query part that stalls before every query method.

    ``stall`` is any zero-argument callable -- typically one that
    advances a :class:`StepClock` past the query deadline, modelling a
    segment whose decode path has hit pathological latency.  Everything
    else (sizes, ``iter_contacts``, attributes) passes straight through,
    so a chaos view built around this proxy still supports reference
    building and seal/compact reads.
    """

    _STALLED = frozenset(
        {
            "neighbors",
            "neighbors_many",
            "neighbors_before",
            "neighbors_after",
            "has_edge",
            "contacts_of",
            "edge_timestamps",
            "snapshot",
            "snapshot_parallel",
            "iter_window_neighbors",
        }
    )

    def __init__(self, inner, stall: Callable[[], None]) -> None:
        """Wrap ``inner``, invoking ``stall()`` before each query."""
        self._inner = inner
        self._stall = stall
        self.calls = 0

    def __getattr__(self, name: str):
        """Delegate to the inner graph, stalling the query surface."""
        attr = getattr(self._inner, name)
        if name in type(self)._STALLED and callable(attr):
            def stalled(*args, _attr=attr, **kwargs):
                self.calls += 1
                self._stall()
                return _attr(*args, **kwargs)

            return stalled
        return attr


@dataclasses.dataclass
class ChaosReport:
    """Aggregate outcome of a :func:`run_chaos_harness` campaign."""

    total: int = 0
    deadlines_held: int = 0
    shed: int = 0
    partial: int = 0
    breaker_trips: int = 0
    failures: List[FaultResult] = dataclasses.field(default_factory=list)
    slowest: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every probe honoured the latency-isolation contract."""
        return not self.failures

    def summary(self) -> str:
        """One-paragraph human-readable account of the campaign."""
        lines = [
            f"{self.total} probes: {self.deadlines_held} deadlines held, "
            f"{self.shed} shed by breaker, {self.partial} partial answers, "
            f"{self.breaker_trips} breaker trip(s), "
            f"{len(self.failures)} failures "
            f"(slowest {self.slowest * 1000:.1f} ms wall)"
        ]
        for failure in self.failures[:20]:
            lines.append(
                f"  - {failure.mutation}: {failure.outcome} {failure.detail}"
            )
        return "\n".join(lines)


def run_chaos_harness(
    store,
    *,
    stall_seconds: float = 10.0,
    deadline: float = 0.1,
    failure_threshold: int = 3,
    probe_nodes: int = 8,
    time_budget: float = 2.0,
) -> ChaosReport:
    """Prove deadlines hold and breakers isolate under an injected stall.

    Builds a chaos view over ``store``'s current graph in which the
    *first sealed segment* stalls for ``stall_seconds`` (on a
    :class:`StepClock`, so no real time passes) before every query, then
    drives the full isolation story and records each probe:

    1. **Deadlines hold** -- windowed queries under a ``deadline``-second
       budget raise :class:`repro.errors.QueryTimeout` (never hang, never
       answer late); each probe's *wall* time must stay under
       ``time_budget``, proving interruption is cooperative and prompt.
    2. **The breaker trips** -- after ``failure_threshold`` attributed
       failures the stalled segment's breaker is open, and the next
       default query is shed with :class:`repro.errors.RejectedError`
       (structured retry-after) without touching the stalled part.
    3. **Partial answers are exact** -- queries consenting via
       ``allow_partial`` return, annotate the skipped segment, and are
       compared *byte-identical* to a monolithic graph compressed from
       the healthy subset (healthy segments plus tail).
    4. **Half-open re-trips** -- advancing the clock past the backoff
       admits a single probe, which stalls again and re-opens the
       breaker with a longer backoff.

    The store itself is never mutated; the chaos view shares its segment
    graphs read-only.
    """
    from repro.core import compress
    from repro.errors import QueryTimeout, RejectedError
    from repro.graph.builders import graph_from_contacts
    from repro.runtime.breaker import BreakerBoard
    from repro.runtime.context import QueryContext
    from repro.storage.segments import SegmentedChronoGraph

    view = store.graph
    if not view._segments:
        raise ValueError("chaos harness needs at least one sealed segment")

    clock = StepClock()
    board = BreakerBoard(failure_threshold=failure_threshold, clock=clock)
    victim_info, victim_graph = view._segments[0]
    wrapped = StallingGraph(victim_graph, lambda: clock.advance(stall_seconds))
    chaos = SegmentedChronoGraph(
        view.kind,
        ((victim_info, wrapped),) + view._segments[1:],
        view._tail,
        breakers=board,
    )

    healthy_rows = [
        (c.u, c.v, c.time, c.duration)
        for _info, graph in view._segments[1:]
        for c in graph.iter_contacts()
    ]
    healthy_rows.extend(
        (c.u, c.v, c.time, c.duration) for c in view._tail.iter_contacts()
    )
    n = view.num_nodes
    reference = compress(
        graph_from_contacts(view.kind, healthy_rows, num_nodes=n)
    )
    all_rows = [
        (c.u, c.v, c.time, c.duration) for c in view.iter_contacts()
    ]
    t_lo = min(r[2] for r in all_rows)
    t_hi = max(r[2] + r[3] for r in all_rows)

    report = ChaosReport()

    def record(name: str, outcome: str, detail: str, elapsed: float) -> None:
        if elapsed > time_budget:
            outcome = "overbudget"
            detail = f"{elapsed:.3f}s wall > {time_budget:.3f}s budget"
        result = FaultResult(name, outcome, detail, elapsed)
        report.total += 1
        report.slowest = max(report.slowest, elapsed)
        if outcome == "deadline-held":
            report.deadlines_held += 1
        elif outcome == "shed":
            report.shed += 1
        elif outcome == "partial":
            report.partial += 1
        if result.failed:
            report.failures.append(result)

    # 1. Deadline probes until the breaker trips.
    for attempt in range(failure_threshold):
        ctx = QueryContext(timeout=deadline, clock=clock)
        start = time.perf_counter()
        try:
            chaos.snapshot(t_lo, t_hi, ctx=ctx)
        except QueryTimeout as exc:
            record(
                f"deadline@{attempt}", "deadline-held",
                f"budget {exc.budget}s", time.perf_counter() - start,
            )
        except Exception as exc:  # noqa: BLE001 - the contract under test
            record(
                f"deadline@{attempt}", "escaped", repr(exc),
                time.perf_counter() - start,
            )
        else:
            record(
                f"deadline@{attempt}", "mismatch",
                "stalled query answered instead of timing out",
                time.perf_counter() - start,
            )

    breaker = board.peek(victim_info.name)
    report.breaker_trips = breaker.snapshot()["trips"] if breaker else 0
    if breaker is None or breaker.state != "open":
        record(
            "breaker-tripped", "mismatch",
            f"breaker is {breaker.state if breaker else 'absent'} after "
            f"{failure_threshold} attributed failures",
            0.0,
        )

    # 2. Default (non-partial) query is shed, promptly and typed.
    start = time.perf_counter()
    try:
        chaos.snapshot(t_lo, t_hi, ctx=QueryContext(timeout=deadline, clock=clock))
    except RejectedError as exc:
        record(
            "shed", "shed",
            f"reason={exc.reason} retry_after={exc.retry_after}",
            time.perf_counter() - start,
        )
    except Exception as exc:  # noqa: BLE001 - the contract under test
        record("shed", "escaped", repr(exc), time.perf_counter() - start)
    else:
        record(
            "shed", "mismatch", "open breaker did not shed the query",
            time.perf_counter() - start,
        )

    # 3. Partial answers: annotated, unthrottled, byte-identical to the
    #    monolithic healthy-subset reference.
    windows = [(t_lo, t_hi), (t_lo, (t_lo + t_hi) // 2)]
    for t1, t2 in windows:
        ctx = QueryContext(allow_partial=True, timeout=deadline, clock=clock)
        start = time.perf_counter()
        try:
            got = chaos.snapshot(t1, t2, ctx=ctx)
            want = reference.snapshot(t1, t2)
            node_flaw = ""
            for u in range(min(n, probe_nodes)):
                cu = QueryContext(
                    allow_partial=True, timeout=deadline, clock=clock
                )
                if chaos.neighbors(u, t1, t2, ctx=cu) != reference.neighbors(
                    u, t1, t2
                ):
                    node_flaw = f"neighbors({u}) diverged"
                    break
        except Exception as exc:  # noqa: BLE001 - the contract under test
            record(
                f"partial@{t1}-{t2}", "escaped", repr(exc),
                time.perf_counter() - start,
            )
            continue
        elapsed = time.perf_counter() - start
        skipped = [s.part for s in ctx.skipped]
        if got != want:
            record(
                f"partial@{t1}-{t2}", "mismatch",
                "partial snapshot diverged from healthy-subset reference",
                elapsed,
            )
        elif node_flaw:
            record(f"partial@{t1}-{t2}", "mismatch", node_flaw, elapsed)
        elif victim_info.name not in skipped:
            record(
                f"partial@{t1}-{t2}", "mismatch",
                f"skip not annotated (skipped={skipped})", elapsed,
            )
        else:
            record(f"partial@{t1}-{t2}", "partial", "", elapsed)

    # 4. Half-open probe: past the backoff one probe is admitted, stalls
    #    again, and re-trips the breaker with a longer backoff.
    if breaker is not None:
        clock.advance(breaker.retry_after() + 0.001)
        before = breaker.snapshot()["trips"]
        start = time.perf_counter()
        try:
            chaos.snapshot(t_lo, t_hi, ctx=QueryContext(timeout=deadline, clock=clock))
        except QueryTimeout:
            after = breaker.snapshot()["trips"]
            if breaker.state == "open" and after > before:
                record(
                    "half-open-retrip", "deadline-held",
                    f"trips {before} -> {after}", time.perf_counter() - start,
                )
            else:
                record(
                    "half-open-retrip", "mismatch",
                    f"state={breaker.state} trips={after}",
                    time.perf_counter() - start,
                )
        except Exception as exc:  # noqa: BLE001 - the contract under test
            record(
                "half-open-retrip", "escaped", repr(exc),
                time.perf_counter() - start,
            )
        else:
            record(
                "half-open-retrip", "mismatch",
                "half-open probe answered despite the stall",
                time.perf_counter() - start,
            )
        report.breaker_trips = breaker.snapshot()["trips"]
    return report
