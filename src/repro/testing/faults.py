"""Systematic fault injection over ``.chrono`` containers.

The mutators each take the bytes of a *valid* container and yield
:class:`Mutation` variants of it: single-bit flips on a stride, prefix
truncations, junk extensions, permutations of the VERSION 2 sections and
seeded random-region overwrites.  :func:`run_fault_injection` drives any
iterable of mutations through a full load-and-decode cycle and classifies
every outcome against the robustness contract:

* ``identical`` -- the mutation decoded to exactly the baseline contacts
  (e.g. the flip landed in a byte the decoder never dereferences);
* ``detected`` -- decoding raised from the
  :class:`repro.errors.FormatError` hierarchy;
* ``mismatch`` -- decoded without error but to *different* contacts
  (a silent corruption: always a failure);
* ``escaped`` -- raised anything outside ``FormatError`` (a failure);
* ``overbudget`` -- took longer than the per-mutation time budget
  (a proxy for hangs; always a failure).

All mutators are deterministic (random ones take a seed), so a passing
campaign stays passing.
"""

from __future__ import annotations

import dataclasses
import random
import struct
import time
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core.serialize import (
    DecodeLimits,
    MAGIC,
    load_compressed_bytes,
    salvage_bytes,
)
from repro.errors import FormatError

__all__ = [
    "Mutation",
    "FaultResult",
    "FaultInjectionReport",
    "bit_flip_mutations",
    "truncate_mutations",
    "extend_mutations",
    "section_shuffle_mutations",
    "random_region_mutations",
    "default_mutations",
    "run_fault_injection",
]


@dataclasses.dataclass(frozen=True)
class Mutation:
    """One corrupted variant of a container, with a descriptive name."""

    name: str
    data: bytes


# --------------------------------------------------------------------------
# Mutators
# --------------------------------------------------------------------------

def bit_flip_mutations(
    data: bytes, *, stride_bits: int = 64, start_bit: int = 0
) -> Iterator[Mutation]:
    """Flip every ``stride_bits``-th bit of the container, one at a time.

    ``stride_bits=1`` exhausts every bit; the default keeps campaigns on
    larger containers tractable while still touching every region.
    """
    if stride_bits < 1:
        raise ValueError(f"stride_bits must be >= 1, got {stride_bits}")
    for bit in range(start_bit, 8 * len(data), stride_bits):
        mutated = bytearray(data)
        mutated[bit >> 3] ^= 0x80 >> (bit & 7)
        yield Mutation(f"bitflip@{bit}", bytes(mutated))


def truncate_mutations(data: bytes, *, steps: int = 24) -> Iterator[Mutation]:
    """Yield ``steps`` evenly spaced strict prefixes of the container."""
    n = len(data)
    seen = set()
    for i in range(steps):
        keep = (n * i) // steps
        if keep >= n or keep in seen:
            continue
        seen.add(keep)
        yield Mutation(f"truncate@{keep}", data[:keep])


def extend_mutations(
    data: bytes, *, tails: Sequence[int] = (1, 8, 64, 4096)
) -> Iterator[Mutation]:
    """Append junk tails (zero and 0xFF runs) after the final section."""
    for tail in tails:
        yield Mutation(f"extend+{tail}x00", data + b"\x00" * tail)
        yield Mutation(f"extend+{tail}xff", data + b"\xff" * tail)


def _v2_section_spans(data: bytes) -> Optional[List[tuple]]:
    """(start, end) byte spans of the four framed sections, or None."""
    if len(data) < 10 or data[:4] != MAGIC or data[4] != 2:
        return None
    (header_len,) = struct.unpack_from("<I", data, 6)
    pos = 10 + header_len + 4
    spans = []
    for _ in range(4):
        if pos + 9 > len(data):
            return None
        (payload_len,) = struct.unpack_from("<Q", data, pos + 1)
        end = pos + 9 + payload_len + 4
        if end > len(data):
            return None
        spans.append((pos, end))
        pos = end
    if pos != len(data):
        return None
    return spans


def section_shuffle_mutations(data: bytes) -> Iterator[Mutation]:
    """Permute the order of the four VERSION 2 sections.

    Yields nothing for containers that are not well-formed VERSION 2 (the
    section table cannot be located without valid framing).
    """
    spans = _v2_section_spans(data)
    if spans is None:
        return
    prefix = data[: spans[0][0]]
    sections = [data[a:b] for a, b in spans]
    for order in ((1, 0, 2, 3), (0, 2, 1, 3), (0, 1, 3, 2), (3, 2, 1, 0)):
        shuffled = prefix + b"".join(sections[i] for i in order)
        yield Mutation(f"shuffle{order}", shuffled)


def random_region_mutations(
    data: bytes, *, seed: int = 0, count: int = 64, max_len: int = 16
) -> Iterator[Mutation]:
    """Overwrite ``count`` seeded-random regions with random bytes."""
    rng = random.Random(seed)
    if not data:
        return
    for i in range(count):
        start = rng.randrange(len(data))
        length = min(1 + rng.randrange(max_len), len(data) - start)
        junk = bytes(rng.randrange(256) for _ in range(length))
        mutated = bytearray(data)
        mutated[start : start + length] = junk
        yield Mutation(f"region@{start}+{length}#{i}", bytes(mutated))


def default_mutations(
    data: bytes, *, stride_bits: int = 8, seed: int = 0
) -> Iterator[Mutation]:
    """The standard campaign: all five mutator families, chained."""
    yield from bit_flip_mutations(data, stride_bits=stride_bits)
    yield from truncate_mutations(data)
    yield from extend_mutations(data)
    yield from section_shuffle_mutations(data)
    yield from random_region_mutations(data, seed=seed)


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------

@dataclasses.dataclass
class FaultResult:
    """Classification of a single mutation's decode attempt."""

    mutation: str
    outcome: str
    detail: str = ""
    elapsed: float = 0.0

    @property
    def failed(self) -> bool:
        """Whether this outcome violates the robustness contract."""
        return self.outcome in ("mismatch", "escaped", "overbudget")


@dataclasses.dataclass
class FaultInjectionReport:
    """Aggregate outcome of a fault-injection campaign."""

    total: int = 0
    identical: int = 0
    detected: int = 0
    failures: List[FaultResult] = dataclasses.field(default_factory=list)
    slowest: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every mutation round-tripped or was cleanly detected."""
        return not self.failures

    def summary(self) -> str:
        """One-paragraph human-readable account of the campaign."""
        lines = [
            f"{self.total} mutations: {self.identical} identical, "
            f"{self.detected} detected, {len(self.failures)} failures "
            f"(slowest {self.slowest * 1000:.1f} ms)"
        ]
        for failure in self.failures[:20]:
            lines.append(
                f"  - {failure.mutation}: {failure.outcome} {failure.detail}"
            )
        return "\n".join(lines)


def _decode_fully(blob: bytes, limits: Optional[DecodeLimits]) -> list:
    graph = load_compressed_bytes(blob, limits=limits)
    return list(graph.iter_contacts())


def run_fault_injection(
    container: bytes,
    mutations: Iterable[Mutation],
    *,
    time_budget: float = 5.0,
    limits: Optional[DecodeLimits] = None,
    check_salvage: bool = False,
) -> FaultInjectionReport:
    """Drive mutations through load-and-full-decode and classify outcomes.

    ``container`` must be a valid container; its decoded contacts are the
    baseline every mutation is compared against.  ``time_budget`` is the
    per-mutation ceiling in seconds (exceeding it is recorded as an
    ``overbudget`` failure -- the hang proxy).  With ``check_salvage`` the
    harness additionally asserts that salvage-mode loading never raises on
    any mutation.
    """
    baseline = _decode_fully(container, limits)
    report = FaultInjectionReport()
    for mutation in mutations:
        start = time.perf_counter()
        detail = ""
        try:
            contacts = _decode_fully(mutation.data, limits)
        except FormatError as exc:
            outcome = "detected"
            detail = f"{type(exc).__name__}"
        except Exception as exc:  # noqa: BLE001 - the contract under test
            outcome = "escaped"
            detail = repr(exc)
        else:
            if contacts == baseline:
                outcome = "identical"
            else:
                outcome = "mismatch"
                detail = f"{len(contacts)} vs {len(baseline)} contacts"
        elapsed = time.perf_counter() - start
        if elapsed > time_budget:
            outcome = "overbudget"
            detail = f"{elapsed:.2f}s > {time_budget:.2f}s budget"
        if check_salvage and outcome != "overbudget":
            try:
                salvage_bytes(mutation.data, limits=limits)
            except Exception as exc:  # noqa: BLE001 - salvage must not raise
                outcome = "escaped"
                detail = f"salvage raised {exc!r}"
        result = FaultResult(mutation.name, outcome, detail, elapsed)
        report.total += 1
        report.slowest = max(report.slowest, elapsed)
        if outcome == "identical":
            report.identical += 1
        elif outcome == "detected":
            report.detected += 1
        if result.failed:
            report.failures.append(result)
    return report
