"""Seeded reader/writer race harness for the concurrent query plane.

The harness drives one writer thread (applying WAL-style contact batches
through :meth:`CompressedChronoGraph.apply_contacts`) against several
reader threads issuing point, batch and full-scan queries, and checks the
concurrency contract the library documents:

* **No torn records** -- every neighbor list is strictly increasing and
  every decoded contact run is (label, time)-sorted with aligned columns.
* **Overlay-read linearizability** -- each query's result must equal the
  reference model's answer at *some* overlay generation between the
  generation observed immediately before and immediately after the call;
  multi-result operations (``neighbors_many``, ``snapshot``) must match a
  *single* such generation, because they capture one snapshot.
* **Monotone counters** -- ``hits + misses``, ``invalidations`` and
  ``evictions`` never decrease, and the generation increases by exactly
  one per applied batch.

Everything is deterministic up to thread interleaving: the base graph, the
batches and each reader's operation mix derive from ``seed``.  Whatever
the interleaving, every invariant must hold; a violation is reported, not
raised, so CI output lists all failures of a run at once.

Run it from a checkout with::

    PYTHONPATH=src python -m pytest -q tests/test_concurrency.py

or directly::

    PYTHONPATH=src python -c "from repro.testing.races import run_race_smoke; print(run_race_smoke())"
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.encoder import compress
from repro.graph.builders import graph_from_contacts
from repro.graph.model import Contact, GraphKind

#: A reference-model row: (neighbor label, timestamp, duration).
_Row = Tuple[int, int, int]

#: Fixed window used by the snapshot checks (must be precomputed per
#: generation, so the harness pins one window for the whole run).
_SNAPSHOT_WINDOW = (0, 10_000_000)


@dataclasses.dataclass
class RaceReport:
    """Outcome of one :func:`run_race_smoke` run.

    ``violations`` holds one human-readable line per broken invariant;
    an empty list means the run passed.  The counters record how much
    concurrency the run actually exercised, so CI logs show that a green
    run was not vacuous.
    """

    readers: int
    writer_batches: int
    read_ops: int
    final_generation: int
    final_nodes: int
    duration_s: float
    violations: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held for the whole run."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable outcome."""
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        return (
            f"race smoke: {status}; {self.readers} readers x {self.read_ops} "
            f"ops vs {self.writer_batches} batches "
            f"(gen {self.final_generation}, {self.final_nodes} nodes, "
            f"{self.duration_s:.2f}s)"
        )


def _base_graph(num_nodes: int, base_contacts: int, seed: int):
    """A deterministic point graph with a mix of dense and sparse nodes."""
    rng = random.Random(seed)
    contacts = []
    for i in range(base_contacts):
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        t = rng.randrange(1, 5_000)
        contacts.append((u, v, t))
    return graph_from_contacts(GraphKind.POINT, contacts, num_nodes=num_nodes)


def _make_batches(
    num_nodes: int, batches: int, seed: int
) -> List[List[Contact]]:
    """Deterministic contact batches; some touch brand-new node labels."""
    rng = random.Random(seed + 1)
    out: List[List[Contact]] = []
    top = num_nodes - 1
    for _ in range(batches):
        batch: List[Contact] = []
        for _ in range(rng.randrange(1, 5)):
            if rng.random() < 0.1:
                u = top + 1  # grow the graph: the new-max-node bugfix path
            else:
                u = rng.randrange(top + 1)
            v = rng.randrange(top + 1)
            t = rng.randrange(1, 5_000)
            batch.append(Contact(u, v, t))
            top = max(top, u, v)
        out.append(batch)
    return out


def _build_model(
    graph, batches: Sequence[Sequence[Contact]]
) -> Tuple[List[Dict[int, Tuple[_Row, ...]]], List[int]]:
    """Per-generation reference state: node -> sorted (v, t, d) rows.

    Generation ``g`` reflects the base graph plus the first ``g`` batches.
    Dicts are copied per generation but row tuples are shared, so the
    model stays cheap for hundreds of generations.
    """
    state: Dict[int, Tuple[_Row, ...]] = {}
    for c in graph.contacts:
        state.setdefault(c.u, ())
        state[c.u] += ((c.v, c.time, c.duration),)
    state = {u: tuple(sorted(rows, key=lambda r: (r[0], r[1]))) for u, rows in state.items()}
    states = [dict(state)]
    nodes = [graph.num_nodes]
    top = graph.num_nodes - 1
    for batch in batches:
        state = dict(state)
        for c in batch:
            rows = list(state.get(c.u, ()))
            rows.append((c.v, c.time, c.duration))
            rows.sort(key=lambda r: (r[0], r[1]))
            state[c.u] = tuple(rows)
            top = max(top, c.u, c.v)
        states.append(state)
        nodes.append(top + 1)
    return states, nodes


def _expected_neighbors(
    state: Dict[int, Tuple[_Row, ...]], u: int, t0: int, t1: int
) -> List[int]:
    """Reference answer for a point-graph ``neighbors(u, t0, t1)``."""
    return sorted({v for v, t, _ in state.get(u, ()) if t0 <= t <= t1})


def _expected_snapshot(
    state: Dict[int, Tuple[_Row, ...]], num_nodes: int, t0: int, t1: int
) -> List[Tuple[int, int]]:
    """Reference answer for ``snapshot(t0, t1)`` in storage order."""
    edges: List[Tuple[int, int]] = []
    for u in range(num_nodes):
        for v in _expected_neighbors(state, u, t0, t1):
            edges.append((u, v))
    return edges


def run_race_smoke(
    *,
    num_nodes: int = 24,
    base_contacts: int = 300,
    batches: int = 200,
    readers: int = 4,
    seed: int = 0,
    cache_max_entries: Optional[int] = 16,
    max_violations: int = 20,
    min_reader_ops: int = 64,
    writer_pace_s: float = 0.0005,
) -> RaceReport:
    """Run the seeded reader/writer stress test; returns a :class:`RaceReport`.

    One writer applies ``batches`` contact batches while ``readers``
    threads hammer the query surface (``neighbors``, ``contacts_of``,
    ``distinct_neighbors``, ``neighbors_many``, ``snapshot`` /
    ``snapshot_parallel``) and verify every result against the
    per-generation reference model.  ``cache_max_entries`` defaults to a
    deliberately tight bound so eviction races are exercised too; pass
    ``None`` to lift it.  The run is bounded: it ends once the writer has
    applied every batch and each reader has done at least
    ``min_reader_ops`` operations.  ``writer_pace_s`` throttles the writer
    slightly so batches interleave with reads instead of racing ahead of
    them.
    """
    graph = _base_graph(num_nodes, base_contacts, seed)
    batch_list = _make_batches(num_nodes, batches, seed)
    states, nodes_per_gen = _build_model(graph, batch_list)
    cg = compress(graph)
    if cache_max_entries is not None:
        cg.configure_cache(max_entries=cache_max_entries)

    violations: List[str] = []
    vlock = threading.Lock()
    writer_done = threading.Event()
    read_ops = [0] * readers

    def report(msg: str) -> None:
        with vlock:
            if len(violations) < max_violations:
                violations.append(msg)

    def overloaded() -> bool:
        with vlock:
            return len(violations) >= max_violations

    t0, t1 = _SNAPSHOT_WINDOW
    snapshot_per_gen: Dict[int, List[Tuple[int, int]]] = {}

    def expected_snapshot(g: int) -> List[Tuple[int, int]]:
        got = snapshot_per_gen.get(g)
        if got is None:
            got = _expected_snapshot(states[g], nodes_per_gen[g], t0, t1)
            snapshot_per_gen[g] = got
        return got

    def writer() -> None:
        try:
            for i, batch in enumerate(batch_list):
                before = cg.overlay_generation
                applied = cg.apply_contacts(batch)
                after = cg.overlay_generation
                if applied != len(batch):
                    report(f"batch {i}: applied {applied} != {len(batch)}")
                if after != before + 1:
                    report(
                        f"batch {i}: generation {before} -> {after}, "
                        "expected +1"
                    )
                if overloaded():
                    return
                if writer_pace_s:
                    time.sleep(writer_pace_s)
        finally:
            writer_done.set()

    def check_sorted_distinct(tag: str, out: List[int]) -> None:
        if any(out[i] >= out[i + 1] for i in range(len(out) - 1)):
            report(f"{tag}: torn/unsorted neighbor list {out}")

    def reader(idx: int) -> None:
        rng = random.Random(seed + 100 + idx)
        last_lookups = -1
        last_invalidations = -1
        last_evictions = -1
        ops = 0
        while True:
            done = writer_done.is_set() and ops >= min_reader_ops
            if overloaded():
                break
            for _ in range(8):
                op = rng.random()
                g0 = cg.overlay_generation
                n_now = cg.num_nodes
                u = rng.randrange(n_now)
                if op < 0.45:
                    lo = rng.randrange(0, 5_000)
                    hi = lo + rng.randrange(0, 2_500)
                    out = cg.neighbors(u, lo, hi)
                    g1 = cg.overlay_generation
                    check_sorted_distinct(f"neighbors({u},{lo},{hi})", out)
                    if not any(
                        out == _expected_neighbors(states[g], u, lo, hi)
                        for g in range(g0, g1 + 1)
                    ):
                        report(
                            f"neighbors({u},{lo},{hi}) = {out} matches no "
                            f"generation in [{g0},{g1}]"
                        )
                elif op < 0.6:
                    rows = cg.contacts_of(u)
                    g1 = cg.overlay_generation
                    cols = sorted((c.v, c.time, c.duration) for c in rows)
                    if any(
                        (rows[i].v, rows[i].time)
                        > (rows[i + 1].v, rows[i + 1].time)
                        for i in range(len(rows) - 1)
                    ):
                        report(f"contacts_of({u}): rows out of order")
                    if not any(
                        cols == sorted(states[g].get(u, ()))
                        for g in range(g0, g1 + 1)
                    ):
                        report(
                            f"contacts_of({u}) matches no generation in "
                            f"[{g0},{g1}]"
                        )
                elif op < 0.72:
                    out = cg.distinct_neighbors(u)
                    g1 = cg.overlay_generation
                    check_sorted_distinct(f"distinct_neighbors({u})", out)
                    if not any(
                        out
                        == sorted({v for v, _, _ in states[g].get(u, ())})
                        for g in range(g0, g1 + 1)
                    ):
                        report(
                            f"distinct_neighbors({u}) matches no generation "
                            f"in [{g0},{g1}]"
                        )
                elif op < 0.9:
                    qs = []
                    for _ in range(rng.randrange(2, 7)):
                        lo = rng.randrange(0, 5_000)
                        qs.append(
                            (rng.randrange(n_now), lo, lo + rng.randrange(0, 2_500))
                        )
                    outs = cg.neighbors_many(qs, workers=2)
                    g1 = cg.overlay_generation
                    for (qu, qlo, qhi), out in zip(qs, outs):
                        check_sorted_distinct(
                            f"neighbors_many({qu},{qlo},{qhi})", out
                        )
                    if not any(
                        all(
                            out == _expected_neighbors(states[g], qu, qlo, qhi)
                            for (qu, qlo, qhi), out in zip(qs, outs)
                        )
                        for g in range(g0, g1 + 1)
                    ):
                        report(
                            f"neighbors_many batch matches no single "
                            f"generation in [{g0},{g1}]"
                        )
                else:
                    if rng.random() < 0.5:
                        edges = cg.snapshot(t0, t1)
                    else:
                        edges = cg.snapshot_parallel(t0, t1, workers=2)
                    g1 = cg.overlay_generation
                    if not any(
                        edges == expected_snapshot(g)
                        for g in range(g0, g1 + 1)
                    ):
                        report(
                            f"snapshot matches no single generation in "
                            f"[{g0},{g1}]"
                        )
                ops += 1
            stats = cg.cache_stats()
            lookups = stats["hits"] + stats["misses"]
            if lookups < last_lookups:
                report(
                    f"hit+miss went backwards: {last_lookups} -> {lookups}"
                )
            if stats["invalidations"] < last_invalidations:
                report(
                    "invalidations went backwards: "
                    f"{last_invalidations} -> {stats['invalidations']}"
                )
            if stats["evictions"] < last_evictions:
                report(
                    "evictions went backwards: "
                    f"{last_evictions} -> {stats['evictions']}"
                )
            last_lookups = lookups
            last_invalidations = stats["invalidations"]
            last_evictions = stats["evictions"]
            if done:
                break
        read_ops[idx] = ops

    started = time.monotonic()
    threads = [threading.Thread(target=writer, name="race-writer")]
    threads += [
        threading.Thread(target=reader, args=(i,), name=f"race-reader-{i}")
        for i in range(readers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.monotonic() - started

    # Quiescent final check: the overlay must be fully and exactly visible.
    final_gen = cg.overlay_generation
    if final_gen != len(batch_list) and not violations:
        violations.append(
            f"final generation {final_gen} != {len(batch_list)}"
        )
    final_state = states[final_gen] if final_gen < len(states) else states[-1]
    final_nodes = nodes_per_gen[final_gen] if final_gen < len(nodes_per_gen) else nodes_per_gen[-1]
    if cg.num_nodes != final_nodes:
        violations.append(
            f"final num_nodes {cg.num_nodes} != expected {final_nodes}"
        )
    for u in range(min(cg.num_nodes, final_nodes)):
        got = sorted((c.v, c.time, c.duration) for c in cg.contacts_of(u))
        want = sorted(final_state.get(u, ()))
        if got != want:
            violations.append(f"final contacts of node {u} diverged")
            break

    return RaceReport(
        readers=readers,
        writer_batches=len(batch_list),
        read_ops=sum(read_ops),
        final_generation=final_gen,
        final_nodes=cg.num_nodes,
        duration_s=duration,
        violations=violations,
    )


def run_sanitized_race_smoke(**kwargs: object) -> Tuple[RaceReport, "object"]:
    """Run :func:`run_race_smoke` under the reprosan lock sanitizer.

    Installs :func:`repro.testing.sanitizer.sanitized` around the whole
    smoke run (so every lock the compressed graph creates is wrapped),
    then returns ``(race_report, sanitizer_report)``.  A fully healthy
    run has ``race_report.ok`` and ``sanitizer_report.ok`` both true --
    no invariant violations, no lock-order inversions and no blocking
    decode/filesystem work inside a governed critical section.
    """
    from repro.testing.sanitizer import sanitized

    with sanitized() as san:
        report = run_race_smoke(**kwargs)  # type: ignore[arg-type]
    return report, san.report()
