"""Interop with the scientific Python ecosystem.

Temporal-graph analyses frequently hand a *snapshot* to existing tooling --
networkx for graph algorithms, numpy for linear-algebra methods.  These
adapters extract a window view from anything exposing ``num_nodes`` and
``neighbors(u, t_start, t_end)`` (compressed or not) without materialising
more than the snapshot itself.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np


def to_networkx(
    graph,
    t_start: int,
    t_end: int,
    *,
    undirected: bool = False,
) -> "nx.Graph":
    """The window snapshot as a networkx (Di)Graph.

    Nodes are ``range(num_nodes)``; an edge (u, v) is present iff it is
    active anywhere within the inclusive window.
    """
    out = nx.Graph() if undirected else nx.DiGraph()
    out.add_nodes_from(range(graph.num_nodes))
    for u in range(graph.num_nodes):
        for v in graph.neighbors(u, t_start, t_end):
            out.add_edge(u, v)
    return out


def to_adjacency_matrix(
    graph,
    t_start: int,
    t_end: int,
    *,
    dtype=np.uint8,
) -> "np.ndarray":
    """The window snapshot as a dense 0/1 adjacency matrix.

    Suitable for small windows and spectral methods; for large graphs
    prefer :func:`to_networkx`, which stays sparse.
    """
    n = graph.num_nodes
    matrix = np.zeros((n, n), dtype=dtype)
    for u in range(n):
        for v in graph.neighbors(u, t_start, t_end):
            matrix[u, v] = 1
    return matrix


def snapshot_series(
    graph,
    t_start: int,
    t_end: int,
    width: int,
    *,
    undirected: bool = False,
):
    """Yield (window start, networkx snapshot) over tumbling windows."""
    from repro.graph.windows import sliding_windows

    for w_start, w_end in sliding_windows(t_start, t_end, width):
        yield w_start, to_networkx(graph, w_start, w_end, undirected=undirected)


def degree_matrix_series(
    graph,
    t_start: int,
    t_end: int,
    width: int,
) -> "np.ndarray":
    """Out-degree per node per window as a (windows, nodes) numpy array."""
    from repro.graph.windows import sliding_windows

    windows = list(sliding_windows(t_start, t_end, width))
    out = np.zeros((len(windows), graph.num_nodes), dtype=np.int64)
    for i, (w_start, w_end) in enumerate(windows):
        for u in range(graph.num_nodes):
            out[i, u] = len(graph.neighbors(u, w_start, w_end))
    return out
