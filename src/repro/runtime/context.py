"""Deadlines, cooperative cancellation and decode-work budgets for queries.

A :class:`QueryContext` is the per-query resource envelope: a wall-clock
:class:`Deadline`, a cooperative cancel flag and an optional decode-work
budget, all checked at cheap *checkpoints* sprinkled through the query
paths.  Every :class:`repro.core.compressed.CompressedChronoGraph` and
:class:`repro.storage.segments.SegmentedChronoGraph` query entry point
accepts ``ctx=``; inside, the context is *activated* (installed in a
thread-local) so that even the innermost bulk-decode loops in
:mod:`repro.bits.codes` / :mod:`repro.bits.vectorized` -- which cannot
take parameters without breaking their byte-exact signatures -- can poll
it through the :data:`repro.bits.kernels.CheckpointHook` this module
registers while any context is active (and removes when the last one
deactivates, so un-governed queries pay nothing for the machinery).

Checkpoints raise the typed interruption branch of the taxonomy
(:class:`repro.errors.QueryTimeout`, :class:`repro.errors.QueryCancelled`,
:class:`repro.errors.QueryBudgetExceeded`).  Interruption is always safe:
reader cursors are locals that die with the query, and caches only ever
ingest *completed* record decodes, so an interrupted query leaves the
graph exactly as it found it.

The clock is injectable everywhere so tests (and the chaos harness in
:mod:`repro.testing.faults`) can prove deadline behaviour without real
sleeping.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    ContextManager,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.bits import kernels
from repro.errors import (
    DomainError,
    QueryBudgetExceeded,
    QueryCancelled,
    QueryTimeout,
)

__all__ = [
    "DEFAULT_CHECKPOINT_CODES",
    "Deadline",
    "SkippedPart",
    "QueryContext",
    "current_context",
    "activate",
    "resolve_context",
    "query_scope",
    "checkpoint_ambient",
]

#: Default decode chunk stride, in codes, between ambient checkpoints.
#: Bulk readers split runs longer than this so even a single huge node
#: decode polls its context every few thousand codes -- the "checkpoint
#: granularity" term in the latency envelope.
DEFAULT_CHECKPOINT_CODES = 4096


class Deadline:
    """A wall-clock budget measured against an injectable monotonic clock.

    ``Deadline(0.1)`` expires 100 ms after construction.  ``remaining()``
    may go negative; ``expired()`` is the boolean the checkpoints consult.
    """

    __slots__ = ("budget", "_clock", "_started")

    def __init__(
        self, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        """Start a budget of ``seconds`` on ``clock`` (monotonic seconds)."""
        if seconds < 0:
            raise DomainError(f"deadline budget must be >= 0, got {seconds}")
        self.budget = float(seconds)
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        """Seconds consumed since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        """Whether the budget has been fully consumed."""
        return self.elapsed() >= self.budget

    def __repr__(self) -> str:
        """Budget and remaining time, for logs and test failures."""
        return f"Deadline(budget={self.budget!r}, remaining={self.remaining()!r})"


@dataclass(frozen=True)
class SkippedPart:
    """Annotation for a query part skipped under ``allow_partial``.

    ``part`` is the segment (or part) name, ``reason`` a short
    human-readable explanation (breaker state or the triggering error),
    and ``retry_after`` the breaker's backoff hint in seconds when known.
    A query whose context carries any of these returned a *reported
    subset* -- correct on every part it did cover, never silently wrong.
    """

    part: str
    reason: str
    retry_after: Optional[float] = None


class QueryContext:
    """The per-query resource envelope threaded through the query plane.

    Combines an optional wall-clock :class:`Deadline` (or the ``timeout``
    convenience that builds one), a cooperative cancel flag, an optional
    decode-work budget (in codes decoded), partial-answer consent
    (``allow_partial``) for segmented queries over tripped segments, an
    optional tenant tag plus governor for admission control, and the
    checkpoint stride.  A context is intended for a single logical query
    (or batch); reuse accumulates work against the same budgets.

    Thread-safety: ``cancel()`` may be called from any thread; work
    charging from parallel workers is best-effort under the GIL (a lost
    increment can only *under*-count, never corrupt).
    """

    __slots__ = (
        "deadline",
        "decode_budget",
        "allow_partial",
        "tenant",
        "governor",
        "checkpoint_codes",
        "_cancelled",
        "_work",
        "_skipped",
        "_skip_lock",
        "_admitted",
    )

    def __init__(
        self,
        *,
        deadline: Optional[Deadline] = None,
        timeout: Optional[float] = None,
        decode_budget: Optional[int] = None,
        allow_partial: bool = False,
        tenant: Optional[str] = None,
        governor: Optional[Any] = None,
        clock: Callable[[], float] = time.monotonic,
        checkpoint_codes: int = DEFAULT_CHECKPOINT_CODES,
    ) -> None:
        """Build the envelope; ``timeout`` is sugar for ``Deadline(timeout, clock=clock)``."""
        if timeout is not None:
            if deadline is not None:
                raise DomainError("pass either deadline or timeout, not both")
            deadline = Deadline(timeout, clock=clock)
        if decode_budget is not None and decode_budget < 0:
            raise DomainError(
                f"decode_budget must be >= 0, got {decode_budget}"
            )
        if checkpoint_codes < 1:
            raise DomainError(
                f"checkpoint_codes must be >= 1, got {checkpoint_codes}"
            )
        self.deadline = deadline
        self.decode_budget = decode_budget
        self.allow_partial = allow_partial
        self.tenant = tenant
        self.governor = governor
        self.checkpoint_codes = int(checkpoint_codes)
        self._cancelled = False
        self._work = 0
        self._skipped: List[SkippedPart] = []
        self._skip_lock = threading.Lock()
        self._admitted = False

    # -- cooperative interruption -------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation (observed at the next checkpoint)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def work_done(self) -> int:
        """Decode-work units charged so far (roughly, codes decoded)."""
        return self._work

    def checkpoint(self, work: int = 0) -> None:
        """Charge ``work`` decode units and raise if the envelope says stop.

        The poll order is: cancel flag (no syscall), decode budget (int
        compare), deadline (one clock read).  Raises
        :class:`repro.errors.QueryCancelled`,
        :class:`repro.errors.QueryBudgetExceeded` or
        :class:`repro.errors.QueryTimeout` accordingly; returns normally
        when the query may continue.
        """
        if self._cancelled:
            raise QueryCancelled("query cancelled by caller")
        if work:
            self._work += work
            budget = self.decode_budget
            if budget is not None and self._work > budget:
                raise QueryBudgetExceeded(
                    f"decode-work budget exhausted: {self._work} > {budget}",
                    budget=budget,
                    spent=self._work,
                )
        deadline = self.deadline
        if deadline is not None and deadline.expired():
            raise QueryTimeout(
                f"query deadline of {deadline.budget:.6g}s exceeded "
                f"after {deadline.elapsed():.6g}s",
                budget=deadline.budget,
                elapsed=deadline.elapsed(),
            )

    # -- partial-answer annotations -----------------------------------

    def note_skip(
        self, part: str, reason: str, *, retry_after: Optional[float] = None
    ) -> None:
        """Record that ``part`` was skipped (partial answer) and why."""
        with self._skip_lock:
            self._skipped.append(
                SkippedPart(part=part, reason=reason, retry_after=retry_after)
            )

    @property
    def skipped(self) -> Tuple[SkippedPart, ...]:
        """Parts skipped so far; empty means the answer was complete."""
        with self._skip_lock:
            return tuple(self._skipped)

    @property
    def complete(self) -> bool:
        """Whether no part has been skipped (the answer covers everything)."""
        with self._skip_lock:
            return not self._skipped

    def __repr__(self) -> str:
        """Envelope summary, for logs and test failures."""
        return (
            f"QueryContext(deadline={self.deadline!r}, "
            f"decode_budget={self.decode_budget!r}, "
            f"allow_partial={self.allow_partial!r}, tenant={self.tenant!r}, "
            f"work_done={self._work}, cancelled={self._cancelled}, "
            f"skipped={len(self._skipped)})"
        )


# -- ambient activation ------------------------------------------------

_active = threading.local()


def current_context() -> Optional[QueryContext]:
    """The context active on this thread, or ``None``.

    Set by :func:`activate` / :func:`query_scope`; consulted by the bulk
    decode checkpoint hook and by entry points called without an explicit
    ``ctx`` from inside an already-activated query.
    """
    return getattr(_active, "ctx", None)


def resolve_context(ctx: Optional[QueryContext]) -> Optional[QueryContext]:
    """An explicit ``ctx`` if given, else the thread's ambient context."""
    return ctx if ctx is not None else current_context()


class _NullScope:
    """The shared no-op scope behind ``activate(None)``/``query_scope(None)``.

    A plain class, not a ``contextmanager`` generator: the un-governed
    query path enters one of these per call, and a generator frame costs
    ~5x more than this enter/exit pair (measured on the ``has_edge`` /
    ``neighbors`` perf gates).
    """

    __slots__ = ()

    def __enter__(self) -> Optional[QueryContext]:
        """No context: the block runs un-governed."""
        return None

    def __exit__(self, *exc: object) -> bool:
        """Nothing to restore; never swallows exceptions."""
        return False


_NULL_SCOPE = _NullScope()

#: Number of live activations across all threads; while non-zero the
#: decode checkpoint hook is installed in :mod:`repro.bits.kernels`.
_hook_holds = 0
_hook_lock = threading.Lock()


def _retain_hook() -> None:
    global _hook_holds
    with _hook_lock:
        _hook_holds += 1
        if kernels.get_checkpoint_hook() is None:
            kernels.set_checkpoint_hook(_decode_checkpoint)


def _release_hook() -> None:
    global _hook_holds
    with _hook_lock:
        _hook_holds -= 1
        # Leave a foreign (test-installed) hook alone on the way out.
        if _hook_holds == 0 and kernels.get_checkpoint_hook() is _decode_checkpoint:
            kernels.set_checkpoint_hook(None)


class _Activation:
    """One thread's ambient-context installation (see :func:`activate`)."""

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: QueryContext) -> None:
        self._ctx = ctx
        self._prev: Optional[QueryContext] = None

    def __enter__(self) -> QueryContext:
        """Install the context and pin the decode checkpoint hook."""
        self._prev = getattr(_active, "ctx", None)
        _active.ctx = self._ctx
        _retain_hook()
        return self._ctx

    def __exit__(self, *exc: object) -> bool:
        """Restore the previous ambient context; never swallows."""
        _release_hook()
        _active.ctx = self._prev
        return False


def activate(ctx: Optional[QueryContext]) -> ContextManager[Optional[QueryContext]]:
    """Install ``ctx`` as this thread's ambient context for the block.

    ``activate(None)`` is a no-op (the ambient context, if any, stays).
    Nesting restores the previous context on exit.  Worker threads do not
    inherit the parent's ambient context automatically -- parallel query
    paths re-activate the context inside each task.  While at least one
    activation is live (any thread), the decode checkpoint hook is
    installed in :mod:`repro.bits.kernels`; the rest of the time the bulk
    readers see ``None`` and skip the ambient poll entirely.
    """
    if ctx is None:
        return _NULL_SCOPE
    return _Activation(ctx)


@contextmanager
def _admission(ctx: QueryContext) -> Iterator[None]:
    """Hold a governor admission slot for the outermost query scope.

    Re-entrant per context: the first scope to see the context acquires
    the slot, nested scopes (segment parts, parallel partitions) ride
    along without double-counting.
    """
    governor = ctx.governor
    if governor is None or ctx._admitted:
        yield
        return
    with governor.admit(tenant=ctx.tenant):
        ctx._admitted = True
        try:
            yield
        finally:
            ctx._admitted = False


def query_scope(ctx: Optional[QueryContext]) -> ContextManager[Optional[QueryContext]]:
    """Enter a query under ``ctx``: admission, activation, entry poll.

    The single helper every query entry point wraps its body in.  ``None``
    is the near-zero-overhead path (a shared no-op scope: no clock read,
    no thread-local write, no generator frame).  Otherwise: poll once up
    front (an already-expired deadline fails before any decode work),
    acquire the governor slot if the context carries one (outermost scope
    only, so nested part queries never double-admit), and activate the
    context so the decode layer's checkpoint hook sees it.
    """
    if ctx is None:
        return _NULL_SCOPE
    return _active_scope(ctx)


@contextmanager
def _active_scope(ctx: QueryContext) -> Iterator[QueryContext]:
    """The governed arm of :func:`query_scope`: poll, admit, activate."""
    ctx.checkpoint()
    with _admission(ctx):
        with activate(ctx):
            yield ctx


def checkpoint_ambient(work: int = 0) -> None:
    """Poll this thread's ambient context, if any (no-op un-governed).

    The explicit poll for pure-Python query loops that never route
    through a bulk reader (and therefore never hit the decode checkpoint
    hook): walk frontiers, cache scans, segment iteration.  Costs one
    thread-local read when no context is active, so hot loops may call it
    unconditionally.  CG007 (checkpoint coverage) accepts this call as a
    poll.
    """
    ctx = getattr(_active, "ctx", None)
    if ctx is not None:
        ctx.checkpoint(work)


def _decode_checkpoint(work: int) -> int:
    """The :data:`repro.bits.kernels.CheckpointHook` bridging bits to here.

    Charges ``work`` against this thread's ambient context and returns
    the context's chunk stride, or ``0`` when no context is active (the
    bulk readers then take their unchunked fast path).
    """
    ctx = getattr(_active, "ctx", None)
    if ctx is None:
        return 0
    ctx.checkpoint(work)
    return ctx.checkpoint_codes
