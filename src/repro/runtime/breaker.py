"""Per-segment circuit breakers: trip on repeated failure, probe on backoff.

A :class:`CircuitBreaker` guards one query part (a segment of the
segmented store).  It is *closed* (traffic flows) until
``failure_threshold`` consecutive failures trip it *open*; while open,
callers skip the part -- annotating the answer as a reported subset when
the query consents to partial answers -- until an exponential backoff
elapses, at which point exactly one caller is admitted as a *half-open*
probe.  A successful probe closes the breaker; a failed probe re-opens it
with a longer backoff.

The backoff schedule reuses :class:`repro.storage.atomic.RetryPolicy` --
the same ``base_delay`` doubling and jitter the atomic writer uses for
transient OS errors, here spread across trips instead of attempts (with
``max_elapsed``, when set, capping a single backoff interval).  Clocks
and randomness are injectable so schedules are exactly testable.

:class:`BreakerBoard` is the named collection
(:class:`repro.storage.segments.SegmentStore` keeps one per store, so
breaker state survives the view swaps that follow seals and
compactions).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import DomainError
from repro.storage.atomic import RetryPolicy

__all__ = [
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_MAX_BACKOFF",
    "CircuitBreaker",
    "BreakerBoard",
]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

#: Consecutive failures before a closed breaker trips open.
DEFAULT_FAILURE_THRESHOLD = 3

#: Hard ceiling, in seconds, on a single backoff interval.
DEFAULT_MAX_BACKOFF = 60.0

#: Exponent cap so ``2 ** trips`` can never overflow into silly floats.
_MAX_EXPONENT = 16


def _default_retry() -> RetryPolicy:
    """The breaker's default backoff schedule: 0.25s doubling, 25% jitter."""
    return RetryPolicy(base_delay=0.25, jitter=0.25)


class CircuitBreaker:
    """One part's failure isolator: closed -> open -> half-open -> closed.

    All transitions happen under an internal lock; :meth:`allow` is the
    only method that moves time forward (open -> half-open when the
    backoff has elapsed), so health snapshots never mutate state.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        retry: Optional[RetryPolicy] = None,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Configure the trip threshold and the reopening backoff schedule."""
        if failure_threshold < 1:
            raise DomainError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if max_backoff <= 0:
            raise DomainError(f"max_backoff must be > 0, got {max_backoff}")
        self._threshold = failure_threshold
        self._retry = retry if retry is not None else _default_retry()
        self._max_backoff = max_backoff
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive = 0
        self._trips = 0
        self._streak = 0
        self._opened_at = 0.0
        self._backoff = 0.0
        self._probing = False
        self._last_reason: Optional[str] = None

    def _backoff_for_streak_locked(self) -> float:
        exponent = min(self._streak - 1, _MAX_EXPONENT)
        delay = self._retry.base_delay * (2.0 ** exponent)
        delay = self._retry._next_delay(delay)
        cap = self._max_backoff
        if self._retry.max_elapsed is not None:
            cap = min(cap, self._retry.max_elapsed)
        return min(delay, cap)

    def _trip_locked(self, reason: str) -> None:
        self._state = STATE_OPEN
        self._trips += 1
        self._streak += 1
        self._opened_at = self._clock()
        self._backoff = self._backoff_for_streak_locked()
        self._probing = False
        self._last_reason = reason

    def allow(self) -> bool:
        """Whether a caller may query the guarded part right now.

        Closed: always.  Open: only once the backoff has elapsed, and
        then the caller becomes the single half-open probe.  Half-open:
        only if no probe is already in flight.  The caller must report
        the attempt's outcome via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            state = self._state
            if state == STATE_CLOSED:
                return True
            if state == STATE_OPEN:
                if self._clock() - self._opened_at < self._backoff:
                    return False
                self._state = STATE_HALF_OPEN
                self._probing = True
                return True
            # Half-open: admit a single probe at a time.
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """Report a successful query of the part: close and reset."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive = 0
            self._streak = 0
            self._backoff = 0.0
            self._probing = False

    def record_failure(self, reason: str) -> None:
        """Report a failed query of the part; may trip the breaker open.

        A half-open probe failure re-opens immediately (with a longer
        backoff); a closed breaker trips after ``failure_threshold``
        consecutive failures.
        """
        with self._lock:
            self._consecutive += 1
            self._last_reason = reason
            state = self._state
            if state == STATE_HALF_OPEN:
                self._trip_locked(reason)
            elif state == STATE_CLOSED and (
                self._consecutive >= self._threshold
            ):
                self._trip_locked(reason)

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open`` or ``half_open``."""
        with self._lock:
            return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker would admit a probe (0 when ready)."""
        with self._lock:
            if self._state != STATE_OPEN:
                return 0.0
            remaining = self._opened_at + self._backoff - self._clock()
            return max(0.0, remaining)

    def snapshot(self) -> Dict[str, object]:
        """Machine-readable state for health reports and ``status --json``."""
        with self._lock:
            state = self._state
            if state == STATE_OPEN:
                remaining = max(
                    0.0, self._opened_at + self._backoff - self._clock()
                )
            else:
                remaining = 0.0
            return {
                "state": state,
                "consecutive_failures": self._consecutive,
                "trips": self._trips,
                "retry_after": round(remaining, 6),
                "last_reason": self._last_reason,
            }

    def __repr__(self) -> str:
        """State and trip count, for logs and test failures."""
        with self._lock:
            return (
                f"CircuitBreaker(state={self._state!r}, "
                f"failures={self._consecutive}, trips={self._trips})"
            )


class BreakerBoard:
    """A named collection of breakers sharing one configuration.

    Breakers are created on first :meth:`get` and live for the board's
    lifetime -- in the segmented store, the board belongs to the
    :class:`~repro.storage.segments.SegmentStore`, so a segment's breaker
    state survives the query-view rebuilds that follow seals and
    compactions (a tripped segment stays tripped until its probe
    succeeds, even across a manifest swap).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        retry: Optional[RetryPolicy] = None,
        max_backoff: float = DEFAULT_MAX_BACKOFF,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Store the configuration every created breaker will share."""
        self._failure_threshold = failure_threshold
        self._retry = retry
        self._max_backoff = max_backoff
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> CircuitBreaker:
        """The breaker for ``name``, created (closed) on first use."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    failure_threshold=self._failure_threshold,
                    retry=self._retry,
                    max_backoff=self._max_backoff,
                    clock=self._clock,
                )
                self._breakers[name] = breaker
            return breaker

    def peek(self, name: str) -> Optional[CircuitBreaker]:
        """The breaker for ``name`` if one exists, without creating it."""
        with self._lock:
            return self._breakers.get(name)

    def states(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every created breaker, keyed by part name."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot() for name, breaker in breakers.items()}

    def open_count(self) -> int:
        """How many breakers are currently open (tripped)."""
        with self._lock:
            breakers = list(self._breakers.values())
        return sum(1 for breaker in breakers if breaker.state == STATE_OPEN)

    def __len__(self) -> int:
        """Number of breakers created so far."""
        with self._lock:
            return len(self._breakers)
