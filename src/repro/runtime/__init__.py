"""Query-runtime governance: deadlines, admission control, circuit breakers.

The resource-governance layer that turns the library into something a
long-lived serving fleet can run: every query gets a bounded latency
envelope, overload is shed before it runs, and a failing segment is
isolated instead of wedging every query that overlaps it.

* :mod:`repro.runtime.context` -- :class:`Deadline` / :class:`QueryContext`
  (wall-clock budget, cooperative cancel flag, decode-work budget),
  accepted by every query entry point and polled by cheap checkpoints
  down to the bulk-decode loops, raising the typed
  :class:`repro.errors.QueryTimeout` / :class:`repro.errors.QueryCancelled`
  / :class:`repro.errors.QueryBudgetExceeded` branch.
* :mod:`repro.runtime.governor` -- the admission controller: a
  concurrent-query cap, per-tenant token budgets and load shedding
  (:class:`repro.errors.RejectedError` with a retry-after hint), plus the
  one bounded shared pool behind ``neighbors_many``/``snapshot_parallel``.
* :mod:`repro.runtime.breaker` -- per-segment circuit breakers for
  :class:`repro.storage.segments.SegmentedChronoGraph`: repeated
  CRC/decode failure trips a segment open, queries skip it with a
  partial-answer annotation (reported subset, never silently wrong), and
  it half-opens on a :class:`repro.storage.atomic.RetryPolicy` backoff.
"""

from repro.runtime.breaker import (
    BreakerBoard,
    CircuitBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.runtime.context import (
    DEFAULT_CHECKPOINT_CODES,
    Deadline,
    QueryContext,
    SkippedPart,
    activate,
    current_context,
    query_scope,
    resolve_context,
)
from repro.runtime.governor import (
    Governor,
    TokenBucket,
    default_governor,
    set_default_governor,
)

__all__ = [
    "Deadline",
    "QueryContext",
    "SkippedPart",
    "DEFAULT_CHECKPOINT_CODES",
    "current_context",
    "resolve_context",
    "activate",
    "query_scope",
    "Governor",
    "TokenBucket",
    "default_governor",
    "set_default_governor",
    "CircuitBreaker",
    "BreakerBoard",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
]
