"""Admission control: concurrency caps, tenant token budgets, shared pools.

The :class:`Governor` is the load-shedding front door of the query plane.
It enforces a concurrent-query cap and optional per-tenant token budgets
-- rejecting excess work *before* it runs with a structured
:class:`repro.errors.RejectedError` (retry-after hint included) -- and
owns one bounded, shared :class:`~concurrent.futures.ThreadPoolExecutor`
that the batch query paths (``neighbors_many``/``snapshot_parallel``)
submit to instead of each spinning up an unbounded pool per call.

A query opts in by carrying a governor on its
:class:`repro.runtime.context.QueryContext`; admission is taken once per
context at the outermost :func:`repro.runtime.context.query_scope`, so
segmented queries fanning out over parts never double-count.  The batch
paths always use the (default) governor's pool for their fan-out, even
without a context, so a process can no longer accumulate one transient
pool per in-flight batch call.

Clocks are injectable throughout so token-bucket refill and retry-after
hints are testable without sleeping.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, TypeVar

from repro.errors import DomainError, RejectedError

__all__ = [
    "DEFAULT_MAX_CONCURRENT",
    "DEFAULT_RETRY_AFTER",
    "TokenBucket",
    "Governor",
    "default_governor",
    "set_default_governor",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Default concurrent-query cap: generous enough that only genuine
#: overload (or a deliberate test) trips it, small enough to bound a
#: worker's memory and thread pressure.
DEFAULT_MAX_CONCURRENT = 64

#: Default retry-after hint, in seconds, for concurrency rejections
#: (token rejections compute the exact refill time instead).
DEFAULT_RETRY_AFTER = 0.05


def _default_max_workers() -> int:
    """Pool size bound mirroring the stdlib's ThreadPoolExecutor default."""
    return min(32, 4 * (os.cpu_count() or 2))


class TokenBucket:
    """A refilling token bucket with an injectable clock.

    Tokens accrue continuously at ``rate`` per second up to ``burst``.
    :meth:`try_take` either grants immediately or reports how long until
    the requested tokens would accrue -- it never blocks, matching the
    governor's shed-don't-queue policy.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create a bucket refilling at ``rate``/s, holding at most ``burst``."""
        if rate <= 0:
            raise DomainError(f"token rate must be > 0, got {rate}")
        if burst <= 0:
            raise DomainError(f"token burst must be > 0, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available, returning ``0.0``.

        When not available, takes nothing and returns the seconds until
        the shortfall would refill -- the governor's retry-after hint.
        """
        if tokens <= 0:
            raise DomainError(f"tokens must be > 0, got {tokens}")
        with self._lock:
            self._refill_locked()
            if tokens <= self._tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate

    def available(self) -> float:
        """Current token balance (after refill), for stats output."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class Governor:
    """Concurrency cap + tenant token budgets + one bounded shared pool.

    ``max_concurrent`` bounds admitted queries in flight;
    ``tenant_rate``/``tenant_burst`` (both or neither) switch on
    per-tenant token budgets, with queries that carry no tenant sharing
    one anonymous bucket; ``max_workers`` bounds the shared fan-out pool
    used by :meth:`run_parallel`.  All rejection is immediate and carries
    a structured retry-after -- the governor sheds, it never queues.
    """

    def __init__(
        self,
        *,
        max_concurrent: int = DEFAULT_MAX_CONCURRENT,
        max_workers: Optional[int] = None,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        retry_after: float = DEFAULT_RETRY_AFTER,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Configure caps and budgets; the pool itself is created lazily."""
        if max_concurrent < 1:
            raise DomainError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if (tenant_rate is None) != (tenant_burst is None):
            raise DomainError(
                "tenant_rate and tenant_burst must be set together"
            )
        if max_workers is None:
            max_workers = _default_max_workers()
        if max_workers < 1:
            raise DomainError(f"max_workers must be >= 1, got {max_workers}")
        self.max_concurrent = max_concurrent
        self.max_workers = max_workers
        self.retry_after = retry_after
        self._tenant_rate = tenant_rate
        self._tenant_burst = tenant_burst
        self._clock = clock
        self._lock = threading.Lock()
        self._in_flight = 0
        self._peak_in_flight = 0
        self._admitted = 0
        self._rejected = 0
        self._rejected_by_reason: Dict[str, int] = {}
        self._buckets: Dict[str, TokenBucket] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._thread_prefix = f"repro-governor-{id(self):x}"

    # -- admission -----------------------------------------------------

    def _reject_locked(self, exc: RejectedError) -> None:
        self._rejected += 1
        reason = exc.reason or "unknown"
        self._rejected_by_reason[reason] = (
            self._rejected_by_reason.get(reason, 0) + 1
        )
        raise exc

    @contextmanager
    def admit(
        self, *, tenant: Optional[str] = None, cost: float = 1.0
    ) -> Iterator[None]:
        """Hold one admission slot for the duration of the block.

        Raises :class:`repro.errors.RejectedError` -- with ``reason``
        ``"concurrency"`` (cap reached; ``retry_after`` is the configured
        hint) or ``"tenant-tokens"`` (budget empty; ``retry_after`` is
        the exact refill time) -- instead of queueing.  On success the
        slot is released when the block exits, however it exits.
        """
        with self._lock:
            if self._in_flight >= self.max_concurrent:
                self._reject_locked(
                    RejectedError(
                        f"governor at capacity: {self._in_flight} queries "
                        f"in flight (cap {self.max_concurrent})",
                        retry_after=self.retry_after,
                        reason="concurrency",
                        in_flight=self._in_flight,
                        limit=self.max_concurrent,
                    )
                )
            if self._tenant_rate is not None:
                key = tenant if tenant is not None else "(anonymous)"
                bucket = self._buckets.get(key)
                if bucket is None:
                    assert self._tenant_burst is not None
                    bucket = TokenBucket(
                        self._tenant_rate,
                        self._tenant_burst,
                        clock=self._clock,
                    )
                    self._buckets[key] = bucket
                wait = bucket.try_take(cost)
                if wait > 0.0:
                    self._reject_locked(
                        RejectedError(
                            f"tenant {key!r} out of query tokens; "
                            f"retry in {wait:.3g}s",
                            retry_after=wait,
                            reason="tenant-tokens",
                            in_flight=self._in_flight,
                            limit=self.max_concurrent,
                        )
                    )
            self._in_flight += 1
            self._admitted += 1
            if self._in_flight > self._peak_in_flight:
                self._peak_in_flight = self._in_flight
        try:
            yield
        finally:
            with self._lock:
                self._in_flight -= 1

    # -- the shared bounded pool --------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self._thread_prefix,
                )
            return self._pool

    def _in_pool_thread(self) -> bool:
        return threading.current_thread().name.startswith(self._thread_prefix)

    def run_parallel(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        workers: Optional[int] = None,
    ) -> List[_R]:
        """Map ``fn`` over ``items`` on the shared bounded pool, in order.

        Replaces the historical one-transient-``ThreadPoolExecutor``-per-
        call fan-out: total decode concurrency is bounded by
        ``max_workers`` no matter how many batch queries are in flight.
        ``workers`` is a per-call hint capped by the pool size;
        ``workers=1`` (or a single item) runs serially inline, and calls
        arriving *from* one of the pool's own threads also run inline so
        nested fan-out can never deadlock the pool against itself.
        Exceptions from ``fn`` propagate to the caller.
        """
        todo = list(items)
        if not todo:
            return []
        limit = (
            self.max_workers
            if workers is None
            else max(1, min(workers, self.max_workers))
        )
        if limit <= 1 or len(todo) == 1 or self._in_pool_thread():
            return [fn(item) for item in todo]
        pool = self._ensure_pool()
        return list(pool.map(fn, todo))

    def shutdown(self) -> None:
        """Tear down the shared pool (a later call re-creates it lazily)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- introspection -------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Machine-readable counters for ``status --json`` and tests.

        Includes the caps, live/peak in-flight counts, admitted/rejected
        totals (rejections broken down by reason) and per-tenant token
        balances when budgets are enabled.
        """
        with self._lock:
            tenants = {
                key: round(bucket.available(), 3)
                for key, bucket in self._buckets.items()
            }
            return {
                "max_concurrent": self.max_concurrent,
                "max_workers": self.max_workers,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak_in_flight,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "rejected_by_reason": dict(self._rejected_by_reason),
                "pool_started": self._pool is not None,
                "tenant_tokens": tenants,
            }


_default: Optional[Governor] = None
_default_lock = threading.Lock()


def default_governor() -> Governor:
    """The process-wide governor, created lazily with default settings.

    Used by the batch query paths when the query's context carries no
    governor of its own (or there is no context at all), so their fan-out
    is always bounded by one shared pool.
    """
    global _default
    with _default_lock:
        if _default is None:
            _default = Governor()
        return _default


def set_default_governor(governor: Optional[Governor]) -> Optional[Governor]:
    """Replace the process-wide governor; returns the previous one.

    ``None`` resets to lazy default creation.  The caller owns shutting
    down the replaced governor's pool if it started one.
    """
    global _default
    with _default_lock:
        previous, _default = _default, governor
        return previous
