"""k^d-trees: the d-dimensional generalisation of k^2-trees (k = 2).

Caro et al.'s ck^d-trees represent a temporal graph as a set of points in a
4-dimensional grid -- two dimensions for the edge endpoints and two for the
activation/deactivation times -- stored in a quadtree-like structure whose
levels are serialised as bitmaps.  This module implements the structure for
any dimensionality: every internal node splits each dimension in half,
giving ``2**d`` children whose non-emptiness is recorded with one bit each.

Size accounting counts exactly the level bitmaps, as in the k^2-tree
literature; navigation directories (rank indexes) are not charged.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Point = Tuple[int, ...]
Box = Sequence[Tuple[int, int]]  # inclusive (lo, hi) per dimension


class KdTree:
    """A static set of d-dimensional points with box queries.

    Points live in ``[0, 2**side_bits)**d``.  Duplicates are collapsed (the
    structure represents a set, exactly like k^2-trees).
    """

    def __init__(self, points: Iterable[Point], dims: int, side_bits: int | None = None) -> None:
        if dims < 1:
            raise ValueError(f"need at least one dimension, got {dims}")
        unique = sorted(set(tuple(p) for p in points))
        for p in unique:
            if len(p) != dims:
                raise ValueError(f"point {p} is not {dims}-dimensional")
            if any(x < 0 for x in p):
                raise ValueError(f"negative coordinate in {p}")
        if side_bits is None:
            top = max((max(p) for p in unique), default=0)
            side_bits = max(1, top.bit_length())
        else:
            top = max((max(p) for p in unique), default=0)
            if top >> side_bits:
                raise ValueError(
                    f"coordinate {top} does not fit in {side_bits} bits"
                )
        self._dims = dims
        self._side_bits = side_bits
        self._n_points = len(unique)
        # levels[l] holds the concatenated child bitmaps of all level-l nodes.
        self._levels: List[List[int]] = [[] for _ in range(side_bits)]
        if unique:
            self._build(unique, 0)
        # Prefix popcounts per level make child navigation O(1).
        self._prefix: List[List[int]] = []
        for bitmap in self._levels:
            acc = 0
            prefix = [0] * (len(bitmap) + 1)
            for i, bit in enumerate(bitmap):
                acc += bit
                prefix[i + 1] = acc
            self._prefix.append(prefix)

    def _child_of(self, point: Point, level: int) -> int:
        """Index of the child octant containing ``point`` at ``level``."""
        shift = self._side_bits - 1 - level
        child = 0
        for x in point:
            child = (child << 1) | ((x >> shift) & 1)
        return child

    def _build(self, points: List[Point], level: int) -> None:
        fanout = 1 << self._dims
        groups: List[List[Point]] = [[] for _ in range(fanout)]
        for p in points:
            groups[self._child_of(p, level)].append(p)
        bitmap = self._levels[level]
        start = len(bitmap)
        bitmap.extend(1 if g else 0 for g in groups)
        if level + 1 < self._side_bits:
            for g in groups:
                if g:
                    self._build(g, level + 1)

    # -- introspection -------------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality."""
        return self._dims

    @property
    def side_bits(self) -> int:
        """Bits per coordinate (grid side = 2**side_bits)."""
        return self._side_bits

    def __len__(self) -> int:
        return self._n_points

    def size_in_bits(self) -> int:
        """Total size of the level bitmaps."""
        return sum(len(level) for level in self._levels)

    # -- queries -------------------------------------------------------------

    def contains(self, point: Point) -> bool:
        """Set membership."""
        if len(point) != self._dims:
            raise ValueError(f"point {point} is not {self._dims}-dimensional")
        if self._n_points == 0:
            return False
        node = 0  # node index within its level
        fanout = 1 << self._dims
        for level in range(self._side_bits):
            child = self._child_of(point, level)
            pos = node * fanout + child
            bitmap = self._levels[level]
            if pos >= len(bitmap) or not bitmap[pos]:
                return False
            if level + 1 < self._side_bits:
                node = self._rank(level, pos)
        return True

    def _rank(self, level: int, pos: int) -> int:
        """Index of the level-(l+1) node hanging off the 1-bit at ``pos``.

        Child node ordering follows the rank of the parent's 1-bit, exactly
        as in k^2-trees.
        """
        return self._prefix[level][pos + 1] - 1

    def count_in_box(self, box: Box) -> int:
        """Number of stored points inside the inclusive box."""
        return len(self.report_in_box(box))

    def report_in_box(self, box: Box) -> List[Point]:
        """All stored points inside the inclusive box, sorted."""
        if len(box) != self._dims:
            raise ValueError(f"box {box} is not {self._dims}-dimensional")
        out: List[Point] = []
        if self._n_points == 0:
            return out
        norm = [(max(0, lo), min((1 << self._side_bits) - 1, hi)) for lo, hi in box]
        if any(lo > hi for lo, hi in norm):
            return out
        self._report(0, 0, (0,) * self._dims, norm, out)
        out.sort()  # traversal yields Morton order; callers expect lexicographic
        return out

    def _report(
        self,
        level: int,
        node: int,
        origin: Point,
        box: List[Tuple[int, int]],
        out: List[Point],
    ) -> None:
        fanout = 1 << self._dims
        half = 1 << (self._side_bits - 1 - level)
        bitmap = self._levels[level]
        base = node * fanout
        for child in range(fanout):
            if not bitmap[base + child]:
                continue
            corner = tuple(
                origin[d] + (half if (child >> (self._dims - 1 - d)) & 1 else 0)
                for d in range(self._dims)
            )
            # Intersect the child's cell [corner, corner + half) with the box.
            if any(
                corner[d] > box[d][1] or corner[d] + half - 1 < box[d][0]
                for d in range(self._dims)
            ):
                continue
            if level + 1 == self._side_bits:
                out.append(corner)
            else:
                self._report(
                    level + 1, self._rank(level, base + child), corner, box, out
                )
