"""Succinct substrate structures used by the baseline compressors.

The paper compares ChronoGraph against methods built on wavelet trees (CET,
CAS), k^2-tree generalisations (ck^d-trees) and compressed binary trees
(T-ABT).  None of those structures exist in the Python ecosystem, so this
subpackage implements them from scratch:

* :mod:`repro.structures.wavelet` -- a wavelet matrix (the pointer-free
  wavelet tree variant) with rank/select/range queries.
* :mod:`repro.structures.interleaved` -- the interleaved wavelet tree of
  Caro et al., storing bit-interleaved (u, v) event symbols.
* :mod:`repro.structures.kdtree` -- the k^d-tree: a d-dimensional
  generalisation of the k^2-tree with k = 2 per dimension.
* :mod:`repro.structures.cbt` -- compressed binary trees and the
  alternating variant used by T-ABT for long runs.
* :mod:`repro.structures.huffman` -- canonical Huffman coding, the
  "statistical model" EveLog compresses its edge log with.
"""

from repro.structures.wavelet import WaveletTree
from repro.structures.interleaved import InterleavedWaveletTree, interleave, deinterleave
from repro.structures.kdtree import KdTree
from repro.structures.cbt import CompressedBinaryTree, AlternatingCompressedBinaryTree
from repro.structures.huffman import HuffmanCode

__all__ = [
    "WaveletTree",
    "InterleavedWaveletTree",
    "interleave",
    "deinterleave",
    "KdTree",
    "CompressedBinaryTree",
    "AlternatingCompressedBinaryTree",
    "HuffmanCode",
]
