"""Canonical Huffman coding.

EveLog compresses the per-vertex edge log "with a statistical model"; we use
canonical Huffman over the byte stream of variable-byte-coded neighbor
labels, which is the standard concrete instantiation of such a model.

The codebook is serialised canonically -- (symbol, code length) pairs -- so
the size accounting can charge for it honestly.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bits.bitio import BitReader, BitWriter


class HuffmanCode:
    """A canonical Huffman code fitted to a symbol frequency profile."""

    def __init__(self, frequencies: Dict[int, int]) -> None:
        if not frequencies:
            raise ValueError("cannot build a Huffman code over no symbols")
        for symbol, freq in frequencies.items():
            if symbol < 0:
                raise ValueError(f"negative symbol {symbol}")
            if freq <= 0:
                raise ValueError(f"non-positive frequency for symbol {symbol}")
        self._lengths = _code_lengths(frequencies)
        self._codes = _canonical_codes(self._lengths)
        # Decoding table: (length, code) -> symbol.
        self._decode = {
            (length, code): symbol
            for symbol, (code, length) in self._codes.items()
        }

    @classmethod
    def from_sequence(cls, sequence: Iterable[int]) -> "HuffmanCode":
        """Fit a code to the empirical distribution of ``sequence``."""
        counts = Counter(sequence)
        if not counts:
            raise ValueError("cannot fit a Huffman code to an empty sequence")
        return cls(dict(counts))

    @property
    def symbols(self) -> List[int]:
        """Coded symbols, sorted."""
        return sorted(self._lengths)

    def code_of(self, symbol: int) -> Tuple[int, int]:
        """(codeword, length) for ``symbol``."""
        return self._codes[symbol]

    def encode(self, writer: BitWriter, sequence: Sequence[int]) -> int:
        """Append the code of each symbol; returns bits written."""
        n = 0
        codes = self._codes
        for symbol in sequence:
            code, length = codes[symbol]
            n += writer.write_bits(code, length)
        return n

    def decode(self, reader: BitReader, count: int) -> List[int]:
        """Decode ``count`` symbols."""
        out: List[int] = []
        table = self._decode
        for _ in range(count):
            code = 0
            length = 0
            while True:
                code = (code << 1) | reader.read_bit()
                length += 1
                hit = table.get((length, code))
                if hit is not None:
                    out.append(hit)
                    break
                if length > 64:  # pragma: no cover - corrupt stream guard
                    raise ValueError("runaway Huffman codeword")
        return out

    def encoded_length(self, sequence: Iterable[int]) -> int:
        """Bit length of encoding ``sequence`` (payload only)."""
        return sum(self._codes[s][1] for s in sequence)

    def codebook_size_in_bits(self, symbol_bits: int = 8) -> int:
        """Serialised canonical codebook: symbol + 5-bit length each."""
        return len(self._lengths) * (symbol_bits + 5)


def _code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Huffman code lengths via the standard heap algorithm."""
    if len(frequencies) == 1:
        (symbol,) = frequencies
        return {symbol: 1}
    heap: List[Tuple[int, int, List[int]]] = []
    for tiebreak, (symbol, freq) in enumerate(sorted(frequencies.items())):
        heap.append((freq, tiebreak, [symbol]))
    heapq.heapify(heap)
    lengths = {symbol: 0 for symbol in frequencies}
    tiebreak = len(heap)
    while len(heap) > 1:
        fa, _, sa = heapq.heappop(heap)
        fb, _, sb = heapq.heappop(heap)
        for s in sa:
            lengths[s] += 1
        for s in sb:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, tiebreak, sa + sb))
        tiebreak += 1
    return lengths


def _canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """Assign canonical codewords given code lengths."""
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], kv[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_length = 0
    for symbol, length in ordered:
        code <<= length - prev_length
        codes[symbol] = (code, length)
        code += 1
        prev_length = length
    return codes
