"""End-Tagged Dense Codes (ETDC).

The statistical model Caro et al.'s EveLog actually uses for its edge logs
is a byte-aligned dense code over the frequency-ranked vocabulary of vertex
ids: rank ``r`` is written base-128, least-significant group last, with the
final byte's high bit set as the end tag.  Byte alignment makes decoding
fast at the cost of >= 8 bits per symbol -- the trade-off that shows up in
the paper's EveLog compression ratios.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

from repro.bits.bitio import BitReader, BitWriter


class ETDC:
    """A dense code fitted to a symbol frequency profile."""

    def __init__(self, frequencies: Dict[int, int]) -> None:
        if not frequencies:
            raise ValueError("cannot build an ETDC over no symbols")
        for symbol, freq in frequencies.items():
            if symbol < 0:
                raise ValueError(f"negative symbol {symbol}")
            if freq <= 0:
                raise ValueError(f"non-positive frequency for symbol {symbol}")
        # Rank by descending frequency, ties by symbol for determinism.
        ranked = sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))
        self._rank_of = {symbol: rank for rank, (symbol, _) in enumerate(ranked)}
        self._symbol_of = [symbol for symbol, _ in ranked]

    @classmethod
    def from_sequence(cls, sequence: Iterable[int]) -> "ETDC":
        """Fit to the empirical distribution of ``sequence``."""
        counts = Counter(sequence)
        if not counts:
            raise ValueError("cannot fit an ETDC to an empty sequence")
        return cls(dict(counts))

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct coded symbols."""
        return len(self._symbol_of)

    @staticmethod
    def _codeword(rank: int) -> List[int]:
        groups: List[int] = []
        x = rank
        while True:
            groups.append(x % 128)
            x = x // 128 - 1
            if x < 0:
                break
        groups.reverse()
        groups[-1] |= 0x80  # end tag on the last byte
        return groups

    def code_length_bits(self, symbol: int) -> int:
        """Bit length (a multiple of 8) of the symbol's codeword."""
        return 8 * len(self._codeword(self._rank_of[symbol]))

    def encode_symbol(self, writer: BitWriter, symbol: int) -> int:
        """Append one codeword; returns bits written."""
        n = 0
        for byte in self._codeword(self._rank_of[symbol]):
            n += writer.write_bits(byte, 8)
        return n

    def encode(self, writer: BitWriter, sequence: Sequence[int]) -> int:
        """Append the codewords of a whole sequence."""
        return sum(self.encode_symbol(writer, s) for s in sequence)

    def decode_symbol(self, reader: BitReader) -> int:
        """Read one codeword and return its symbol."""
        return self.decode(reader, 1)[0]

    def decode(self, reader: BitReader, count: int) -> List[int]:
        """Decode ``count`` symbols."""
        out: List[int] = []
        for _ in range(count):
            groups: List[int] = []
            while True:
                byte = reader.read_bits(8)
                groups.append(byte & 0x7F)
                if byte & 0x80:
                    break
            rank = 0
            for g in groups[:-1]:
                rank = (rank + g) * 128 + 128
            rank += groups[-1]
            out.append(self._symbol_of[rank])
        return out

    def vocabulary_size_in_bits(self, symbol_bits: int = 32) -> int:
        """Serialised vocabulary: one fixed-width id per rank."""
        return self.vocabulary_size * symbol_bits
