"""Interleaved wavelet tree (Caro, Rodríguez & Brisaboa) for CET.

CET stores a temporal graph as a chronological log of edge events and needs
to answer "how many times does edge (u, v) appear in this time range?" and
"which neighbors does u touch in this range?".  The interleaved wavelet tree
achieves this by storing, for each event, the *bit-interleaving* of its two
endpoints as a single ``2L``-bit symbol: u's bits occupy the even (MSB-side)
positions and v's bits the odd ones.  Fixing u then corresponds to fixing
every even bit -- a masked traversal of the wavelet tree -- while v remains
free.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.structures.wavelet import WaveletTree


def interleave(u: int, v: int, bits: int) -> int:
    """Interleave two ``bits``-wide integers, u taking the higher of each pair."""
    if u < 0 or v < 0 or u >> bits or v >> bits:
        raise ValueError(f"({u}, {v}) does not fit in {bits} bits each")
    out = 0
    for i in range(bits - 1, -1, -1):
        out = (out << 2) | (((u >> i) & 1) << 1) | ((v >> i) & 1)
    return out


def deinterleave(symbol: int, bits: int) -> Tuple[int, int]:
    """Invert :func:`interleave`."""
    u = v = 0
    for i in range(bits):
        v |= (symbol & 1) << i
        symbol >>= 1
        u |= (symbol & 1) << i
        symbol >>= 1
    return u, v


class InterleavedWaveletTree:
    """Wavelet tree over bit-interleaved (u, v) event symbols."""

    def __init__(self, pairs: Sequence[Tuple[int, int]], num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        self._bits = max(1, (num_nodes - 1).bit_length())
        self._num_nodes = num_nodes
        symbols = [interleave(u, v, self._bits) for u, v in pairs]
        self._tree = WaveletTree(symbols, sigma=1 << (2 * self._bits))

    def __len__(self) -> int:
        return len(self._tree)

    @property
    def node_bits(self) -> int:
        """Bits per endpoint."""
        return self._bits

    def size_in_bits(self) -> int:
        """Payload size of the underlying wavelet tree."""
        return self._tree.size_in_bits()

    def access(self, i: int) -> Tuple[int, int]:
        """The (u, v) pair of the i-th event."""
        return deinterleave(self._tree.access(i), self._bits)

    def count_edge(self, u: int, v: int, lo: int, hi: int) -> int:
        """Occurrences of edge (u, v) among events ``[lo, hi)``."""
        return self._tree.count_range(interleave(u, v, self._bits), lo, hi)

    def _coordinate_mask(self, even: bool) -> int:
        """Mask selecting u's (even=True) or v's (odd) interleaved bits."""
        mask = 0
        for i in range(self._bits):
            mask |= 1 << (2 * i + (1 if even else 0))
        return mask

    def neighbors_of(self, u: int, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Distinct (v, multiplicity) with an (u, v) event in ``[lo, hi)``."""
        mask = self._coordinate_mask(even=True)
        fixed = interleave(u, 0, self._bits)
        hits = self._tree.range_symbols_matching(lo, hi, mask, fixed)
        return [(deinterleave(s, self._bits)[1], c) for s, c in hits]

    def sources_of(self, v: int, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Distinct (u, multiplicity) with an (u, v) event in ``[lo, hi)``."""
        mask = self._coordinate_mask(even=False)
        fixed = interleave(0, v, self._bits)
        hits = self._tree.range_symbols_matching(lo, hi, mask, fixed)
        return [(deinterleave(s, self._bits)[0], c) for s, c in hits]
