"""A wavelet matrix: the pointer-free wavelet tree used by CET and CAS.

The wavelet tree (Grossi, Gupta, Vitter) stores a sequence over an alphabet
``[0, sigma)`` in ``n * ceil(log2 sigma)`` bits plus rank/select overhead,
supporting access, rank, select and a family of range queries in
``O(log sigma)``.  We implement the *wavelet matrix* layout (Claude &
Navarro), which keeps one bitvector per bit level and a single zero-count per
level instead of per-node pointers -- simpler and the same asymptotics.

Level 0 holds each symbol's most significant bit.  Moving from level ``l``
to ``l + 1``, positions with bit 0 are stably moved to the front and
positions with bit 1 after them (``z_l`` = number of zeros at level ``l``).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.bits.bitvector import BitVector


class WaveletTree:
    """Wavelet matrix over a sequence of naturals.

    ``sigma`` (the alphabet bound) defaults to ``max(sequence) + 1``.  All
    query positions follow Python half-open conventions.
    """

    def __init__(self, sequence: Sequence[int], sigma: int | None = None) -> None:
        seq = list(sequence)
        for s in seq:
            if s < 0:
                raise ValueError(f"negative symbol: {s}")
        if sigma is None:
            sigma = (max(seq) + 1) if seq else 1
        if seq and max(seq) >= sigma:
            raise ValueError(f"symbol {max(seq)} >= sigma {sigma}")
        self._n = len(seq)
        self._sigma = sigma
        self._levels_count = max(1, (sigma - 1).bit_length()) if sigma > 1 else 1
        levels: List[BitVector] = []
        zeros: List[int] = []
        current = seq
        for level in range(self._levels_count):
            shift = self._levels_count - 1 - level
            bits = [(s >> shift) & 1 for s in current]
            levels.append(BitVector(bits))
            nxt_zero = [s for s, b in zip(current, bits) if not b]
            nxt_one = [s for s, b in zip(current, bits) if b]
            zeros.append(len(nxt_zero))
            current = nxt_zero + nxt_one
        self._levels = levels
        self._zeros = zeros

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet bound."""
        return self._sigma

    @property
    def num_levels(self) -> int:
        """Number of bit levels, ``ceil(log2 sigma)``."""
        return self._levels_count

    def size_in_bits(self) -> int:
        """Payload bits across all levels (rank directories excluded)."""
        return sum(len(level) for level in self._levels)

    # -- point queries -------------------------------------------------------

    def access(self, i: int) -> int:
        """Return the i-th symbol of the original sequence."""
        if not 0 <= i < self._n:
            raise IndexError(i)
        symbol = 0
        for level, bv in enumerate(self._levels):
            bit = bv[i]
            symbol = (symbol << 1) | bit
            if bit:
                i = self._zeros[level] + bv.rank1(i)
            else:
                i = bv.rank0(i)
        return symbol

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self.access(i)

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, i)``."""
        if not 0 <= i <= self._n:
            raise IndexError(i)
        return self.count_range(symbol, 0, i)

    def count_range(self, symbol: int, lo: int, hi: int) -> int:
        """Occurrences of ``symbol`` in positions ``[lo, hi)``."""
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        if symbol < 0 or symbol >= self._sigma:
            return 0
        for level, bv in enumerate(self._levels):
            bit = (symbol >> (self._levels_count - 1 - level)) & 1
            if bit:
                z = self._zeros[level]
                lo = z + bv.rank1(lo)
                hi = z + bv.rank1(hi)
            else:
                lo = bv.rank0(lo)
                hi = bv.rank0(hi)
            if lo >= hi:
                return 0
        return hi - lo

    def select(self, symbol: int, j: int) -> int:
        """Position of the j-th (0-based) occurrence of ``symbol``."""
        total = self.rank(symbol, self._n)
        if not 0 <= j < total:
            raise IndexError(f"select({symbol}, {j}) with {total} occurrences")
        # Walk down to locate the start of the symbol's final interval...
        lo = 0
        path: List[Tuple[int, int]] = []  # (level, bit) taken
        for level, bv in enumerate(self._levels):
            bit = (symbol >> (self._levels_count - 1 - level)) & 1
            path.append((level, bit))
            if bit:
                lo = self._zeros[level] + bv.rank1(lo)
            else:
                lo = bv.rank0(lo)
        # ... then walk back up mapping the j-th position through selects.
        pos = lo + j
        for level, bit in reversed(path):
            bv = self._levels[level]
            if bit:
                pos = bv.select1(pos - self._zeros[level])
            else:
                pos = bv.select0(pos)
        return pos

    # -- range reporting -----------------------------------------------------

    def range_distinct(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Distinct symbols in ``[lo, hi)`` with multiplicities, sorted.

        Runs in ``O(d log sigma)`` for ``d`` distinct symbols -- the classic
        wavelet-tree "range listing" used by CAS to enumerate the neighbors
        inside a vertex's event range.
        """
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        out: List[Tuple[int, int]] = []
        if lo < hi:
            self._distinct_rec(0, lo, hi, 0, out, mask=None, fixed=0)
        return out

    def range_symbols_matching(
        self, lo: int, hi: int, mask: int, fixed: int
    ) -> List[Tuple[int, int]]:
        """Distinct symbols in ``[lo, hi)`` whose masked bits equal ``fixed``.

        ``mask``/``fixed`` are over the ``num_levels``-bit symbol space, MSB
        aligned like the symbols themselves.  The interleaved wavelet tree
        uses this to fix one coordinate of an interleaved (u, v) pair while
        enumerating the other.
        """
        if not 0 <= lo <= hi <= self._n:
            raise IndexError((lo, hi))
        out: List[Tuple[int, int]] = []
        if lo < hi:
            self._distinct_rec(0, lo, hi, 0, out, mask=mask, fixed=fixed)
        return out

    def _distinct_rec(
        self,
        level: int,
        lo: int,
        hi: int,
        prefix: int,
        out: List[Tuple[int, int]],
        mask: int | None,
        fixed: int,
    ) -> None:
        if level == self._levels_count:
            out.append((prefix, hi - lo))
            return
        bv = self._levels[level]
        shift = self._levels_count - 1 - level
        z = self._zeros[level]
        lo0, hi0 = bv.rank0(lo), bv.rank0(hi)
        lo1, hi1 = z + (lo - lo0), z + (hi - hi0)
        constrained = mask is not None and (mask >> shift) & 1
        want = (fixed >> shift) & 1 if constrained else None
        if hi0 > lo0 and (want is None or want == 0):
            self._distinct_rec(level + 1, lo0, hi0, prefix << 1, out, mask, fixed)
        if hi1 > lo1 and (want is None or want == 1):
            self._distinct_rec(
                level + 1, lo1, hi1, (prefix << 1) | 1, out, mask, fixed
            )

    def histogram(self) -> Dict[int, int]:
        """Symbol -> multiplicity over the whole sequence."""
        return dict(self.range_distinct(0, self._n))
