"""Compressed binary trees, the substrate of the T-ABT baseline.

Nelson et al. represent each row of the aggregated adjacency matrix as a
*compressed binary tree* (CBT): a binary partition of the column universe in
which all-zero and all-one subtrees collapse into single leaves.  For the
time dimension they introduce the *alternating* CBT, which represents long
runs of ones as cheaply as runs of zeros -- the activity bit array of an
edge in an interval graph is exactly such an alternating run structure.

Both classes here expose the serialised size (``size_in_bits``) computed
from the preorder code:

* CBT: ``00`` empty subtree, ``01`` full subtree, ``1`` mixed (children
  follow); single-slot leaves take one bit.
* Alternating CBT: ``0b`` uniform subtree of value ``b``, ``1`` mixed.
  (Same cost for uniform subtrees of either value -- the "alternating" trick.)

Queries traverse the tree form directly.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Tuple, Union

# Tree nodes: ("E",) empty, ("F",) full, ("M", left, right) mixed.
Node = Union[Tuple[str], Tuple[str, "Node", "Node"]]

_EMPTY: Node = ("E",)
_FULL: Node = ("F",)


def _build(intervals: List[Tuple[int, int]], lo: int, hi: int) -> Node:
    """Build the subtree for universe slice [lo, hi).

    ``intervals`` is a sorted list of disjoint half-open member ranges lying
    inside [lo, hi).  Building from ranges rather than exploded member lists
    keeps long runs (the whole point of the alternating variant) cheap.
    """
    if not intervals:
        return _EMPTY
    covered = sum(e - s for s, e in intervals)
    if covered == hi - lo:
        return _FULL
    mid = (lo + hi) // 2
    left: List[Tuple[int, int]] = []
    right: List[Tuple[int, int]] = []
    for s, e in intervals:
        if e <= mid:
            left.append((s, e))
        elif s >= mid:
            right.append((s, e))
        else:
            left.append((s, mid))
            right.append((mid, e))
    return ("M", _build(left, lo, mid), _build(right, mid, hi))


def _normalise_intervals(intervals: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort, drop empties and merge overlapping/touching half-open ranges."""
    merged: List[Tuple[int, int]] = []
    for s, e in sorted((s, e) for s, e in intervals if e > s):
        if merged and s <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], e))
        else:
            merged.append((s, e))
    return merged


class CompressedBinaryTree:
    """A set over ``[0, 2**universe_bits)`` with collapsed uniform subtrees."""

    def __init__(self, members: Iterable[int], universe_bits: int) -> None:
        sorted_members = sorted(set(members))
        intervals = _normalise_intervals((m, m + 1) for m in sorted_members)
        self._init_from_intervals(intervals, universe_bits)

    @classmethod
    def from_intervals(
        cls, intervals: Iterable[Tuple[int, int]], universe_bits: int
    ) -> "CompressedBinaryTree":
        """Build from half-open member ranges without materialising them."""
        tree = cls.__new__(cls)
        tree._init_from_intervals(_normalise_intervals(intervals), universe_bits)
        return tree

    def _init_from_intervals(
        self, intervals: List[Tuple[int, int]], universe_bits: int
    ) -> None:
        if universe_bits < 0:
            raise ValueError(f"negative universe_bits: {universe_bits}")
        self._bits = universe_bits
        size = 1 << universe_bits
        if intervals:
            if intervals[0][0] < 0:
                raise ValueError(f"negative member {intervals[0][0]}")
            if intervals[-1][1] > size:
                raise ValueError(
                    f"member {intervals[-1][1] - 1} outside [0, {size})"
                )
        self._count = sum(e - s for s, e in intervals)
        self._root = _build(intervals, 0, size)

    @property
    def universe_bits(self) -> int:
        """log2 of the universe size."""
        return self._bits

    def __len__(self) -> int:
        return self._count

    def __contains__(self, x: int) -> bool:
        if not 0 <= x < (1 << self._bits):
            return False
        node = self._root
        lo, hi = 0, 1 << self._bits
        while node[0] == "M":
            mid = (lo + hi) // 2
            if x < mid:
                node, hi = node[1], mid
            else:
                node, lo = node[2], mid
        return node[0] == "F"

    def any_in_range(self, lo: int, hi: int) -> bool:
        """Whether any member lies in the inclusive range [lo, hi]."""
        if lo > hi:
            return False
        return self._any(self._root, 0, 1 << self._bits, lo, hi + 1)

    def _any(self, node: Node, nlo: int, nhi: int, qlo: int, qhi: int) -> bool:
        if node[0] == "E" or qhi <= nlo or nhi <= qlo:
            return False
        if node[0] == "F":
            return True
        mid = (nlo + nhi) // 2
        return self._any(node[1], nlo, mid, qlo, qhi) or self._any(
            node[2], mid, nhi, qlo, qhi
        )

    def count_in_range(self, lo: int, hi: int) -> int:
        """Number of members in the inclusive range [lo, hi]."""
        if lo > hi:
            return 0
        return self._count_range(self._root, 0, 1 << self._bits, lo, hi + 1)

    def _count_range(self, node: Node, nlo: int, nhi: int, qlo: int, qhi: int) -> int:
        if node[0] == "E" or qhi <= nlo or nhi <= qlo:
            return 0
        overlap = min(nhi, qhi) - max(nlo, qlo)
        if node[0] == "F":
            return overlap
        mid = (nlo + nhi) // 2
        return self._count_range(node[1], nlo, mid, qlo, qhi) + self._count_range(
            node[2], mid, nhi, qlo, qhi
        )

    def members(self) -> List[int]:
        """All members, sorted."""
        out: List[int] = []
        self._collect(self._root, 0, 1 << self._bits, out)
        return out

    def _collect(self, node: Node, lo: int, hi: int, out: List[int]) -> None:
        if node[0] == "E":
            return
        if node[0] == "F":
            out.extend(range(lo, hi))
            return
        mid = (lo + hi) // 2
        self._collect(node[1], lo, mid, out)
        self._collect(node[2], mid, hi, out)

    def size_in_bits(self) -> int:
        """Preorder code length: 2 bits per uniform subtree, 1 per mixed node."""
        return self._size(self._root, self._bits)

    def _size(self, node: Node, depth_bits: int) -> int:
        if depth_bits == 0:
            return 1  # single-slot leaf: one presence bit
        if node[0] == "M":
            return 1 + self._size(node[1], depth_bits - 1) + self._size(
                node[2], depth_bits - 1
            )
        return 2


class AlternatingCompressedBinaryTree(CompressedBinaryTree):
    """CBT variant tuned for bit arrays with long alternating runs.

    Structurally identical to :class:`CompressedBinaryTree`; the subclass
    exists to model T-ABT's time trees, whose input is the *activity bit
    array* of an edge over the graph's time steps.  The constructor therefore
    takes activation events rather than a member set.
    """

    def __init__(self, activation_times: Iterable[int], universe_bits: int,
                 *, mode: str = "point") -> None:
        """Build from activation events.

        ``mode='point'`` marks exactly the given time steps.  ``mode='toggle'``
        treats the (sorted) times as alternating activation / deactivation
        events, the interval-graph convention of Nelson et al.: the edge is
        active from each odd-indexed event up to (excluding) the following
        even-indexed one.
        """
        times = sorted(activation_times)
        if mode == "point":
            intervals = [(t, t + 1) for t in times]
        elif mode == "toggle":
            intervals = []
            horizon = 1 << universe_bits
            for i in range(0, len(times), 2):
                start = times[i]
                end = times[i + 1] if i + 1 < len(times) else horizon
                intervals.append((start, end))
        else:
            raise ValueError(f"unknown mode {mode!r}")
        self._init_from_intervals(_normalise_intervals(intervals), universe_bits)

    def active_at(self, t: int) -> bool:
        """Whether the edge is active at time step ``t``."""
        return t in self

    def active_in(self, lo: int, hi: int) -> bool:
        """Whether the edge is active anywhere in the inclusive range."""
        return self.any_in_range(lo, hi)
