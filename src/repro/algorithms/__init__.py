"""Graph algorithms running directly on compressed temporal graphs.

The paper motivates ChronoGraph with analyses that need fast neighbor
queries on evolving networks (Section I): tracking communities over time,
PageRank on historical snapshots, and anomaly detection.  These modules
implement those analyses against the *query interface* of a compressed
graph -- anything exposing ``num_nodes`` and ``neighbors(u, t1, t2)`` works,
so they run equally on ChronoGraph and on every baseline.
"""

from repro.algorithms.pagerank import pagerank
from repro.algorithms.communities import label_propagation, track_communities
from repro.algorithms.reachability import (
    earliest_arrival,
    earliest_arrival_paths,
    fastest_journey,
    temporal_reachable,
)
from repro.algorithms.anomaly import degree_burst_scores, detect_bursts
from repro.algorithms.centrality import degree_centrality, temporal_closeness, top_k
from repro.algorithms.motifs import (
    count_cyclic_triangles,
    count_temporal_wedges,
    motif_profile,
)
from repro.algorithms.kcore import core_numbers, core_timeline, max_core
from repro.algorithms.similarity import (
    common_neighbors,
    jaccard_similarity,
    similarity_timeline,
    top_link_predictions,
)

__all__ = [
    "count_cyclic_triangles",
    "count_temporal_wedges",
    "motif_profile",
    "core_numbers",
    "core_timeline",
    "max_core",
    "common_neighbors",
    "jaccard_similarity",
    "similarity_timeline",
    "top_link_predictions",
    "pagerank",
    "label_propagation",
    "track_communities",
    "earliest_arrival",
    "earliest_arrival_paths",
    "fastest_journey",
    "temporal_reachable",
    "degree_burst_scores",
    "detect_bursts",
    "degree_centrality",
    "temporal_closeness",
    "top_k",
]
