"""Temporal anomaly detection (the paper's Section I third use case).

"We are often interested in spotting atypical behavior, e.g., uncovering
attacks by analyzing traffic in computer networks."  The detector below
computes each node's activity (distinct active neighbors) per time window
and flags windows whose activity deviates from that node's own baseline by
more than a z-score threshold.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


def degree_burst_scores(
    graph,
    window: int,
    *,
    t_start: int,
    t_end: int,
) -> Dict[int, List[Tuple[int, int]]]:
    """Per node: [(window start, active-neighbor count)] across windows."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    out: Dict[int, List[Tuple[int, int]]] = {
        u: [] for u in range(graph.num_nodes)
    }
    t = t_start
    while t <= t_end:
        for u in range(graph.num_nodes):
            out[u].append((t, len(graph.neighbors(u, t, t + window - 1))))
        t += window
    return out


def detect_bursts(
    graph,
    window: int,
    *,
    t_start: int,
    t_end: int,
    z_threshold: float = 3.0,
) -> List[Tuple[int, int, float]]:
    """(node, window start, z-score) for windows of anomalous activity.

    Each window is scored against a *leave-one-out* baseline: the mean and
    standard deviation of the node's activity in all other windows.
    Excluding the window under test keeps a single massive burst from
    inflating its own baseline, and the deviation is regularised by +1 so
    nodes that are quiet except for one blip get a bounded score instead of
    a division by zero.
    """
    series = degree_burst_scores(graph, window, t_start=t_start, t_end=t_end)
    anomalies: List[Tuple[int, int, float]] = []
    for u, points in series.items():
        values = [count for _, count in points]
        n = len(values)
        if n < 3:
            continue
        total = sum(values)
        total_sq = sum(v * v for v in values)
        for (start, count) in points:
            rest_mean = (total - count) / (n - 1)
            rest_var = max(
                0.0, (total_sq - count * count) / (n - 1) - rest_mean ** 2
            )
            z = (count - rest_mean) / (math.sqrt(rest_var) + 1.0)
            if z > z_threshold:
                anomalies.append((u, start, z))
    anomalies.sort(key=lambda a: -a[2])
    return anomalies
