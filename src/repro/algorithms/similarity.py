"""Temporal neighborhood similarity and simple link prediction.

Given the windowed neighbor queries a compressed graph exposes, classic
neighborhood-overlap scores extend naturally to time windows: how similar
were two nodes' contact sets *during a period*, and which un-connected
pairs are most likely to connect next (the standard common-neighbors
family of link predictors, evaluated per window).
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def jaccard_similarity(graph, u: int, v: int, t_start: int, t_end: int) -> float:
    """Jaccard overlap of the two nodes' window neighborhoods (self excluded)."""
    nu = set(graph.neighbors(u, t_start, t_end)) - {u, v}
    nv = set(graph.neighbors(v, t_start, t_end)) - {u, v}
    union = nu | nv
    if not union:
        return 0.0
    return len(nu & nv) / len(union)


def common_neighbors(graph, u: int, v: int, t_start: int, t_end: int) -> List[int]:
    """Sorted nodes both ``u`` and ``v`` contacted within the window."""
    nu = set(graph.neighbors(u, t_start, t_end))
    nv = set(graph.neighbors(v, t_start, t_end))
    return sorted((nu & nv) - {u, v})


def top_link_predictions(
    graph,
    t_start: int,
    t_end: int,
    *,
    k: int = 10,
) -> List[Tuple[int, int, float]]:
    """The k highest-Jaccard node pairs with no edge inside the window.

    A per-window common-neighbors link predictor: candidate pairs are the
    *co-citing* pairs -- two sources contacting the same target inside the
    window -- which is exactly the set with non-zero Jaccard overlap, so
    the sweep is linear in the number of such wedges.
    """
    if k < 0:
        raise ValueError(f"negative k: {k}")
    n = graph.num_nodes
    out_sets: Dict[int, set] = {
        u: set(graph.neighbors(u, t_start, t_end)) for u in range(n)
    }
    linked = {
        (u, v) for u, targets in out_sets.items() for v in targets
    }
    sources_of: Dict[int, List[int]] = {}
    for u, targets in out_sets.items():
        for m in targets:
            sources_of.setdefault(m, []).append(u)
    candidates = set()
    for co_citers in sources_of.values():
        for i, u in enumerate(co_citers):
            for v in co_citers[i + 1:]:
                a, b = min(u, v), max(u, v)
                if (a, b) not in linked and (b, a) not in linked:
                    candidates.add((a, b))
    scored = [
        (u, v, jaccard_similarity(graph, u, v, t_start, t_end))
        for u, v in candidates
    ]
    scored = [(u, v, s) for u, v, s in scored if s > 0.0]
    scored.sort(key=lambda row: (-row[2], row[0], row[1]))
    return scored[:k]


def similarity_timeline(
    graph,
    u: int,
    v: int,
    window: int,
    *,
    t_start: int,
    t_end: int,
) -> List[Tuple[int, float]]:
    """(window start, Jaccard of u and v) across tumbling windows."""
    from repro.graph.windows import sliding_windows

    return [
        (w_start, jaccard_similarity(graph, u, v, w_start, w_end))
        for w_start, w_end in sliding_windows(t_start, t_end, window)
    ]
