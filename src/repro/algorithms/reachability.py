"""Time-respecting reachability on a compressed ChronoGraph.

A temporal path must traverse contacts in non-decreasing time order; the
earliest-arrival computation below is the standard one-pass algorithm over
time-ordered contacts, reading each node's contacts straight from the
compressed representation (``contacts_of`` is ChronoGraph-specific -- the
baselines only expose window queries).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.graph.model import GraphKind

_INF = float("inf")


def earliest_arrival(graph, source: int, t_depart: int = 0) -> Dict[int, int]:
    """Earliest arrival time at every reachable node, leaving at ``t_depart``.

    ``graph`` must expose ``num_nodes``, ``kind`` and ``contacts_of(u)``
    (both :class:`repro.graph.model.TemporalGraph` and
    :class:`repro.core.CompressedChronoGraph` do).  A contact (u, v, t, d)
    can be taken if the walker is at ``u`` by time ``t`` (for interval
    contacts, by ``t + d - 1`` at the latest, boarding no earlier than its
    own arrival); incremental contacts are usable any time from ``t`` on.
    """
    arrivals: Dict[int, float] = {source: t_depart}
    heap = [(t_depart, source)]
    while heap:
        at, u = heapq.heappop(heap)
        if at > arrivals.get(u, _INF):
            continue
        for c in graph.contacts_of(u):
            if graph.kind is GraphKind.INCREMENTAL:
                board = max(at, c.time)
            elif graph.kind is GraphKind.INTERVAL:
                if c.duration == 0 or at > c.end - 1:
                    continue
                board = max(at, c.time)
            else:  # POINT: the contact happens exactly at c.time
                if at > c.time:
                    continue
                board = c.time
            if board < arrivals.get(c.v, _INF):
                arrivals[c.v] = board
                heapq.heappush(heap, (board, c.v))
    return {node: int(t) for node, t in arrivals.items()}


def temporal_reachable(graph, source: int, t_depart: int = 0) -> List[int]:
    """Sorted nodes reachable from ``source`` via a time-respecting path."""
    return sorted(earliest_arrival(graph, source, t_depart))


def earliest_arrival_paths(
    graph, source: int, t_depart: int = 0
) -> Dict[int, List[int]]:
    """Earliest-arrival *paths*: node -> the node sequence reaching it.

    Same traversal as :func:`earliest_arrival`, additionally keeping the
    predecessor of each improvement, so the witness journey itself can be
    reported (the "how did the information reach v" question).
    """
    arrivals: Dict[int, float] = {source: t_depart}
    predecessor: Dict[int, int] = {}
    heap = [(t_depart, source)]
    while heap:
        at, u = heapq.heappop(heap)
        if at > arrivals.get(u, _INF):
            continue
        for c in graph.contacts_of(u):
            if graph.kind is GraphKind.INCREMENTAL:
                board = max(at, c.time)
            elif graph.kind is GraphKind.INTERVAL:
                if c.duration == 0 or at > c.end - 1:
                    continue
                board = max(at, c.time)
            else:
                if at > c.time:
                    continue
                board = c.time
            if board < arrivals.get(c.v, _INF):
                arrivals[c.v] = board
                predecessor[c.v] = u
                heapq.heappush(heap, (board, c.v))
    paths: Dict[int, List[int]] = {}
    for node in arrivals:
        chain = [node]
        while chain[-1] != source:
            chain.append(predecessor[chain[-1]])
        paths[node] = list(reversed(chain))
    return paths


def fastest_journey(
    graph, source: int, target: int
) -> Optional[Tuple[int, int]]:
    """The (departure, arrival) pair minimising a journey's elapsed time.

    A journey may wait at nodes; its duration is ``arrival − departure``.
    Implemented by running the earliest-arrival scan from every candidate
    departure time (the times of the source's own contacts), the standard
    reduction; returns None when ``target`` is unreachable.
    """
    if source == target:
        return None
    departures = sorted({c.time for c in graph.contacts_of(source)})
    best: Optional[Tuple[int, int]] = None
    for depart in departures:
        arrivals = earliest_arrival(graph, source, depart)
        arrival = arrivals.get(target)
        if arrival is None:
            continue
        if best is None or arrival - depart < best[1] - best[0]:
            best = (depart, arrival)
    return best
