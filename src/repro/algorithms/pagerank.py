"""PageRank over a time window of a compressed temporal graph.

The paper's Section I use case: "retrieve the historical state of the
connectivity between websites and measure how their PageRank values change
over time".  The implementation pulls each node's neighbors restricted to
the query window straight from the compressed representation -- no
decompression of the full graph, no materialised snapshot.
"""

from __future__ import annotations

from typing import Dict, List


def pagerank(
    graph,
    t_start: int,
    t_end: int,
    *,
    damping: float = 0.85,
    iterations: int = 30,
    tolerance: float = 1e-9,
) -> List[float]:
    """PageRank scores of the snapshot active within [t_start, t_end].

    ``graph`` is any compressed representation exposing ``num_nodes`` and
    ``neighbors(u, t_start, t_end)``.  Dangling mass is redistributed
    uniformly, the standard convention.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    n = graph.num_nodes
    if n == 0:
        return []
    adjacency: Dict[int, List[int]] = {
        u: graph.neighbors(u, t_start, t_end) for u in range(n)
    }
    rank = [1.0 / n] * n
    for _ in range(iterations):
        nxt = [0.0] * n
        dangling = 0.0
        for u in range(n):
            targets = adjacency[u]
            if targets:
                share = rank[u] / len(targets)
                for v in targets:
                    nxt[v] += share
            else:
                dangling += rank[u]
        base = (1.0 - damping) / n + damping * dangling / n
        nxt = [base + damping * x for x in nxt]
        if sum(abs(a - b) for a, b in zip(rank, nxt)) < tolerance:
            rank = nxt
            break
        rank = nxt
    return rank
