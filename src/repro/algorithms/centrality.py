"""Temporal centrality measures on compressed graphs.

Complements :mod:`repro.algorithms.pagerank`:

* **temporal closeness** -- how quickly a node reaches the rest of the
  network along time-respecting paths (built on
  :func:`repro.algorithms.reachability.earliest_arrival`);
* **snapshot degree centrality** -- per-window in/out degree shares.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algorithms.reachability import earliest_arrival


def temporal_closeness(
    graph, t_depart: int = 0, *, horizon: int | None = None
) -> List[float]:
    """Closeness over earliest-arrival delays from each node.

    For node ``u`` the score is ``sum(1 / (1 + arrival_v - t_depart))`` over
    all other reached nodes ``v`` (harmonic closeness, robust to
    disconnection), normalised by ``num_nodes - 1`` into [0, 1].  ``horizon``
    caps the arrival times considered (e.g. "reached within a week").
    """
    n = graph.num_nodes
    if n <= 1:
        return [0.0] * n
    scores: List[float] = []
    for u in range(n):
        arrivals = earliest_arrival(graph, u, t_depart)
        total = 0.0
        for v, at in arrivals.items():
            if v == u:
                continue
            if horizon is not None and at - t_depart > horizon:
                continue
            total += 1.0 / (1.0 + at - t_depart)
        scores.append(total / (n - 1))
    return scores


def degree_centrality(
    graph, t_start: int, t_end: int
) -> Tuple[List[float], List[float]]:
    """(out, in) degree centrality of the window snapshot, each in [0, 1]."""
    n = graph.num_nodes
    out_deg = [0] * n
    in_deg = [0] * n
    for u in range(n):
        neighbors = graph.neighbors(u, t_start, t_end)
        out_deg[u] = len(neighbors)
        for v in neighbors:
            in_deg[v] += 1
    denom = max(1, n - 1)
    return (
        [d / denom for d in out_deg],
        [d / denom for d in in_deg],
    )


def top_k(scores: List[float], k: int) -> List[Tuple[int, float]]:
    """The k highest-scoring nodes as (node, score), ties by node id."""
    if k < 0:
        raise ValueError(f"negative k: {k}")
    order = sorted(range(len(scores)), key=lambda u: (-scores[u], u))
    return [(u, scores[u]) for u in order[:k]]
