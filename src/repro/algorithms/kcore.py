"""k-core decomposition of time-window snapshots.

The k-core (maximal subgraph with minimum degree k) is a standard lens on
community structure and influence; tracking a node's core number across
windows is another "evolution of the groups a person belongs to" analysis
in the spirit of the paper's Section I.  Implemented with the classic
Batagelj-Zaversnik peeling over the undirected window snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def core_numbers(graph, t_start: int, t_end: int) -> List[int]:
    """Core number per node for the undirected snapshot of the window."""
    n = graph.num_nodes
    adjacency: List[set] = [set() for _ in range(n)]
    for u in range(n):
        for v in graph.neighbors(u, t_start, t_end):
            if v != u:
                adjacency[u].add(v)
                adjacency[v].add(u)
    if n == 0:
        return []
    degree = [len(adjacency[u]) for u in range(n)]
    max_degree = max(degree)
    # Batagelj-Zaversnik bucket queue: vert holds vertices sorted by current
    # degree, pos[v] its index, bin_start[d] where degree-d vertices begin.
    counts = [0] * (max_degree + 1)
    for d in degree:
        counts[d] += 1
    bin_start = [0] * (max_degree + 1)
    acc = 0
    for d in range(max_degree + 1):
        bin_start[d] = acc
        acc += counts[d]
    vert = [0] * n
    pos = [0] * n
    fill = list(bin_start)
    for v in range(n):
        pos[v] = fill[degree[v]]
        vert[pos[v]] = v
        fill[degree[v]] += 1
    core = list(degree)
    for i in range(n):
        u = vert[i]
        for v in adjacency[u]:
            if core[v] > core[u]:
                dv = core[v]
                # Swap v with the first vertex of its bin, then shrink it.
                first = bin_start[dv]
                w = vert[first]
                if v != w:
                    vert[pos[v]], vert[first] = w, v
                    pos[w], pos[v] = pos[v], first
                bin_start[dv] += 1
                core[v] -= 1
    return core


def max_core(graph, t_start: int, t_end: int) -> Tuple[int, List[int]]:
    """(k, members) of the innermost core of the window snapshot."""
    core = core_numbers(graph, t_start, t_end)
    if not core:
        return 0, []
    k = max(core)
    return k, [u for u, c in enumerate(core) if c == k and k > 0]


def core_timeline(
    graph, node: int, window: int, *, t_start: int, t_end: int
) -> List[Tuple[int, int]]:
    """(window start, core number of ``node``) per tumbling window."""
    from repro.graph.windows import sliding_windows

    out: List[Tuple[int, int]] = []
    for w_start, w_end in sliding_windows(t_start, t_end, window):
        out.append((w_start, core_numbers(graph, w_start, w_end)[node]))
    return out
