"""Community detection on time windows (the paper's phone-call use case).

Section I: "we may be interested in tracking the evolution of the groups a
person belongs to, by applying community detection on a weekly basis".
``label_propagation`` finds communities in one window;
``track_communities`` slides a window over the lifetime and reports the
evolving membership per node.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple


def label_propagation(
    graph,
    t_start: int,
    t_end: int,
    *,
    max_rounds: int = 20,
    seed: int = 0,
) -> List[int]:
    """Community label per node for the window's snapshot.

    Synchronous label propagation over the undirected view of the window's
    edges; deterministic given the seed.  Isolated nodes keep their own
    singleton label.
    """
    n = graph.num_nodes
    undirected: Dict[int, set] = {u: set() for u in range(n)}
    for u in range(n):
        for v in graph.neighbors(u, t_start, t_end):
            undirected[u].add(v)
            undirected[v].add(u)
    labels = list(range(n))
    rng = random.Random(seed)
    order = list(range(n))
    for _ in range(max_rounds):
        rng.shuffle(order)
        changed = False
        for u in order:
            if not undirected[u]:
                continue
            counts: Dict[int, int] = {}
            for v in undirected[u]:
                counts[labels[v]] = counts.get(labels[v], 0) + 1
            best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            if best != labels[u]:
                labels[u] = best
                changed = True
        if not changed:
            break
    # Canonicalise: smallest member id names each community.
    canonical: Dict[int, int] = {}
    for u in range(n):
        canonical.setdefault(labels[u], u)
    return [canonical[labels[u]] for u in range(n)]


def track_communities(
    graph,
    window: int,
    *,
    t_start: int,
    t_end: int,
    seed: int = 0,
) -> List[Tuple[int, List[int]]]:
    """Community labels per sliding window: [(window start, labels)].

    Windows are half-open steps of length ``window`` covering
    [t_start, t_end]; the paper's example uses a week over a phone-call log.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    out: List[Tuple[int, List[int]]] = []
    t = t_start
    while t <= t_end:
        labels = label_propagation(graph, t, t + window - 1, seed=seed)
        out.append((t, labels))
        t += window
    return out
