"""Temporal motif counting on (compressed) temporal graphs.

A temporal motif is a small subgraph whose contacts occur in a prescribed
order within a time window delta (Paranjape, Benson & Leskovec's model).
Implemented here are the two workhorses:

* **cyclic temporal triangles** -- contacts ``(u, v, t1), (v, w, t2),
  (w, u, t3)`` with ``t1 < t2 < t3 <= t1 + delta``;
* **temporal wedges** -- ``(u, v, t1), (v, w, t2)`` with
  ``t1 < t2 <= t1 + delta`` (the "forwarding" pattern).

Both run on anything exposing ``num_nodes`` and ``contacts_of(u)``
(uncompressed and ChronoGraph-compressed graphs alike), reading contact
times per edge and counting with binary search.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

Edge = Tuple[int, int]


def _edge_times(graph) -> Dict[Edge, List[int]]:
    """Edge -> ascending contact start times."""
    times: Dict[Edge, List[int]] = {}
    for u in range(graph.num_nodes):
        for c in graph.contacts_of(u):
            times.setdefault((c.u, c.v), []).append(c.time)
    for bucket in times.values():
        bucket.sort()
    return times


def count_temporal_wedges(graph, delta: int) -> int:
    """Number of ordered contact pairs (u→v, v→w) within ``delta``.

    ``w == u`` is excluded (that is a return, not a forward); strictly
    increasing times, window inclusive: ``t1 < t2 <= t1 + delta``.
    """
    if delta < 0:
        raise ValueError(f"negative delta: {delta}")
    times = _edge_times(graph)
    out_edges: Dict[int, List[Edge]] = {}
    for (u, v) in times:
        out_edges.setdefault(u, []).append((u, v))
    count = 0
    for (u, v), first_times in times.items():
        for (_, w) in out_edges.get(v, ()):
            if w == u:
                continue
            second_times = times[(v, w)]
            for t1 in first_times:
                lo = bisect.bisect_right(second_times, t1)
                hi = bisect.bisect_right(second_times, t1 + delta)
                count += hi - lo
    return count


def count_cyclic_triangles(graph, delta: int) -> int:
    """Number of cyclic temporal triangles closing within ``delta``.

    Contacts ``(u, v, t1), (v, w, t2), (w, u, t3)`` with
    ``t1 < t2 < t3 <= t1 + delta``.  Each contact triple is generated
    exactly once: the strict time ordering means the rotation starting at
    the earliest contact is the only one enumerated.
    """
    if delta < 0:
        raise ValueError(f"negative delta: {delta}")
    times = _edge_times(graph)
    out_edges: Dict[int, List[int]] = {}
    for (u, v) in times:
        out_edges.setdefault(u, []).append(v)
    count = 0
    for (u, v), first_times in times.items():
        for w in out_edges.get(v, ()):
            if w in (u, v):
                continue
            closing = times.get((w, u))
            if not closing:
                continue
            middle = times[(v, w)]
            for t1 in first_times:
                horizon = t1 + delta
                m_lo = bisect.bisect_right(middle, t1)
                m_hi = bisect.bisect_right(middle, horizon)
                for t2 in middle[m_lo:m_hi]:
                    c_lo = bisect.bisect_right(closing, t2)
                    c_hi = bisect.bisect_right(closing, horizon)
                    count += c_hi - c_lo
    return count


def motif_profile(graph, delta: int) -> Dict[str, int]:
    """Both motif counts in one map (the shape a dashboard would plot)."""
    return {
        "wedges": count_temporal_wedges(graph, delta),
        "cyclic_triangles": count_cyclic_triangles(graph, delta),
    }
