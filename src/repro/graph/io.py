"""Plain-text contact-list IO.

The on-disk format is the usual one for temporal graph datasets: one contact
per line, whitespace-separated ``u v t`` (point/incremental) or ``u v t dt``
(interval), with ``#``-prefixed header lines carrying the kind, node count
and granularity.  The *Raw* and *Gzip* baselines of Table IV measure exactly
this serialisation.  Paths ending in ``.gz`` are transparently
gzip-compressed on write and decompressed on read, matching how the public
temporal-graph datasets are usually distributed.
"""

from __future__ import annotations

import gzip
import pathlib
import zlib
from typing import Union

from repro.errors import FormatError
from repro.graph.model import Contact, GraphKind, TemporalGraph

PathLike = Union[str, pathlib.Path]


def _write_text(path: pathlib.Path, text: str) -> None:
    # Compress in memory, then publish through the atomic writer: a crash
    # mid-write leaves the old file (or none), never a torn one.
    from repro.storage.atomic import atomic_write_bytes

    data = text.encode("utf-8")
    if path.suffix == ".gz":
        data = gzip.compress(data)
    atomic_write_bytes(path, data)


def _read_text(path: pathlib.Path) -> str:
    if path.suffix == ".gz":
        try:
            with gzip.open(path, "rt") as handle:
                return handle.read()
        except FileNotFoundError:
            raise
        except (EOFError, OSError, UnicodeDecodeError, zlib.error) as exc:
            # gzip.BadGzipFile is an OSError, a truncated stream raises
            # EOFError, and corrupt deflate data raises zlib.error.  All
            # three mean the file is bad, not the caller.
            raise FormatError(f"{path}: corrupt gzip stream ({exc})") from exc
    return path.read_text()


def contacts_as_text(graph: TemporalGraph, *, header: bool = True) -> str:
    """Serialise the graph to the plain-text contact-list format."""
    lines = []
    if header:
        lines.append(f"# kind={graph.kind.value}")
        lines.append(f"# nodes={graph.num_nodes}")
        lines.append(f"# granularity={graph.granularity}")
        lines.append(f"# name={graph.name}")
    if graph.kind is GraphKind.INTERVAL:
        for c in graph.contacts:
            lines.append(f"{c.u} {c.v} {c.time} {c.duration}")
    else:
        for c in graph.contacts:
            lines.append(f"{c.u} {c.v} {c.time}")
    return "\n".join(lines) + "\n"


def write_contact_text(graph: TemporalGraph, path: PathLike) -> None:
    """Write the graph to ``path`` in contact-list format (gzip for .gz)."""
    _write_text(pathlib.Path(path), contacts_as_text(graph))


def read_contact_text(path: PathLike) -> TemporalGraph:
    """Parse a contact-list file produced by :func:`write_contact_text`."""
    kind = GraphKind.POINT
    num_nodes = None
    granularity = "step"
    name = "unnamed"
    contacts = []
    for lineno, line in enumerate(_read_text(pathlib.Path(path)).splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if "=" in body:
                key, _, value = body.partition("=")
                key = key.strip()
                value = value.strip()
                try:
                    if key == "kind":
                        kind = GraphKind(value)
                    elif key == "nodes":
                        num_nodes = int(value)
                    elif key == "granularity":
                        granularity = value
                    elif key == "name":
                        name = value
                except ValueError as exc:
                    raise FormatError(
                        f"line {lineno}: bad header value {key}={value!r} ({exc})"
                    ) from exc
            continue
        fields = line.split()
        if len(fields) not in (3, 4):
            raise FormatError(
                f"line {lineno}: expected 3 or 4 fields, got {line!r}"
            )
        try:
            values = [int(f) for f in fields]
        except ValueError:
            raise FormatError(
                f"line {lineno}: non-integer field in {line!r}"
            ) from None
        contacts.append(Contact(*values))
    if num_nodes is None:
        num_nodes = max((max(c.u, c.v) for c in contacts), default=-1) + 1
    return TemporalGraph(
        kind, num_nodes, contacts, name=name, granularity=granularity
    )
