"""Incremental construction of temporal graphs from contact streams."""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from repro.graph.model import Contact, GraphKind, TemporalGraph, max_label

ContactLike = Union[Contact, Tuple[int, ...]]


class TemporalGraphBuilder:
    """Accumulates contacts and produces a validated :class:`TemporalGraph`.

    The builder accepts bare tuples ``(u, v, t)`` or ``(u, v, t, duration)``
    as well as :class:`Contact` instances, infers the node count when not
    given, and sorts everything into the canonical (u, v, time) order.
    """

    def __init__(
        self,
        kind: GraphKind,
        *,
        num_nodes: Optional[int] = None,
        name: str = "unnamed",
        granularity: str = "step",
    ) -> None:
        self.kind = kind
        self._num_nodes = num_nodes
        self._name = name
        self._granularity = granularity
        self._contacts: List[Contact] = []

    def add(self, u: int, v: int, time: int, duration: int = 0) -> "TemporalGraphBuilder":
        """Append one contact; returns self for chaining."""
        self._contacts.append(Contact(u, v, time, duration))
        return self

    def add_all(self, contacts: Iterable[ContactLike]) -> "TemporalGraphBuilder":
        """Append contacts given as Contact objects or plain tuples."""
        for c in contacts:
            if isinstance(c, Contact):
                self._contacts.append(c)
            else:
                self._contacts.append(Contact(*c))
        return self

    @property
    def num_pending(self) -> int:
        """Contacts accumulated so far."""
        return len(self._contacts)

    def build(self) -> TemporalGraph:
        """Produce the immutable graph, inferring num_nodes if needed."""
        n = self._num_nodes
        if n is None:
            n = max_label(self._contacts) + 1
        return TemporalGraph(
            self.kind,
            n,
            self._contacts,
            name=self._name,
            granularity=self._granularity,
        )


def graph_from_contacts(
    kind: GraphKind,
    contacts: Iterable[ContactLike],
    *,
    num_nodes: Optional[int] = None,
    name: str = "unnamed",
    granularity: str = "step",
) -> TemporalGraph:
    """One-shot convenience wrapper around :class:`TemporalGraphBuilder`."""
    builder = TemporalGraphBuilder(
        kind, num_nodes=num_nodes, name=name, granularity=granularity
    )
    builder.add_all(contacts)
    return builder.build()
