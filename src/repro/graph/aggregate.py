"""Time aggregation (Section IV-C of the paper).

ChronoGraph stores actual timestamps and lets the user trade temporal
resolution for space: "we use the quotient of the division of each timestamp
with the desired aggregation expressed in seconds".  Coarser resolutions
produce smaller gaps and hence smaller representations (Figure 6).

For interval graphs the paper does not spell out how durations aggregate; we
map a contact ``[t, t + dt)`` to the bucket range it overlaps, i.e. start
``t // r`` and duration ``ceil((t + dt) / r) - t // r`` (at least 1 bucket
when the original duration was positive), which preserves activity queries at
the coarser resolution.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from repro.graph.model import Contact, GraphKind, TemporalGraph

#: Handy resolutions, in seconds, for datasets whose granularity is seconds.
RESOLUTIONS = {
    "second": 1,
    "minute": 60,
    "half-hour": 1800,
    "hour": 3600,
    "day": 86400,
    "week": 604800,
}


def aggregate(graph: TemporalGraph, resolution: int, *, name: str | None = None) -> TemporalGraph:
    """Return a copy of ``graph`` with timestamps bucketed by ``resolution``.

    ``resolution`` is expressed in the graph's own granularity units
    (seconds for the second-granularity datasets).  ``resolution == 1``
    returns an equivalent graph unchanged in content.
    """
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    if resolution == 1:
        contacts = graph.contacts
    elif graph.kind is GraphKind.INTERVAL:
        contacts = [
            Contact(
                c.u,
                c.v,
                c.time // resolution,
                _aggregate_duration(c.time, c.duration, resolution),
            )
            for c in graph.contacts
        ]
    else:
        contacts = [
            Contact(c.u, c.v, c.time // resolution) for c in graph.contacts
        ]
    return TemporalGraph(
        graph.kind,
        graph.num_nodes,
        contacts,
        name=name or f"{graph.name}@{resolution}",
        granularity=f"{graph.granularity}x{resolution}",
    )


def _aggregate_duration(time: int, duration: int, resolution: int) -> int:
    if duration == 0:
        return 0
    start = time // resolution
    end = -(-(time + duration) // resolution)  # ceil division
    return max(1, end - start)


def aggregate_timestamps(timestamps: list[int], resolution: int) -> list[int]:
    """Bucket a bare list of timestamps; used by the Table II bench."""
    if resolution < 1:
        raise ValueError(f"resolution must be >= 1, got {resolution}")
    return [t // resolution for t in timestamps]
