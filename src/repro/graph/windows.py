"""Sliding-window utilities over temporal graphs.

The paper's motivating analyses all operate on time windows (weekly
community detection, historical PageRank, per-hour anomaly scoring).  These
helpers standardise window generation and per-window activity series so the
algorithms and examples share one vocabulary.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


def sliding_windows(
    t_start: int, t_end: int, width: int, step: int | None = None
) -> Iterator[Tuple[int, int]]:
    """Yield inclusive (start, end) windows covering [t_start, t_end].

    ``step`` defaults to ``width`` (tumbling windows); smaller steps give
    overlapping windows.  The final window is clipped to ``t_end``.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if step is None:
        step = width
    if step < 1:
        raise ValueError(f"step must be >= 1, got {step}")
    t = t_start
    while t <= t_end:
        yield (t, min(t + width - 1, t_end))
        t += step


def activity_series(
    graph, u: int, t_start: int, t_end: int, width: int
) -> List[Tuple[int, int]]:
    """Per-window count of ``u``'s distinct active neighbors.

    ``graph`` is anything exposing ``neighbors(u, t1, t2)``.
    """
    return [
        (w_start, len(graph.neighbors(u, w_start, w_end)))
        for w_start, w_end in sliding_windows(t_start, t_end, width)
    ]


def edge_count_series(
    graph, t_start: int, t_end: int, width: int
) -> List[Tuple[int, int]]:
    """Per-window count of distinct active edges across the whole graph."""
    out: List[Tuple[int, int]] = []
    for w_start, w_end in sliding_windows(t_start, t_end, width):
        count = 0
        for u in range(graph.num_nodes):
            count += len(graph.neighbors(u, w_start, w_end))
        out.append((w_start, count))
    return out


def busiest_window(
    graph, t_start: int, t_end: int, width: int
) -> Tuple[int, int]:
    """(window start, edge count) of the most active window."""
    series = edge_count_series(graph, t_start, t_end, width)
    if not series:
        raise ValueError("empty window range")
    return max(series, key=lambda pair: pair[1])
