"""Degree-distribution utilities for dataset validation and analysis.

The paper's compression techniques presuppose skewed degree structure
(hubs make references and dense rows worthwhile); these helpers quantify
that skew -- histograms, complementary CDFs and the Gini coefficient --
so generated datasets can be validated against the property the codecs
bank on.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.graph.model import TemporalGraph


def degree_sequences(graph: TemporalGraph) -> Tuple[List[int], List[int]]:
    """(out, in) contact-degree per node (multiset degrees, as in Fig. 5a)."""
    out_deg = [0] * graph.num_nodes
    in_deg = [0] * graph.num_nodes
    for c in graph.contacts:
        out_deg[c.u] += 1
        in_deg[c.v] += 1
    return out_deg, in_deg


def distinct_degree_sequences(graph: TemporalGraph) -> Tuple[List[int], List[int]]:
    """(out, in) distinct-neighbor degree per node."""
    out_sets = [set() for _ in range(graph.num_nodes)]
    in_sets = [set() for _ in range(graph.num_nodes)]
    for c in graph.contacts:
        out_sets[c.u].add(c.v)
        in_sets[c.v].add(c.u)
    return [len(s) for s in out_sets], [len(s) for s in in_sets]


def degree_histogram(degrees: List[int]) -> Dict[int, int]:
    """degree -> node count."""
    return dict(Counter(degrees))


def degree_ccdf(degrees: List[int]) -> List[Tuple[int, float]]:
    """(degree, P(D >= degree)) pairs, ascending -- the standard log-log plot."""
    if not degrees:
        return []
    n = len(degrees)
    counts = Counter(degrees)
    out: List[Tuple[int, float]] = []
    at_least = n
    for degree in sorted(counts):
        out.append((degree, at_least / n))
        at_least -= counts[degree]
    return out


def gini_coefficient(values: List[int]) -> float:
    """Gini of a non-negative sequence: 0 = equal, -> 1 = concentrated.

    Computed with the sorted-rank formula; an empty or all-zero sequence
    has Gini 0 by convention.
    """
    if not values:
        return 0.0
    if any(v < 0 for v in values):
        raise ValueError("gini requires non-negative values")
    total = sum(values)
    if total == 0:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    weighted = sum((i + 1) * v for i, v in enumerate(ordered))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


def hub_share(degrees: List[int], top_fraction: float = 0.01) -> float:
    """Share of all degree mass held by the top ``top_fraction`` of nodes."""
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    if not degrees:
        return 0.0
    total = sum(degrees)
    if total == 0:
        return 0.0
    k = max(1, int(len(degrees) * top_fraction))
    return sum(sorted(degrees, reverse=True)[:k]) / total
