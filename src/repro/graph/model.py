"""The temporal graph model shared by ChronoGraph and every baseline.

A :class:`TemporalGraph` is an immutable collection of :class:`Contact`
records plus the graph kind.  It provides the *reference* (uncompressed)
implementations of the paper's queries, which the test suite uses as the
oracle against which every compressed representation is checked.

Activity semantics per kind (Section III-A):

* ``POINT`` -- a contact is active exactly at its timestamp.
* ``INTERVAL`` -- a contact ``(u, v, t, dt)`` is active during ``[t, t + dt)``;
  the paper calls these *contact graphs*.
* ``INCREMENTAL`` -- a contact at ``t`` creates an edge that persists forever.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple


class GraphKind(enum.Enum):
    """The three temporal graph classes managed by the framework."""

    POINT = "point"
    INTERVAL = "interval"
    INCREMENTAL = "incremental"


class Contact(NamedTuple):
    """One timestamped (multi-)edge.

    ``duration`` is only meaningful for interval graphs; point and
    incremental graphs carry ``duration == 0``.
    """

    u: int
    v: int
    time: int
    duration: int = 0

    @property
    def end(self) -> int:
        """First instant at which the contact is no longer active."""
        return self.time + self.duration

    def is_active(self, t_start: int, t_end: int, kind: GraphKind) -> bool:
        """Whether this contact makes its edge active within [t_start, t_end].

        An inverted window (``t_end < t_start``) is empty by definition.
        """
        if t_end < t_start:
            return False
        if kind is GraphKind.POINT:
            return t_start <= self.time <= t_end
        if kind is GraphKind.INCREMENTAL:
            return self.time <= t_end
        # INTERVAL: active during [time, time + duration); closed query
        # window.  A zero-duration contact spans an empty interval and is
        # never active.
        return self.duration > 0 and self.time <= t_end and self.end > t_start


class TemporalGraph:
    """An immutable temporal graph over nodes ``0 .. num_nodes - 1``.

    Contacts are stored sorted by ``(u, v, time)`` -- the exact ordering
    contract the paper's dual representation relies on ("the order of the
    timestamps is defined by the labels of the nodes and the values of the
    timestamps", Section IV-B).
    """

    def __init__(
        self,
        kind: GraphKind,
        num_nodes: int,
        contacts: Sequence[Contact],
        *,
        name: str = "unnamed",
        granularity: str = "step",
        sort: bool = True,
    ) -> None:
        if num_nodes < 0:
            raise ValueError(f"negative node count: {num_nodes}")
        contact_list = list(contacts)
        for c in contact_list:
            if not (0 <= c.u < num_nodes and 0 <= c.v < num_nodes):
                raise ValueError(f"contact {c} references node >= {num_nodes}")
            if c.duration < 0:
                raise ValueError(f"negative duration in {c}")
            if kind is not GraphKind.INTERVAL and c.duration:
                raise ValueError(
                    f"{kind.value} graphs cannot carry durations: {c}"
                )
        if sort:
            contact_list.sort()
        self.kind = kind
        self.num_nodes = num_nodes
        self.name = name
        self.granularity = granularity
        self._contacts: List[Contact] = contact_list
        self._adjacency: Dict[int, List[Contact]] | None = None

    # -- basic accessors ---------------------------------------------------

    @property
    def contacts(self) -> List[Contact]:
        """All contacts sorted by (u, v, time)."""
        return self._contacts

    @property
    def num_contacts(self) -> int:
        """Number of contacts -- the denominator of every bits/contact figure."""
        return len(self._contacts)

    @property
    def num_edges(self) -> int:
        """Number of distinct (u, v) pairs over the whole lifetime."""
        return len({(c.u, c.v) for c in self._contacts})

    @property
    def t_min(self) -> int:
        """Smallest timestamp; 0 for an empty graph."""
        return min((c.time for c in self._contacts), default=0)

    @property
    def t_max(self) -> int:
        """Largest timestamp (start times only); 0 for an empty graph."""
        return max((c.time for c in self._contacts), default=0)

    @property
    def lifetime(self) -> int:
        """Span between the first and last event, in granularity units."""
        if not self._contacts:
            return 0
        if self.kind is GraphKind.INTERVAL:
            last = max(c.end for c in self._contacts)
        else:
            last = self.t_max
        return last - self.t_min

    def __len__(self) -> int:
        return self.num_contacts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalGraph({self.name!r}, kind={self.kind.value}, "
            f"nodes={self.num_nodes}, contacts={self.num_contacts})"
        )

    # -- adjacency views ----------------------------------------------------

    def _ensure_adjacency(self) -> Dict[int, List[Contact]]:
        if self._adjacency is None:
            adjacency: Dict[int, List[Contact]] = {}
            for c in self._contacts:
                adjacency.setdefault(c.u, []).append(c)
            self._adjacency = adjacency
        return self._adjacency

    def contacts_of(self, u: int) -> List[Contact]:
        """Contacts with source ``u``, sorted by (neighbor label, time).

        This is the ordering contract shared by the structure and timestamp
        representations: the i-th neighbor in the sorted multiset corresponds
        to the i-th timestamp.
        """
        self._check_node(u)
        return self._ensure_adjacency().get(u, [])

    def out_degree(self, u: int) -> int:
        """Number of contacts leaving ``u`` (multiset size, as in Fig. 5a)."""
        return len(self.contacts_of(u))

    def distinct_neighbors(self, u: int) -> List[int]:
        """Sorted distinct neighbor labels of ``u``."""
        seen: List[int] = []
        for c in self.contacts_of(u):
            if not seen or seen[-1] != c.v:
                seen.append(c.v)
        return seen

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    # -- reference queries (test oracle) ------------------------------------

    def ref_has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        """Uncompressed reference for Algorithm 1."""
        return any(
            c.v == v and c.is_active(t_start, t_end, self.kind)
            for c in self.contacts_of(u)
        )

    def ref_neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        """Sorted distinct neighbors of ``u`` active within [t_start, t_end]."""
        out: List[int] = []
        for c in self.contacts_of(u):
            if c.is_active(t_start, t_end, self.kind):
                if not out or out[-1] != c.v:
                    out.append(c.v)
        return out

    def ref_edge_timestamps(self, u: int, v: int) -> List[int]:
        """All activation timestamps recorded for the edge (u, v)."""
        return [c.time for c in self.contacts_of(u) if c.v == v]

    def ref_snapshot(self, t_start: int, t_end: int) -> List[Tuple[int, int]]:
        """All distinct edges active within the interval, sorted."""
        edges = {
            (c.u, c.v)
            for c in self._contacts
            if c.is_active(t_start, t_end, self.kind)
        }
        return sorted(edges)

    # -- convenience --------------------------------------------------------

    def nodes(self) -> range:
        """Iterable over node labels."""
        return range(self.num_nodes)

    def active_nodes(self) -> List[int]:
        """Nodes with at least one outgoing contact."""
        return sorted(self._ensure_adjacency())


def max_label(contacts: Iterable[Contact]) -> int:
    """Largest node label appearing in an iterable of contacts (-1 if empty)."""
    top = -1
    for c in contacts:
        if c.u > top:
            top = c.u
        if c.v > top:
            top = c.v
    return top
