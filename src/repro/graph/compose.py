"""Composing temporal graphs: unions, time shifts, disjoint merges.

Experiment pipelines routinely stitch graphs together -- appending a new
day of data, injecting an attack trace into background traffic (the
anomaly example), or laying two communities side by side.  These helpers
keep such compositions explicit and validated.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.graph.model import Contact, TemporalGraph


def union(
    graphs: Sequence[TemporalGraph],
    *,
    name: Optional[str] = None,
) -> TemporalGraph:
    """All contacts of all graphs over a shared label space.

    Every input must have the same kind; the node space is the maximum of
    the inputs'.  Duplicated contacts are kept (temporal graphs are
    multigraphs).
    """
    if not graphs:
        raise ValueError("union of no graphs")
    kind = graphs[0].kind
    for g in graphs[1:]:
        if g.kind is not kind:
            raise ValueError(
                f"cannot union {kind.value} with {g.kind.value} graphs"
            )
    contacts = [c for g in graphs for c in g.contacts]
    return TemporalGraph(
        kind,
        max(g.num_nodes for g in graphs),
        contacts,
        name=name or "+".join(g.name for g in graphs),
        granularity=graphs[0].granularity,
    )


def shift_time(
    graph: TemporalGraph,
    offset: int,
    *,
    name: Optional[str] = None,
) -> TemporalGraph:
    """The same graph with every timestamp moved by ``offset``.

    Negative offsets must not push any timestamp below zero.
    """
    if offset < 0 and graph.contacts and graph.t_min + offset < 0:
        raise ValueError(
            f"shift by {offset} would produce negative timestamps"
        )
    contacts = [
        Contact(c.u, c.v, c.time + offset, c.duration) for c in graph.contacts
    ]
    return TemporalGraph(
        graph.kind,
        graph.num_nodes,
        contacts,
        name=name or f"{graph.name}@+{offset}",
        granularity=graph.granularity,
    )


def disjoint_union(
    graphs: Sequence[TemporalGraph],
    *,
    name: Optional[str] = None,
) -> TemporalGraph:
    """Graphs laid side by side over disjoint label ranges.

    Graph ``i``'s nodes are offset by the total node count of the graphs
    before it, so no labels collide -- the composition used to build
    multi-community testbeds.
    """
    if not graphs:
        raise ValueError("disjoint union of no graphs")
    kind = graphs[0].kind
    contacts = []
    offset = 0
    for g in graphs:
        if g.kind is not kind:
            raise ValueError(
                f"cannot union {kind.value} with {g.kind.value} graphs"
            )
        for c in g.contacts:
            contacts.append(Contact(c.u + offset, c.v + offset, c.time, c.duration))
        offset += g.num_nodes
    return TemporalGraph(
        kind,
        offset,
        contacts,
        name=name or "|".join(g.name for g in graphs),
        granularity=graphs[0].granularity,
    )


def concatenate_epochs(
    graphs: Sequence[TemporalGraph],
    *,
    gap: int = 1,
    name: Optional[str] = None,
) -> TemporalGraph:
    """Graphs appended along the time axis, each starting after the last.

    Graph ``i`` is shifted so its first event begins ``gap`` units after
    graph ``i-1``'s lifetime ends -- "a new day of data appended".
    """
    if not graphs:
        raise ValueError("concatenation of no graphs")
    if gap < 0:
        raise ValueError(f"negative gap: {gap}")
    shifted = []
    cursor = 0
    for g in graphs:
        offset = cursor - g.t_min
        shifted.append(shift_time(g, offset) if offset else g)
        cursor += g.lifetime + gap
    return union(shifted, name=name or "->".join(g.name for g in graphs))
