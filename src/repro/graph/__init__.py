"""Temporal graph model, builders, IO and time aggregation.

The model follows Section III-A of the paper:

* **point graphs** -- each contact is a triplet ``(u, v, t)``;
* **interval ("contact") graphs** -- each contact is ``(u, v, t, dt)``,
  active during ``[t, t + dt)``;
* **incremental graphs** -- edges are only ever added; a contact at ``t``
  means the edge exists from ``t`` onwards.
"""

from repro.graph.model import Contact, GraphKind, TemporalGraph
from repro.graph.builders import TemporalGraphBuilder
from repro.graph.aggregate import aggregate
from repro.graph.io import read_contact_text, write_contact_text, contacts_as_text
from repro.graph.reorder import apply_relabeling, bfs_order, degree_order
from repro.graph.stats import GraphSummary, summarize
from repro.graph.windows import activity_series, sliding_windows
from repro.graph.slicing import induced_subgraph, sample_contacts, slice_time
from repro.graph.compose import concatenate_epochs, disjoint_union, shift_time, union
from repro.graph.degrees import degree_ccdf, degree_sequences, gini_coefficient

__all__ = [
    "Contact",
    "GraphKind",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "aggregate",
    "read_contact_text",
    "write_contact_text",
    "contacts_as_text",
    "apply_relabeling",
    "bfs_order",
    "degree_order",
    "GraphSummary",
    "summarize",
    "activity_series",
    "sliding_windows",
    "induced_subgraph",
    "sample_contacts",
    "slice_time",
    "concatenate_epochs",
    "disjoint_union",
    "shift_time",
    "union",
    "degree_ccdf",
    "degree_sequences",
    "gini_coefficient",
]
