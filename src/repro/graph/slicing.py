"""Sub-dataset extraction, the way the paper builds its -sub graphs.

Section V-A: "we also generated a subgraph (Wiki-Links-sub) using part of
the raw data" and Figure 3 studies "two subgraphs of Wiki-Links ... with
time spans lasting one month and six months".  These helpers perform those
extractions on any temporal graph:

* :func:`slice_time` -- keep the contacts of a time span;
* :func:`induced_subgraph` -- keep the contacts among a node subset;
* :func:`sample_contacts` -- uniform contact sampling (for quick sweeps).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from repro.graph.model import Contact, GraphKind, TemporalGraph


def slice_time(
    graph: TemporalGraph,
    t_start: int,
    t_end: int,
    *,
    clip_durations: bool = True,
    name: Optional[str] = None,
) -> TemporalGraph:
    """Contacts whose activity intersects the inclusive [t_start, t_end].

    Point and incremental contacts are kept iff their timestamp lies in the
    window.  Interval contacts are kept iff they are active somewhere in the
    window; with ``clip_durations`` their span is clipped to it (the natural
    reading of "one month of the data").
    """
    if t_end < t_start:
        raise ValueError(f"inverted window [{t_start}, {t_end}]")
    out = []
    if graph.kind is GraphKind.INTERVAL:
        for c in graph.contacts:
            if not c.is_active(t_start, t_end, graph.kind):
                continue
            if clip_durations:
                start = max(c.time, t_start)
                end = min(c.end, t_end + 1)
                out.append(Contact(c.u, c.v, start, end - start))
            else:
                out.append(c)
    else:
        out = [c for c in graph.contacts if t_start <= c.time <= t_end]
    return TemporalGraph(
        graph.kind,
        graph.num_nodes,
        out,
        name=name or f"{graph.name}[{t_start}:{t_end}]",
        granularity=graph.granularity,
    )


def induced_subgraph(
    graph: TemporalGraph,
    nodes: Iterable[int],
    *,
    relabel: bool = True,
    name: Optional[str] = None,
) -> TemporalGraph:
    """Contacts with both endpoints in ``nodes``.

    With ``relabel`` (default) the kept nodes are renumbered contiguously in
    ascending original order, shrinking the label space the way a published
    sub-dataset would.
    """
    keep = sorted(set(nodes))
    for n in keep:
        if not 0 <= n < graph.num_nodes:
            raise ValueError(f"node {n} outside [0, {graph.num_nodes})")
    keep_set = set(keep)
    mapping = {old: new for new, old in enumerate(keep)}
    contacts = []
    for c in graph.contacts:
        if c.u in keep_set and c.v in keep_set:
            if relabel:
                contacts.append(Contact(mapping[c.u], mapping[c.v], c.time, c.duration))
            else:
                contacts.append(c)
    return TemporalGraph(
        graph.kind,
        len(keep) if relabel else graph.num_nodes,
        contacts,
        name=name or f"{graph.name}+induced",
        granularity=graph.granularity,
    )


def sample_contacts(
    graph: TemporalGraph,
    fraction: float,
    *,
    seed: int = 0,
    name: Optional[str] = None,
) -> TemporalGraph:
    """A uniform sample of the contacts (node space unchanged)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    contacts = [c for c in graph.contacts if rng.random() < fraction]
    return TemporalGraph(
        graph.kind,
        graph.num_nodes,
        contacts,
        name=name or f"{graph.name}~{fraction}",
        granularity=graph.granularity,
    )
