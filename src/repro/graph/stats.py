"""Summary statistics in the shape of the paper's Table III.

``summarize`` produces the row the paper prints per dataset -- nodes,
edges, contacts, time steps, lifetime, granularity -- plus the density
figures the evaluation discusses (average contacts per node drives
ChronoGraph's access times, Section V-D).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.graph.model import GraphKind, TemporalGraph


@dataclasses.dataclass(frozen=True)
class GraphSummary:
    """One Table III row plus derived densities."""

    name: str
    kind: str
    num_nodes: int
    num_edges: int
    num_contacts: int
    time_steps: int
    lifetime: int
    granularity: str
    contacts_per_node: float
    contacts_per_edge: float
    max_out_degree: int

    def as_row(self) -> List[str]:
        """Formatted cells in Table III column order."""
        return [
            self.name,
            self.kind,
            f"{self.num_nodes:,}",
            f"{self.num_edges:,}",
            f"{self.num_contacts:,}",
            f"{self.time_steps:,}",
            f"{self.lifetime:,}",
            self.granularity,
            f"{self.contacts_per_node:.1f}",
        ]


def summarize(graph: TemporalGraph) -> GraphSummary:
    """Compute the summary row of a temporal graph."""
    distinct_times = len({c.time for c in graph.contacts})
    active = graph.active_nodes()
    max_out = max((graph.out_degree(u) for u in active), default=0)
    nodes = max(1, graph.num_nodes)
    edges = graph.num_edges
    return GraphSummary(
        name=graph.name,
        kind=graph.kind.value,
        num_nodes=graph.num_nodes,
        num_edges=edges,
        num_contacts=graph.num_contacts,
        time_steps=distinct_times,
        lifetime=graph.lifetime,
        granularity=graph.granularity,
        contacts_per_node=graph.num_contacts / nodes,
        contacts_per_edge=graph.num_contacts / max(1, edges),
        max_out_degree=max_out,
    )


TABLE3_HEADERS = [
    "Graph", "Type", "Nodes", "Edges", "Contacts",
    "Time steps", "Lifetime", "Granularity", "Contacts/node",
]
