"""Node relabeling for locality (Section III-B of the paper).

Web graphs get locality of reference for free from URL-ordered labels;
"the same can also be observed in other types of graphs created by human
activity ... after applying on their nodes a proper reordering algorithm"
(the paper cites Boldi et al.'s permutation studies).  This module provides
the two classic cheap reorderings plus the machinery to apply any
permutation to a temporal graph:

* :func:`bfs_order` -- breadth-first numbering over the undirected
  aggregated structure (Apostolico & Drovandi's approach), which places
  topologically close nodes at nearby labels;
* :func:`degree_order` -- hubs first, concentrating the high-traffic rows;
* :func:`apply_relabeling` -- rebuild the graph under a permutation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.graph.model import Contact, TemporalGraph


def _undirected_adjacency(graph: TemporalGraph) -> Dict[int, set]:
    adjacency: Dict[int, set] = {u: set() for u in range(graph.num_nodes)}
    for c in graph.contacts:
        adjacency[c.u].add(c.v)
        adjacency[c.v].add(c.u)
    return adjacency


def bfs_order(graph: TemporalGraph) -> List[int]:
    """Permutation ``perm[old] = new`` from breadth-first traversal.

    Components are visited in order of their smallest member; within a
    component, neighbors are expanded in ascending label order, giving a
    deterministic numbering.
    """
    adjacency = _undirected_adjacency(graph)
    perm: List[int] = [-1] * graph.num_nodes
    next_label = 0
    for root in range(graph.num_nodes):
        if perm[root] >= 0:
            continue
        queue = deque([root])
        perm[root] = next_label
        next_label += 1
        while queue:
            u = queue.popleft()
            for v in sorted(adjacency[u]):
                if perm[v] < 0:
                    perm[v] = next_label
                    next_label += 1
                    queue.append(v)
    return perm


def degree_order(graph: TemporalGraph) -> List[int]:
    """Permutation placing high-degree nodes at the smallest labels."""
    degree = [0] * graph.num_nodes
    for c in graph.contacts:
        degree[c.u] += 1
        degree[c.v] += 1
    ranked = sorted(range(graph.num_nodes), key=lambda u: (-degree[u], u))
    perm = [0] * graph.num_nodes
    for new, old in enumerate(ranked):
        perm[old] = new
    return perm


def identity_order(graph: TemporalGraph) -> List[int]:
    """The no-op permutation (baseline for reordering experiments)."""
    return list(range(graph.num_nodes))


def llp_order(
    graph: TemporalGraph,
    *,
    gammas: tuple = (0.0, 0.5, 1.0, 2.0),
    rounds: int = 8,
    seed: int = 0,
) -> List[int]:
    """Layered Label Propagation ordering (Boldi et al., simplified).

    LLP runs label propagation at several resolutions (the gamma penalty on
    community size), then orders nodes lexicographically by their label
    vector across layers -- nodes sharing fine- and coarse-grained
    communities land on adjacent labels.  This is the reordering the paper
    cites for making social networks compress like web graphs.
    """
    import random as _random

    adjacency = _undirected_adjacency(graph)
    n = graph.num_nodes
    rng = _random.Random(seed)
    layers: List[List[int]] = []
    for gamma in gammas:
        labels = list(range(n))
        order = list(range(n))
        for _ in range(rounds):
            rng.shuffle(order)
            changed = False
            volume: dict = {}
            for u in range(n):
                volume[labels[u]] = volume.get(labels[u], 0) + 1
            for u in order:
                if not adjacency[u]:
                    continue
                counts: dict = {}
                for v in adjacency[u]:
                    counts[labels[v]] = counts.get(labels[v], 0) + 1
                # LLP objective: neighbors in the community minus a gamma
                # penalty on its total volume.
                best_label, best_score = labels[u], float("-inf")
                for candidate, k in counts.items():
                    score = k - gamma * (volume.get(candidate, 0) - (
                        1 if candidate == labels[u] else 0
                    ))
                    if score > best_score or (
                        score == best_score and candidate < best_label
                    ):
                        best_label, best_score = candidate, score
                if best_label != labels[u]:
                    volume[labels[u]] -= 1
                    volume[best_label] = volume.get(best_label, 0) + 1
                    labels[u] = best_label
                    changed = True
            if not changed:
                break
        layers.append(labels)
    ranked = sorted(range(n), key=lambda u: tuple(layer[u] for layer in layers) + (u,))
    perm = [0] * n
    for new, old in enumerate(ranked):
        perm[old] = new
    return perm


def apply_relabeling(graph: TemporalGraph, perm: List[int]) -> TemporalGraph:
    """The same temporal graph with node ``u`` renamed to ``perm[u]``.

    ``perm`` must be a permutation of ``range(num_nodes)``.  Timestamps and
    durations are untouched; only labels move, so every activity query on
    the result equals the original query under the renaming.
    """
    if len(perm) != graph.num_nodes:
        raise ValueError(
            f"permutation has {len(perm)} entries for {graph.num_nodes} nodes"
        )
    if sorted(perm) != list(range(graph.num_nodes)):
        raise ValueError("not a permutation of the node label space")
    contacts = [
        Contact(perm[c.u], perm[c.v], c.time, c.duration)
        for c in graph.contacts
    ]
    return TemporalGraph(
        graph.kind,
        graph.num_nodes,
        contacts,
        name=f"{graph.name}+reordered",
        granularity=graph.granularity,
    )
