"""Blocking client for the graph service protocol.

One :class:`ServiceClient` wraps one TCP connection.  Calls are
synchronous request/response; a server-side failure raises
:class:`ServiceError` carrying the server's exception class name and its
``retry_after`` hint (populated for governor shedding and breaker skips),
so callers can back off exactly as library users of
:class:`repro.errors.RejectedError` do.  The instance is not thread-safe;
give each thread its own client (connections are cheap, the server is
multi-process).

    with ServiceClient.from_url("tcp://127.0.0.1:7421", tenant="web") as c:
        neighbors = c.neighbors(42, 0, 1000)
        answers = c.neighbors_many([(1, 0, 10), (2, 0, 10)])
        if c.last_skipped:
            ...  # subset answer: some segments were breaker-skipped
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DomainError
from repro.service.protocol import ProtocolError, recv_message, send_message

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request the server answered with an error frame.

    ``error_type`` is the server-side exception class name (e.g.
    ``"RejectedError"``, ``"QueryTimeout"``); ``retry_after`` is the
    structured backoff hint in seconds when the server supplied one.
    """

    def __init__(
        self,
        error_type: str,
        message: str,
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.retry_after = retry_after


class ServiceClient:
    """One connection to a running :class:`repro.service.GraphService`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: Optional[str] = None,
        timeout_ms: Optional[int] = None,
        allow_partial: bool = False,
        connect_timeout: float = 10.0,
    ) -> None:
        self.tenant = tenant
        self.timeout_ms = timeout_ms
        self.allow_partial = allow_partial
        #: ``skipped`` annotations from the most recent call (subset answer
        #: markers); empty for a complete answer.
        self.last_skipped: List[Dict[str, Any]] = []
        self._next_id = 0
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "ServiceClient":
        """Connect to a ``tcp://host:port`` address."""
        if not url.startswith("tcp://"):
            raise DomainError(f"expected tcp://host:port, got {url!r}")
        hostport = url[len("tcp://"):]
        host, sep, port = hostport.rpartition(":")
        if not sep or not port.isdigit():
            raise DomainError(f"expected tcp://host:port, got {url!r}")
        return cls(host or "127.0.0.1", int(port), **kwargs)

    # -- plumbing ------------------------------------------------------

    def _call(self, op: str, params: Optional[Dict[str, Any]] = None) -> Any:
        self._next_id += 1
        request: Dict[str, Any] = {"id": self._next_id, "op": op}
        if params:
            request["params"] = params
        if self.tenant is not None:
            request["tenant"] = self.tenant
        if self.timeout_ms is not None:
            request["timeout_ms"] = self.timeout_ms
        if self.allow_partial:
            request["allow_partial"] = True
        send_message(self._sock, request)
        response = recv_message(self._sock)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if response.get("id") not in (self._next_id, None):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("type", "UnknownError")),
                str(error.get("message", "")),
                retry_after=error.get("retry_after"),
            )
        self.last_skipped = list(response.get("skipped") or [])
        return response.get("result")

    # -- query surface -------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; the response names the worker that answered."""
        return self._call("ping")

    def stats(self) -> Dict[str, Any]:
        """One worker's graph counts and governor statistics."""
        return self._call("stats")

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        """Distinct neighbors of ``u`` active in the closed window, sorted."""
        return self._call("neighbors", {"args": [u, t_start, t_end]})

    def neighbors_many(
        self, queries: Sequence[Tuple[int, int, int]]
    ) -> List[List[int]]:
        """Batch :meth:`neighbors`; answers align with the input order."""
        return self._call(
            "neighbors_many", {"queries": [list(q) for q in queries]}
        )

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        """Whether edge (u, v) is active anywhere in the closed window."""
        return bool(self._call("has_edge", {"args": [u, v, t_start, t_end]}))

    def snapshot(self, t_start: int, t_end: int) -> List[Tuple[int, int]]:
        """All distinct edges active within the closed window, sorted."""
        return [
            (u, v) for u, v in self._call("snapshot", {"args": [t_start, t_end]})
        ]

    def edge_timestamps(self, u: int, v: int) -> List[int]:
        """All activation timestamps of edge (u, v), ascending."""
        return self._call("edge_timestamps", {"args": [u, v]})

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Close the connection; further calls raise."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
