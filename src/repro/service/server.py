"""Supervisor + N worker processes serving one mapped graph store.

Topology: the supervisor binds the listening socket, then forks N worker
processes that inherit it and ``accept()`` independently (the kernel load
balances).  Each worker opens the target -- a ``.chrono`` container or a
segment-store directory -- **itself**, read-only and memory-mapped, so
all workers (and any other process on the host) share a single copy of
the compressed graph in the OS page cache; per-worker heap holds only
offset indexes and caches.

Each worker owns a :class:`repro.runtime.Governor` configured from
:class:`ServiceConfig`: a request is admitted (or shed with a structured
``retry_after``) before any decoding starts, its ``timeout_ms`` becomes
the :class:`repro.runtime.QueryContext` deadline enforced at decode
checkpoints, and -- for segment stores -- breaker-skipped parts are
returned as ``skipped`` annotations rather than silent truncation.

Workers exit cleanly on SIGTERM/SIGINT; the supervisor respawns workers
that die unexpectedly and tears everything down in :meth:`GraphService.stop`.
On platforms without ``fork`` the service degrades to worker *threads* in
one process -- same protocol, same semantics, no page-cache claim.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DomainError, FormatError, QueryInterrupted, RejectedError
from repro.runtime.context import QueryContext
from repro.runtime.governor import Governor
from repro.service.protocol import ProtocolError, recv_message, send_message

__all__ = ["ServiceConfig", "GraphService", "open_query_target"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one service instance; see docs/operations.md for guidance."""

    #: Bind address; port 0 lets the kernel pick (read it back from
    #: :attr:`GraphService.address`).
    host: str = "127.0.0.1"
    port: int = 0
    #: Worker process count.  Workers share the page cache, so this scales
    #: CPU without scaling graph memory.
    workers: int = 2
    #: Per-worker admission cap (queries in flight before shedding).
    max_concurrent: int = 64
    #: Per-tenant token budgets (both or neither), per worker.
    tenant_rate: Optional[float] = None
    tenant_burst: Optional[float] = None
    #: Ceiling applied to client-requested ``timeout_ms``.
    max_timeout: float = 30.0
    #: Map the store (default) or load it into each worker's heap.
    mmap: bool = True


def open_query_target(path: str, *, mmap: bool = True):
    """Open ``path`` read-only for serving: container file or store dir.

    Returns an object exposing the query surface (``neighbors``,
    ``neighbors_many``, ``has_edge``, ``snapshot``, ``edge_timestamps``)
    -- a :class:`CompressedChronoGraph` for a ``.chrono`` file, a
    :class:`SegmentedChronoGraph` view for a segment-store directory.
    """
    from repro.core.serialize import load_compressed
    from repro.storage.segments import SegmentStore, is_segment_store

    if is_segment_store(path):
        store = SegmentStore.open(path, read_only=True, mmap=mmap)
        return store.graph
    return load_compressed(path, mmap=mmap)


# -- request handling (runs inside a worker) --------------------------------

def _int_list(values: Any, what: str) -> List[int]:
    if not isinstance(values, list):
        raise ProtocolError(f"{what} must be a list")
    try:
        return [int(v) for v in values]
    except (TypeError, ValueError):
        raise ProtocolError(f"{what} must hold integers") from None


def _build_context(
    request: Dict[str, Any], governor: Governor, config: ServiceConfig
) -> QueryContext:
    timeout: Optional[float] = None
    timeout_ms = request.get("timeout_ms")
    if timeout_ms is not None:
        try:
            timeout = min(float(timeout_ms) / 1000.0, config.max_timeout)
        except (TypeError, ValueError):
            raise ProtocolError("timeout_ms must be a number") from None
        if timeout <= 0:
            raise ProtocolError("timeout_ms must be positive")
    tenant = request.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise ProtocolError("tenant must be a string")
    return QueryContext(
        timeout=timeout,
        tenant=tenant,
        governor=governor,
        allow_partial=bool(request.get("allow_partial", False)),
    )


def _dispatch(graph, op: str, params: Dict[str, Any], ctx: QueryContext):
    if op == "neighbors":
        u, t1, t2 = _int_list(params.get("args"), "args")
        return graph.neighbors(u, t1, t2, ctx=ctx)
    if op == "neighbors_many":
        queries = params.get("queries")
        if not isinstance(queries, list):
            raise ProtocolError("queries must be a list of [u, t1, t2]")
        triples = [tuple(_int_list(q, "query")) for q in queries]
        for t in triples:
            if len(t) != 3:
                raise ProtocolError("each query must be [u, t1, t2]")
        return graph.neighbors_many(triples, ctx=ctx)
    if op == "has_edge":
        u, v, t1, t2 = _int_list(params.get("args"), "args")
        return graph.has_edge(u, v, t1, t2, ctx=ctx)
    if op == "snapshot":
        t1, t2 = _int_list(params.get("args"), "args")
        return [[u, v] for u, v in graph.snapshot(t1, t2, ctx=ctx)]
    if op == "edge_timestamps":
        u, v = _int_list(params.get("args"), "args")
        return graph.edge_timestamps(u, v, ctx=ctx)
    raise ProtocolError(f"unknown op {op!r}")


def _handle_request(
    graph,
    governor: Governor,
    config: ServiceConfig,
    request: Dict[str, Any],
    worker_id: int,
) -> Dict[str, Any]:
    """One request in, one response out; exceptions become error frames."""
    request_id = request.get("id")

    def failure(exc: Exception) -> Dict[str, Any]:
        error: Dict[str, Any] = {
            "type": type(exc).__name__,
            "message": str(exc),
        }
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            error["retry_after"] = retry_after
        return {"id": request_id, "ok": False, "error": error}

    try:
        op = request.get("op")
        if op == "ping":
            return {
                "id": request_id, "ok": True, "worker": worker_id,
                "result": {"pong": True, "pid": os.getpid()},
            }
        if op == "stats":
            return {
                "id": request_id, "ok": True, "worker": worker_id,
                "result": {
                    "pid": os.getpid(),
                    "num_nodes": graph.num_nodes,
                    "num_contacts": graph.num_contacts,
                    "governor": governor.stats(),
                },
            }
        if not isinstance(op, str):
            raise ProtocolError("request has no op")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("params must be an object")
        ctx = _build_context(request, governor, config)
        result = _dispatch(graph, op, params, ctx)
        response: Dict[str, Any] = {
            "id": request_id, "ok": True, "worker": worker_id,
            "result": result,
        }
        if ctx.skipped:
            response["skipped"] = [
                {
                    "part": s.part,
                    "reason": s.reason,
                    "retry_after": s.retry_after,
                }
                for s in ctx.skipped
            ]
        return response
    except (RejectedError, QueryInterrupted, FormatError, DomainError) as exc:
        return failure(exc)


def _serve_connection(
    conn: socket.socket,
    graph,
    governor: Governor,
    config: ServiceConfig,
    worker_id: int,
) -> None:
    """Run one connection's request loop until EOF or a framing violation."""
    try:
        conn.settimeout(None)
        while True:
            try:
                request = recv_message(conn)
            except ProtocolError as exc:
                # Framing is unrecoverable: report once, then hang up.
                try:
                    send_message(
                        conn,
                        {
                            "id": None, "ok": False,
                            "error": {"type": "ProtocolError", "message": str(exc)},
                        },
                    )
                except OSError:
                    pass
                return
            if request is None:
                return
            send_message(
                conn, _handle_request(graph, governor, config, request, worker_id)
            )
    except OSError:
        return  # peer vanished; nothing to clean up beyond the socket
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _worker_loop(
    listener: socket.socket,
    path: str,
    config: ServiceConfig,
    worker_id: int,
    *,
    stop: Optional[threading.Event] = None,
) -> None:
    """Accept loop shared by forked workers and the threaded fallback."""
    graph = open_query_target(path, mmap=config.mmap)
    governor = Governor(
        max_concurrent=config.max_concurrent,
        tenant_rate=config.tenant_rate,
        tenant_burst=config.tenant_burst,
    )
    while stop is None or not stop.is_set():
        try:
            conn, _addr = listener.accept()
        except OSError:
            return  # listener closed: shutdown
        thread = threading.Thread(
            target=_serve_connection,
            args=(conn, graph, governor, config, worker_id),
            name=f"repro-service-conn-{worker_id}",
            daemon=True,
        )
        thread.start()


def _worker_main(
    listener: socket.socket, path: str, config: ServiceConfig, worker_id: int
) -> None:
    """Entry point of a forked worker process."""

    def _shutdown(_signum, _frame):  # pragma: no cover - signal timing
        try:
            listener.close()
        except OSError:
            pass
        sys.exit(0)

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    _worker_loop(listener, path, config, worker_id)
    sys.exit(0)


class GraphService:
    """Supervisor owning the listener and the worker fleet.

    ``start()`` binds and spawns; ``serve_forever()`` supervises
    (respawning workers that die unexpectedly) until ``stop()``.  Usable
    as a context manager in tests.
    """

    def __init__(self, path: str, config: Optional[ServiceConfig] = None) -> None:
        self.path = str(path)
        self.config = config or ServiceConfig()
        self._listener: Optional[socket.socket] = None
        self._workers: List[multiprocessing.Process] = []
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._forked = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._listener is None:
            raise DomainError("service not started")
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def start(self) -> Tuple[str, int]:
        """Bind the listener, validate the target, spawn workers."""
        if self._listener is not None:
            raise DomainError("service already started")
        config = self.config
        if config.workers < 1:
            raise DomainError(f"workers must be >= 1, got {config.workers}")
        # Fail fast in the supervisor on an unreadable target instead of
        # letting every worker crash-loop on it.
        open_query_target(self.path, mmap=config.mmap)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((config.host, config.port))
        listener.listen(128)
        self._listener = listener
        try:
            mp = multiprocessing.get_context("fork")
            self._forked = True
        except ValueError:  # pragma: no cover - non-POSIX fallback
            mp = None
            self._forked = False
        for worker_id in range(config.workers):
            if mp is not None:
                process = mp.Process(
                    target=_worker_main,
                    args=(listener, self.path, config, worker_id),
                    name=f"repro-service-worker-{worker_id}",
                )
                process.start()
                self._workers.append(process)
            else:  # pragma: no cover - non-POSIX fallback
                thread = threading.Thread(
                    target=_worker_loop,
                    args=(listener, self.path, config, worker_id),
                    kwargs={"stop": self._stop},
                    name=f"repro-service-worker-{worker_id}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        return self.address

    def serve_forever(self, poll_interval: float = 0.2) -> None:
        """Supervise until :meth:`stop`: respawn workers that die."""
        while not self._stop.is_set():
            time.sleep(poll_interval)
            if not self._forked:
                continue
            for index, process in enumerate(self._workers):
                if process.is_alive() or self._stop.is_set():
                    continue
                if process.exitcode == 0:
                    continue  # clean exit (shutdown race); don't respawn
                print(
                    f"worker {index} died (exit {process.exitcode}); "
                    "respawning",
                    file=sys.stderr,
                )
                mp = multiprocessing.get_context("fork")
                replacement = mp.Process(
                    target=_worker_main,
                    args=(self._listener, self.path, self.config, index),
                    name=f"repro-service-worker-{index}",
                )
                replacement.start()
                self._workers[index] = replacement

    def stop(self) -> None:
        """Terminate workers, join them, close the listener."""
        self._stop.set()
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        for process in self._workers:
            process.join(timeout=5.0)
        self._workers = []
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self._threads = []

    def __enter__(self) -> "GraphService":
        self.start()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.stop()
