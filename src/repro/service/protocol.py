"""Length-prefixed JSON framing for the graph service.

Every message -- request or response, either direction -- is one frame:

* a 4-byte big-endian unsigned length ``n``,
* ``n`` bytes of UTF-8 JSON encoding one object.

Requests carry ``{"id": int, "op": str, "params": {...}}`` plus the
optional envelope fields ``tenant`` (admission-control budget key),
``timeout_ms`` (propagated into the worker-side deadline) and
``allow_partial`` (consent to breaker-annotated subset answers).

Responses echo the request ``id`` and carry either::

    {"id": ..., "ok": true,  "result": ..., "worker": int,
     "skipped": [{"part": str, "reason": str, "retry_after": float|null}]}

or::

    {"id": ..., "ok": false,
     "error": {"type": str, "message": str, "retry_after": float|null}}

``error.type`` is the server-side exception class name
(``RejectedError``, ``QueryTimeout``, ``GraphDomainError``, ...) so
clients can map failures back onto the library's exception taxonomy
without parsing messages.

Frames are bounded by :data:`MAX_FRAME_BYTES`; an over-long or
malformed frame raises :class:`ProtocolError` -- connections that
violate framing are torn down, never guessed at.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.errors import DomainError

__all__ = ["MAX_FRAME_BYTES", "ProtocolError", "send_message", "recv_message"]

#: Hard bound on one frame's JSON body.  Large enough for any sane batch
#: or snapshot answer; small enough that a corrupt length prefix cannot
#: trigger a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 << 20

_LEN = struct.Struct("!I")


class ProtocolError(DomainError):
    """A frame violated the wire contract (size, framing or JSON shape)."""


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Serialise ``message`` and write it as one length-prefixed frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"outgoing frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on a clean EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame; returns the decoded object, or None on clean EOF."""
    prefix = _recv_exact(sock, _LEN.size)
    if prefix is None:
        return None
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds {MAX_FRAME_BYTES}"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between prefix and body")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must decode to an object, got {type(message).__name__}"
        )
    return message
