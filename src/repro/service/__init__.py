"""Multi-process query service over memory-mapped containers.

The service front end (:mod:`repro.service.server`) runs one supervisor
and N worker processes.  Every worker opens the same ``.chrono`` container
or segment-store directory read-only with ``mmap=True``, so the OS page
cache holds exactly one copy of the compressed graph no matter how many
workers (or unrelated processes) are serving it.  Workers answer
``neighbors`` / ``neighbors_many`` / ``has_edge`` / ``snapshot`` /
``edge_timestamps`` requests over the length-prefixed JSON protocol of
:mod:`repro.service.protocol`, with admission control, per-tenant budgets
and deadlines handled by the :mod:`repro.runtime` governor -- a request's
``timeout_ms`` becomes the worker-side :class:`repro.runtime.QueryContext`
deadline, and breaker-skipped segments come back as ``skipped``
annotations on the response.

Use :class:`repro.service.client.ServiceClient` (or ``repro query
tcp://host:port ...``) to talk to a running service; start one with
``repro serve``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import MAX_FRAME_BYTES, ProtocolError, recv_message, send_message
from repro.service.server import GraphService, ServiceConfig

__all__ = [
    "GraphService",
    "ServiceConfig",
    "ServiceClient",
    "ServiceError",
    "ProtocolError",
    "MAX_FRAME_BYTES",
    "send_message",
    "recv_message",
]
