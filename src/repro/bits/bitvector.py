"""A plain bitvector with constant-time rank and fast select.

Substrate for the wavelet trees (CET/CAS baselines) and for the Elias-Fano
upper-bits array.  Rank uses per-block popcount prefix sums; select keeps a
sampled directory of every ``SELECT_SAMPLE``-th set (or unset) bit and scans
at most one sample interval.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.errors import CodecDomainError

_BLOCK = 64
_SELECT_SAMPLE = 64


class BitVector:
    """An immutable sequence of bits supporting ``rank`` and ``select``.

    ``rank1(i)`` counts ones in positions ``[0, i)``; ``select1(j)`` returns
    the position of the j-th one (0-based), mirroring the conventions of the
    succinct data-structure literature the paper's substrates come from.
    """

    def __init__(self, bits: Iterable[int]) -> None:
        words: List[int] = []
        length = 0
        acc = 0
        for bit in bits:
            if bit:
                acc |= 1 << (length % _BLOCK)
            length += 1
            if length % _BLOCK == 0:
                words.append(acc)
                acc = 0
        if length % _BLOCK:
            words.append(acc)
        self._words = words
        self._length = length
        self._build_rank_index()
        self._build_select_index()

    @classmethod
    def from_indices(cls, indices: Iterable[int], length: int) -> "BitVector":
        """Build a bitvector of ``length`` bits with ones at ``indices``."""
        marks = bytearray(length)
        for i in indices:
            if not 0 <= i < length:
                raise CodecDomainError(f"index {i} outside [0, {length})")
            marks[i] = 1
        return cls(marks)

    def _build_rank_index(self) -> None:
        ranks = [0]
        total = 0
        for word in self._words:
            total += bin(word).count("1")
            ranks.append(total)
        self._ranks = ranks
        self._ones = total

    def _build_select_index(self) -> None:
        # Sampled positions of every _SELECT_SAMPLE-th one / zero.
        ones_samples: List[int] = []
        zeros_samples: List[int] = []
        seen1 = 0
        seen0 = 0
        for pos in range(self._length):
            if self[pos]:
                if seen1 % _SELECT_SAMPLE == 0:
                    ones_samples.append(pos)
                seen1 += 1
            else:
                if seen0 % _SELECT_SAMPLE == 0:
                    zeros_samples.append(pos)
                seen0 += 1
        self._select1_samples = ones_samples
        self._select0_samples = zeros_samples

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, i: int) -> int:
        if not 0 <= i < self._length:
            raise IndexError(i)
        return (self._words[i // _BLOCK] >> (i % _BLOCK)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self[i]

    @property
    def count_ones(self) -> int:
        """Total number of set bits."""
        return self._ones

    @property
    def count_zeros(self) -> int:
        """Total number of unset bits."""
        return self._length - self._ones

    def size_in_bits(self) -> int:
        """Size of the payload (excluding indexes), used for size accounting."""
        return self._length

    def rank1(self, i: int) -> int:
        """Number of ones in positions ``[0, i)``."""
        if not 0 <= i <= self._length:
            raise IndexError(i)
        word_index, offset = divmod(i, _BLOCK)
        count = self._ranks[word_index]
        if offset:
            mask = (1 << offset) - 1
            count += bin(self._words[word_index] & mask).count("1")
        return count

    def rank0(self, i: int) -> int:
        """Number of zeros in positions ``[0, i)``."""
        return i - self.rank1(i)

    def select1(self, j: int) -> int:
        """Position of the j-th one (0-based)."""
        if not 0 <= j < self._ones:
            raise IndexError(f"select1({j}) with only {self._ones} ones")
        base = j // _SELECT_SAMPLE
        pos = self._select1_samples[base]
        seen = base * _SELECT_SAMPLE
        # Scan forward word by word from the sampled position.
        words = self._words
        word_index, offset = divmod(pos, _BLOCK)
        word = words[word_index] >> offset
        while True:
            ones_here = bin(word).count("1")
            if seen + ones_here > j:
                # The answer is inside this word fragment: drop the set bits
                # below it, then locate the lowest survivor.
                for _ in range(j - seen):
                    word &= word - 1
                low = word & -word
                return word_index * _BLOCK + offset + low.bit_length() - 1
            seen += ones_here
            word_index += 1
            offset = 0
            word = words[word_index]

    def select0(self, j: int) -> int:
        """Position of the j-th zero (0-based)."""
        zeros = self._length - self._ones
        if not 0 <= j < zeros:
            raise IndexError(f"select0({j}) with only {zeros} zeros")
        pos = self._select0_samples[j // _SELECT_SAMPLE]
        seen = (j // _SELECT_SAMPLE) * _SELECT_SAMPLE
        for p in range(pos, self._length):
            if not self[p]:
                if seen == j:
                    return p
                seen += 1
        raise AssertionError("select0 scan fell off the end")  # pragma: no cover
