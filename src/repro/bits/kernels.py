"""Decode-kernel planner: picks a bulk-decode tier per run.

The ``read_many_*`` bulk readers in :mod:`repro.bits.codes` can decode a
homogeneous run of codes through three interchangeable kernel tiers:

``numpy``
    :mod:`repro.bits.vectorized` -- broadcast 16-bit table lookups over the
    whole run as numpy array operations (pointer doubling over the
    successor array), with a scalar escape for codes longer than the table
    window.  Fastest for long runs; needs numpy.
``table``
    The inlined pure-Python 16-bit table loop of
    :func:`repro.bits.codes._read_many_table` -- the PR-2 kernels.  Fastest
    for short runs and the fallback when numpy is not installed.
``scalar``
    One scalar ``read_*`` call per code.  The reference tier: trivially
    correct, used for differential testing and as the last-resort
    fallback.

All three tiers consume exactly the same bits and return exactly the same
values on every stream -- byte-identity is enforced by the cross-tier
property tests (``tests/test_vectorized_kernels.py``).  Selection therefore
only ever changes speed, never answers.

Selection order for a run of ``count`` codes:

1. An explicit override -- :func:`set_kernel` or the ``REPRO_DECODE_KERNEL``
   environment variable (read at import time) -- wins.  Forcing ``numpy``
   on a machine without numpy degrades to ``table`` rather than failing:
   the tiers are answer-identical, so degradation is safe.
2. Otherwise ``numpy`` when numpy is importable and the run is at least
   :data:`DEFAULT_NUMPY_MIN_RUN` codes (per-call array overhead beats the
   per-code loop only past that length), else ``table``.

numpy is an *optional* dependency (the ``fast`` extra in pyproject.toml);
nothing in this module imports it eagerly and every consumer must work
without it.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

from repro.errors import CodecDomainError

__all__ = [
    "TIER_NUMPY",
    "TIER_TABLE",
    "TIER_SCALAR",
    "TIERS",
    "AUTO",
    "DEFAULT_NUMPY_MIN_RUN",
    "ENV_VAR",
    "numpy_or_none",
    "numpy_available",
    "plan",
    "set_kernel",
    "get_kernel",
    "refresh_from_env",
    "kernel_info",
    "CheckpointHook",
    "set_checkpoint_hook",
    "get_checkpoint_hook",
]

TIER_NUMPY = "numpy"
TIER_TABLE = "table"
TIER_SCALAR = "scalar"

#: The tier ladder, fastest-for-long-runs first.
TIERS = (TIER_NUMPY, TIER_TABLE, TIER_SCALAR)

#: Override value meaning "let the planner decide per run".
AUTO = "auto"

#: Environment variable holding a process-wide tier override.
ENV_VAR = "REPRO_DECODE_KERNEL"

#: Below this run length the planner prefers the table kernel even when
#: numpy is available: a vectorised decode costs a fixed ~25 array
#: operations, which the per-code table loop undercuts on short runs
#: (measured break-even is roughly 256 codes on small gap codes).
DEFAULT_NUMPY_MIN_RUN = 256

_numpy_checked = False
_numpy: Optional[Any] = None

_override: str = AUTO
_numpy_min_run: int = DEFAULT_NUMPY_MIN_RUN


def _probe_numpy() -> Optional[Any]:
    """Import numpy once; remember the outcome for the process lifetime."""
    global _numpy_checked, _numpy
    if not _numpy_checked:
        try:
            import numpy
        except ImportError:
            _numpy = None
        else:
            _numpy = numpy
        _numpy_checked = True
    return _numpy


def numpy_or_none() -> Optional[Any]:
    """The numpy module when importable, else ``None`` (import guard)."""
    return _probe_numpy()


def numpy_available() -> bool:
    """Whether the numpy tier can run in this process."""
    return _probe_numpy() is not None


def _validate(name: str) -> str:
    value = name.strip().lower()
    if value not in TIERS and value != AUTO:
        raise CodecDomainError(
            f"unknown decode kernel {name!r}; expected one of "
            f"{(AUTO,) + TIERS}"
        )
    return value


def set_kernel(
    name: Optional[str] = None, *, numpy_min_run: Optional[int] = None
) -> None:
    """Set the process-wide tier override (``None``/"auto" lifts it).

    ``numpy_min_run`` re-tunes the auto-mode crossover run length.  Both
    settings apply to every subsequent bulk read in the process; tests
    forcing a tier must restore the previous value (see the
    ``decode_kernel`` fixture pattern in tests/test_vectorized_kernels.py).

    ``set_kernel(None)`` does not merely lift the override -- it re-reads
    ``REPRO_DECODE_KERNEL`` via :func:`refresh_from_env`, so "reset to
    defaults" means the same thing it would at process start.  Passing the
    literal string ``"auto"`` lifts the override without consulting the
    environment.
    """
    global _override, _numpy_min_run
    if name is None:
        refresh_from_env()
    else:
        _override = _validate(name)
    if numpy_min_run is not None:
        if numpy_min_run < 1:
            raise CodecDomainError(
                f"numpy_min_run must be >= 1, got {numpy_min_run}"
            )
        _numpy_min_run = numpy_min_run


def get_kernel() -> str:
    """The current override: one of :data:`TIERS` or :data:`AUTO`."""
    return _override


def refresh_from_env() -> str:
    """Re-read ``REPRO_DECODE_KERNEL`` and adopt it as the override.

    The environment variable is normally adopted once at import, which a
    long-lived process that mutates ``os.environ`` (or is told to reload
    configuration) would never observe.  Calling this re-reads the
    variable now: a set, non-empty value becomes the override (invalid
    values raise :class:`repro.errors.CodecDomainError`); unset or blank
    restores :data:`AUTO`.  Returns the resulting override.
    """
    global _override
    value = os.environ.get(ENV_VAR)
    if value is not None and value.strip():
        _override = _validate(value)
    else:
        _override = AUTO
    return _override


def plan(count: int) -> str:
    """The tier a bulk read of ``count`` codes should run on.

    Pure selection -- no validation of ``count`` (the ``read_many_*``
    entry points own domain checks) and no side effects beyond the
    memoised numpy probe.
    """
    override = _override
    if override == TIER_NUMPY:
        # Forced numpy degrades to the table kernel when numpy is missing:
        # tiers are answer-identical, so degrading is safe and keeps a
        # REPRO_DECODE_KERNEL=numpy deployment running on a bare machine.
        return TIER_NUMPY if numpy_available() else TIER_TABLE
    if override == TIER_TABLE or override == TIER_SCALAR:
        return override
    if count >= _numpy_min_run and numpy_available():
        return TIER_NUMPY
    return TIER_TABLE


def kernel_info() -> Dict[str, object]:
    """Introspection snapshot: override, numpy availability, crossover.

    Surfaced by ``CompressedChronoGraph.decode_kernel_info`` and the
    segmented store so operators can confirm which tier a deployment is
    actually running.
    """
    return {
        "override": _override,
        "numpy_available": numpy_available(),
        "numpy_min_run": _numpy_min_run,
        "tiers": TIERS,
        "env": os.environ.get(ENV_VAR),
    }


#: Ambient decode checkpoint installed by :mod:`repro.runtime.context`.
#:
#: Called by the bulk readers as ``hook(work)``: it charges ``work`` decode
#: units against the active :class:`repro.runtime.context.QueryContext` (if
#: any), raises the typed interruption errors when the deadline, cancel
#: flag or work budget says stop, and returns the preferred chunk stride in
#: codes (``> 0``) while a context is active -- or ``0`` when the calling
#: thread has no active context, telling the reader to take its zero
#: overhead path.  Living here (rather than in ``repro.runtime``) keeps
#: :mod:`repro.bits` free of upward imports: the runtime layer registers
#: itself while at least one query context is active on any thread, and
#: removes itself when the last deactivates -- so when the hook is
#: ``None`` the bulk readers know no thread anywhere is governed and skip
#: even the thread-local poll.
CheckpointHook = Callable[[int], int]

_checkpoint_hook: Optional[CheckpointHook] = None


def set_checkpoint_hook(hook: Optional[CheckpointHook]) -> None:
    """Install (or with ``None``, remove) the ambient decode checkpoint.

    Intended for :mod:`repro.runtime.context`, which registers its
    thread-local poll while any query context is active; tests may swap
    in their own hook to observe checkpoint cadence.
    """
    global _checkpoint_hook
    _checkpoint_hook = hook


def get_checkpoint_hook() -> Optional[CheckpointHook]:
    """The installed ambient decode checkpoint, or ``None``."""
    return _checkpoint_hook


def _init_from_env() -> None:
    """Adopt ``REPRO_DECODE_KERNEL`` at import; invalid values raise."""
    refresh_from_env()


_init_from_env()
