"""Bit-level primitives underlying every compressed representation.

This subpackage provides the low-level machinery that the paper's encodings
are built from:

* :mod:`repro.bits.bitio` -- MSB-first bit streams (`BitWriter`, `BitReader`).
* :mod:`repro.bits.zigzag` -- the integer-to-natural mapping of Eq. (1).
* :mod:`repro.bits.codes` -- instantaneous codes: unary, minimal binary,
  Elias gamma/delta, Boldi-Vigna zeta_k, Golomb/Rice, variable-byte and a
  Simple16-style word packer.
* :mod:`repro.bits.bitvector` -- a plain bitvector with O(1) rank and fast
  select.
* :mod:`repro.bits.eliasfano` -- the Elias-Fano representation of monotone
  sequences used for ChronoGraph's offset indexes.
"""

from repro.bits.bitio import BitReader, BitWriter
from repro.bits.bitvector import BitVector
from repro.bits.eliasfano import EliasFano
from repro.bits.zigzag import to_natural, to_integer

__all__ = [
    "BitReader",
    "BitWriter",
    "BitVector",
    "EliasFano",
    "to_natural",
    "to_integer",
]
