"""PForDelta (Patched Frame-of-Reference) block codec.

The third of the inverted-list codecs EdgeLog's description offers
("PForDelta, Simple16, Rice codes").  Values are packed in fixed-width
frames chosen so that ~90% of a block fits; the outliers ("exceptions") are
patched in afterwards from a verbatim list.

Layout per block (up to ``BLOCK`` values):

* 6 bits: frame width ``b``
* 8 bits: exception count ``e``
* ``count * b`` bits: low ``b`` bits of every value
* per exception: 8 bits position + 32 bits of the bits above the frame
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bits.bitio import BitReader, BitWriter
from repro.errors import CodecDomainError

BLOCK = 128
_WIDTH_BITS = 6
_COUNT_BITS = 8
_POS_BITS = 8
_HIGH_BITS = 32


def _choose_width(values: Sequence[int]) -> int:
    """Smallest frame width leaving at most 10% exceptions."""
    if not values:
        return 0
    widths = sorted(v.bit_length() for v in values)
    cutoff = widths[min(len(widths) - 1, (len(widths) * 9) // 10)]
    return min(cutoff, 32)


def encode_pfordelta(writer: BitWriter, values: Sequence[int]) -> int:
    """Append blocks for all ``values`` (naturals < 2**38); returns bits."""
    total = 0
    for start in range(0, len(values), BLOCK):
        block = values[start : start + BLOCK]
        total += _encode_block(writer, block)
    return total


def _encode_block(writer: BitWriter, block: Sequence[int]) -> int:
    for v in block:
        if v < 0:
            raise CodecDomainError(f"pfordelta requires naturals, got {v}")
        if v.bit_length() > _HIGH_BITS + 6:
            raise CodecDomainError(f"value {v} too wide for pfordelta")
    b = _choose_width(block)
    exceptions = [
        (i, v >> b) for i, v in enumerate(block) if v.bit_length() > b
    ]
    if len(exceptions) >= 1 << _COUNT_BITS:
        raise AssertionError("exception count exceeds the 8-bit field")
    n = writer.write_bits(b, _WIDTH_BITS)
    n += writer.write_bits(len(exceptions), _COUNT_BITS)
    mask = (1 << b) - 1
    for v in block:
        n += writer.write_bits(v & mask, b)
    for position, high in exceptions:
        n += writer.write_bits(position, _POS_BITS)
        n += writer.write_bits(high, _HIGH_BITS)
    return n


def decode_pfordelta(reader: BitReader, count: int) -> List[int]:
    """Decode ``count`` values written by :func:`encode_pfordelta`."""
    out: List[int] = []
    remaining = count
    while remaining > 0:
        take = min(BLOCK, remaining)
        b = reader.read_bits(_WIDTH_BITS)
        num_exceptions = reader.read_bits(_COUNT_BITS)
        block = [reader.read_bits(b) for _ in range(take)]
        for _ in range(num_exceptions):
            position = reader.read_bits(_POS_BITS)
            high = reader.read_bits(_HIGH_BITS)
            block[position] |= high << b
        out.extend(block)
        remaining -= take
    return out
