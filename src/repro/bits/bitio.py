"""MSB-first bit streams.

All compressed representations in this package are serialised as contiguous
bit strings. ``BitWriter`` accumulates bits most-significant-bit first into a
``bytearray``; ``BitReader`` consumes them in the same order and additionally
supports random repositioning, which the offset indexes rely on.

The MSB-first convention matches the WebGraph framework the paper builds on:
the first bit written is the highest bit of the first byte.

``BitReader`` keeps a cached word of up to 64 bits ahead of the cursor so
the hot decoders (``repro.bits.codes``) can ``peek_bits``/``skip`` on plain
integer arithmetic instead of re-slicing the byte buffer per code word.

Buffer contract (zero-copy rule)
--------------------------------

``BitReader`` reads from *any* read-only buffer -- ``bytes``, a
``memoryview`` (including one over an ``mmap``-ed container file) or a
``bytearray`` -- and never copies it: every access is a bounded slice fed
to ``int.from_bytes``.  This is what lets ``load_compressed(mmap=True)``
share one OS page cache between N worker processes: the reader walks the
mapped pages directly.  Callers hand ``mmap`` objects in wrapped in a
``memoryview`` (slicing a raw ``mmap`` copies; slicing its view does not).
The buffer must not be mutated while any reader is live.

Reading past the end of a stream raises :class:`repro.errors.EndOfStreamError`,
which is both an :class:`EOFError` (the historical contract) and a
:class:`repro.errors.FormatError` so corrupt-container decoding funnels into
a single exception family.

Thread contract (reader-per-thread rule)
----------------------------------------

Neither class synchronises internally.  A :class:`BitReader` carries a
mutable cursor and cached word, so it must never be shared between
threads: give each thread its own reader over the same (immutable) byte
buffer -- construction is cheap and the buffer itself is never copied.
:meth:`BitReader.fork` spawns such an independent reader at the current
position.  A :class:`BitWriter` likewise belongs to exactly one thread;
parallel encoders give every worker its own writer and splice the results
with :meth:`BitWriter.extend` / :meth:`BitWriter.from_bits`.
"""

from __future__ import annotations

from typing import Union

from repro.errors import CodecDomainError, EndOfStreamError

#: Read-only byte buffers the bit-level readers accept without copying.
#: ``mmap.mmap`` is deliberately absent: raw mmap slicing *copies*, so
#: mapped containers are passed in as ``memoryview(mm)`` instead.
Buffer = Union[bytes, bytearray, memoryview]

#: Widest value ``peek_bits``/the cached-word fast paths serve; one refill
#: loads at least this many bits when that much stream remains (64 bits of
#: buffer minus up to 7 bits of byte-alignment slack).
_WORD_MAX_BITS = 57


class BitWriter:
    """Accumulates an MSB-first bit string.

    Bits are buffered in an integer accumulator and flushed to a
    ``bytearray`` one byte at a time.  ``len(writer)`` is the number of bits
    written so far, which callers use to record stream offsets.
    """

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0          # bits not yet flushed, MSB-aligned in `_nacc`
        self._nacc = 0         # number of valid bits in `_acc`

    @classmethod
    def from_bits(cls, data: Buffer, nbits: int) -> "BitWriter":
        """A writer whose first ``nbits`` bits are the given serialised stream.

        Reconstructs the exact accumulator state :meth:`to_bytes` flushed:
        whole bytes go to the buffer, the trailing partial byte (if any)
        back into the accumulator, so subsequent writes continue the stream
        bit-for-bit.  This is how a parallel encoder adopts the first
        worker's chunk without re-packing it.
        """
        if nbits < 0:
            raise CodecDomainError(f"negative bit count: {nbits}")
        if nbits > 8 * len(data):
            raise CodecDomainError(
                f"bit count {nbits} exceeds {8 * len(data)} available bits"
            )
        writer = cls()
        whole = nbits >> 3
        # Writers mutate their buffer, so adopting foreign bytes must
        # copy them -- this is the encode path, not the decode path.
        writer._bytes = bytearray(data[:whole])  # repro: noqa[CG006]
        tail = nbits & 7
        if tail:
            writer._acc = data[whole] >> (8 - tail)
            writer._nacc = tail
        return writer

    def __len__(self) -> int:
        """Number of bits written so far."""
        return 8 * len(self._bytes) + self._nacc

    @property
    def bit_length(self) -> int:
        """Alias for ``len(self)``; the current write position in bits."""
        return len(self)

    def write_bit(self, bit: int) -> int:
        """Append a single bit (0 or 1). Returns the number of bits written."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nacc += 1
        if self._nacc == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nacc = 0
        return 1

    def write_bits(self, value: int, width: int) -> int:
        """Append ``width`` bits holding ``value`` (MSB first).

        ``value`` must satisfy ``0 <= value < 2**width``.  Returns ``width``.
        """
        if width < 0:
            raise CodecDomainError(f"negative width: {width}")
        if value < 0 or (value >> width):
            raise CodecDomainError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._nacc += width
        while self._nacc >= 8:
            self._nacc -= 8
            self._bytes.append((self._acc >> self._nacc) & 0xFF)
        # Keep only the unflushed low bits to stop `_acc` growing unboundedly.
        self._acc &= (1 << self._nacc) - 1
        return width

    def extend(self, other: "BitWriter") -> int:
        """Append the full contents of another writer. Returns bits appended.

        Byte-aligned destinations take a bytes-level copy; unaligned ones
        splice the whole source through one big-integer shift instead of
        re-packing byte-by-byte, which is what makes the reference-selection
        ``extend`` of the encoder cheap.
        """
        nbits = len(other)
        data, tail_bits, tail = other._bytes, other._nacc, other._acc
        if self._nacc == 0:
            self._bytes += data
        elif data:
            shift = self._nacc
            body = (self._acc << (8 * len(data))) | int.from_bytes(data, "big")
            # Flush whole bytes; the low `shift` bits stay in the accumulator.
            self._bytes += (body >> shift).to_bytes(len(data), "big")
            self._acc = body & ((1 << shift) - 1)
        if tail_bits:
            self.write_bits(tail, tail_bits)
        return nbits

    def to_bytes(self) -> bytes:
        """Return the stream padded with zero bits to a whole byte."""
        # Encoder finalisation: the writer stays mutable afterwards, so
        # the caller gets an immutable copy, not a view of live state.
        out = bytearray(self._bytes)  # repro: noqa[CG006]
        if self._nacc:
            out.append((self._acc << (8 - self._nacc)) & 0xFF)
        return bytes(out)  # repro: noqa[CG006]


class BitReader:
    """Reads an MSB-first bit string produced by :class:`BitWriter`.

    Supports ``seek`` to an absolute bit position, which is what makes the
    Elias-Fano offset indexes useful: a node's record can be decoded by
    jumping straight to its first bit.

    A cached word (``_word``/``_wbits``) always holds the next ``_wbits``
    bits at the cursor, first unread bit as its MSB; every mutator keeps
    that invariant so ``peek_bits``/``skip`` stay branch-light.
    """

    def __init__(self, data: Buffer, nbits: int | None = None) -> None:
        self._data = data
        self._nbits = 8 * len(data) if nbits is None else nbits
        self._pos = 0
        self._word = 0
        self._wbits = 0

    @property
    def position(self) -> int:
        """Current read position, in bits from the start of the stream."""
        return self._pos

    def fork(self) -> "BitReader":
        """An independent reader over the same buffer at the same position.

        The byte buffer is shared (it is immutable); cursor and cached word
        are per-reader, so the fork can be handed to another thread while
        this reader continues -- the supported way to parallelise decoding
        of one stream.
        """
        twin = BitReader(self._data, self._nbits)
        twin._pos = self._pos
        return twin

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._nbits - self._pos

    def seek(self, bit_position: int) -> None:
        """Reposition the cursor to an absolute bit offset."""
        if not 0 <= bit_position <= self._nbits:
            raise CodecDomainError(
                f"seek to {bit_position} outside stream of {self._nbits} bits"
            )
        self._pos = bit_position
        self._word = 0
        self._wbits = 0

    def _refill(self) -> None:
        """Reload the cached word with up to 64 bits at the cursor."""
        pos = self._pos
        chunk = self._data[pos >> 3 : (pos >> 3) + 8]
        total = (len(chunk) << 3) - (pos & 7)
        word = int.from_bytes(chunk, "big")
        avail = self._nbits - pos
        if total > avail:
            word >>= total - avail
            total = avail
        self._word = word & ((1 << total) - 1)
        self._wbits = total

    def peek_bits(self, width: int) -> int:
        """The next ``width`` bits without advancing; zero-padded past EOS.

        ``width`` must be at most 57 (one cached word).  Padding with zeros
        lets table-driven decoders probe a fixed-size window near the end of
        the stream; they bound the *consumed* bits by ``remaining``.
        """
        wbits = self._wbits
        if width > wbits:
            self._refill()
            wbits = self._wbits
            if width > wbits:
                return self._word << (width - wbits)
        return self._word >> (wbits - width)

    def skip(self, width: int) -> None:
        """Advance the cursor ``width`` bits (bounds-checked)."""
        if width > self._wbits:
            if self._pos + width > self._nbits:
                raise EndOfStreamError(
                    f"skip of {width} bits at {self._pos} exceeds {self._nbits}"
                )
            self._pos += width
            self._word = 0
            self._wbits = 0
            return
        self._pos += width
        self._wbits -= width
        self._word &= (1 << self._wbits) - 1

    def read_bit(self) -> int:
        """Read and return the next bit."""
        wbits = self._wbits
        if not wbits:
            if self._pos >= self._nbits:
                raise EndOfStreamError("read past end of bit stream")
            self._refill()
            wbits = self._wbits
        wbits -= 1
        bit = self._word >> wbits
        self._word &= (1 << wbits) - 1
        self._wbits = wbits
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        wbits = self._wbits
        if 0 <= width <= wbits:
            wbits -= width
            value = self._word >> wbits
            self._word &= (1 << wbits) - 1
            self._wbits = wbits
            self._pos += width
            return value
        if width < 0:
            raise CodecDomainError(f"negative width: {width}")
        if self._pos + width > self._nbits:
            raise EndOfStreamError(
                f"read of {width} bits at {self._pos} exceeds {self._nbits}"
            )
        if width <= _WORD_MAX_BITS:
            self._refill()
            wbits = self._wbits - width
            value = self._word >> wbits
            self._word &= (1 << wbits) - 1
            self._wbits = wbits
            self._pos += width
            return value
        # Wider than the cached word: slice the byte buffer directly.
        end = self._pos + width
        first_byte = self._pos >> 3
        last_byte = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first_byte:last_byte], "big")
        chunk_bits = 8 * (last_byte - first_byte)
        chunk >>= chunk_bits - (end - 8 * first_byte)
        self._pos = end
        self._word = 0
        self._wbits = 0
        return chunk & ((1 << width) - 1)

    def read_unary_run(self) -> int:
        """Count zero bits up to and including the terminating 1 bit.

        Returns the number of zeros seen (so the unary code of ``x`` yields
        ``x - 1``). Provided here because it is the hot inner loop of every
        decoder; scanning a cached word at a time is markedly faster than
        bit-at-a-time.
        """
        zeros = 0
        while True:
            wbits = self._wbits
            if not wbits:
                if self._pos >= self._nbits:
                    raise EndOfStreamError("unary run hit end of bit stream")
                self._refill()
                wbits = self._wbits
            word = self._word
            if not word:
                zeros += wbits
                self._pos += wbits
                self._wbits = 0
                continue
            lead = wbits - word.bit_length()
            wbits -= lead + 1
            self._pos += lead + 1
            self._wbits = wbits
            self._word = word & ((1 << wbits) - 1)
            return zeros + lead
