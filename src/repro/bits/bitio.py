"""MSB-first bit streams.

All compressed representations in this package are serialised as contiguous
bit strings. ``BitWriter`` accumulates bits most-significant-bit first into a
``bytearray``; ``BitReader`` consumes them in the same order and additionally
supports random repositioning, which the offset indexes rely on.

The MSB-first convention matches the WebGraph framework the paper builds on:
the first bit written is the highest bit of the first byte.

Reading past the end of a stream raises :class:`repro.errors.EndOfStreamError`,
which is both an :class:`EOFError` (the historical contract) and a
:class:`repro.errors.FormatError` so corrupt-container decoding funnels into
a single exception family.
"""

from __future__ import annotations

from repro.errors import EndOfStreamError


class BitWriter:
    """Accumulates an MSB-first bit string.

    Bits are buffered in an integer accumulator and flushed to a
    ``bytearray`` one byte at a time.  ``len(writer)`` is the number of bits
    written so far, which callers use to record stream offsets.
    """

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._acc = 0          # bits not yet flushed, MSB-aligned in `_nacc`
        self._nacc = 0         # number of valid bits in `_acc`

    def __len__(self) -> int:
        """Number of bits written so far."""
        return 8 * len(self._bytes) + self._nacc

    @property
    def bit_length(self) -> int:
        """Alias for ``len(self)``; the current write position in bits."""
        return len(self)

    def write_bit(self, bit: int) -> int:
        """Append a single bit (0 or 1). Returns the number of bits written."""
        self._acc = (self._acc << 1) | (bit & 1)
        self._nacc += 1
        if self._nacc == 8:
            self._bytes.append(self._acc)
            self._acc = 0
            self._nacc = 0
        return 1

    def write_bits(self, value: int, width: int) -> int:
        """Append ``width`` bits holding ``value`` (MSB first).

        ``value`` must satisfy ``0 <= value < 2**width``.  Returns ``width``.
        """
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if value < 0 or (value >> width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._nacc += width
        while self._nacc >= 8:
            self._nacc -= 8
            self._bytes.append((self._acc >> self._nacc) & 0xFF)
        # Keep only the unflushed low bits to stop `_acc` growing unboundedly.
        self._acc &= (1 << self._nacc) - 1
        return width

    def extend(self, other: "BitWriter") -> int:
        """Append the full contents of another writer. Returns bits appended."""
        nbits = len(other)
        data, tail_bits, tail = other._bytes, other._nacc, other._acc
        for byte in data:
            self.write_bits(byte, 8)
        if tail_bits:
            self.write_bits(tail, tail_bits)
        return nbits

    def to_bytes(self) -> bytes:
        """Return the stream padded with zero bits to a whole byte."""
        out = bytearray(self._bytes)
        if self._nacc:
            out.append((self._acc << (8 - self._nacc)) & 0xFF)
        return bytes(out)


class BitReader:
    """Reads an MSB-first bit string produced by :class:`BitWriter`.

    Supports ``seek`` to an absolute bit position, which is what makes the
    Elias-Fano offset indexes useful: a node's record can be decoded by
    jumping straight to its first bit.
    """

    def __init__(self, data: bytes, nbits: int | None = None) -> None:
        self._data = data
        self._nbits = 8 * len(data) if nbits is None else nbits
        self._pos = 0

    @property
    def position(self) -> int:
        """Current read position, in bits from the start of the stream."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Number of unread bits."""
        return self._nbits - self._pos

    def seek(self, bit_position: int) -> None:
        """Reposition the cursor to an absolute bit offset."""
        if not 0 <= bit_position <= self._nbits:
            raise ValueError(
                f"seek to {bit_position} outside stream of {self._nbits} bits"
            )
        self._pos = bit_position

    def read_bit(self) -> int:
        """Read and return the next bit."""
        if self._pos >= self._nbits:
            raise EndOfStreamError("read past end of bit stream")
        byte = self._data[self._pos >> 3]
        bit = (byte >> (7 - (self._pos & 7))) & 1
        self._pos += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits and return them as an unsigned integer."""
        if width < 0:
            raise ValueError(f"negative width: {width}")
        if self._pos + width > self._nbits:
            raise EndOfStreamError(
                f"read of {width} bits at {self._pos} exceeds {self._nbits}"
            )
        end = self._pos + width
        first_byte = self._pos >> 3
        last_byte = (end + 7) >> 3
        chunk = int.from_bytes(self._data[first_byte:last_byte], "big")
        chunk_bits = 8 * (last_byte - first_byte)
        chunk >>= chunk_bits - (end - 8 * first_byte)
        self._pos = end
        return chunk & ((1 << width) - 1)

    def read_unary_run(self) -> int:
        """Count zero bits up to and including the terminating 1 bit.

        Returns the number of zeros seen (so the unary code of ``x`` yields
        ``x - 1``). Provided here because it is the hot inner loop of every
        decoder; scanning byte-at-a-time is markedly faster than bit-at-a-time.
        """
        zeros = 0
        pos = self._pos
        data = self._data
        nbits = self._nbits
        while pos < nbits:
            byte = data[pos >> 3]
            offset = pos & 7
            # Remaining bits of the current byte, left-aligned in 8 bits.
            window = (byte << offset) & 0xFF
            avail = min(8 - offset, nbits - pos)
            if window == 0:
                zeros += avail
                pos += avail
                continue
            lead = 8 - window.bit_length()  # leading zeros within window
            if lead >= avail:
                zeros += avail
                pos += avail
                continue
            zeros += lead
            pos += lead + 1  # consume the 1 bit as well
            self._pos = pos
            return zeros
        raise EndOfStreamError("unary run hit end of bit stream")
