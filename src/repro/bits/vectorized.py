"""numpy-vectorised bulk decoding of unary/gamma/zeta code runs.

This module is the ``numpy`` tier of the decode-kernel ladder (see
:mod:`repro.bits.kernels`).  It decodes a whole run of instantaneous codes
as array operations over the reader's underlying byte buffer instead of a
per-code Python loop:

1. **Broadcast table lookup.**  For every candidate bit position of a
   bounded *region* ahead of the cursor, the 16-bit window starting there
   is extracted with vectorised shifts and pushed through the same decode
   tables the scalar kernels use, yielding per-position ``(value, length)``
   arrays in a handful of numpy operations.  Table entries for codes
   longer than the window carry the sentinel length :data:`_BIG_LEN`, so a
   single ``minimum``/``less_equal`` pass classifies every position as
   decodable, region-straddling, or escape -- no branching masks.
2. **Pointer doubling.**  Code boundaries are data-dependent (code *i + 1*
   starts where code *i* ends), which defeats naive vectorisation.  The
   per-position successor array ``succ[p] = min(p + length[p], region)``
   turns the run into a functional chain with an absorbing off-region
   state; pointer doubling (``succ`` composed with itself, one whole-array
   gather per doubling) extracts the ordered positions of all codes in the
   region without a per-code Python step.
3. **Scalar escape.**  A position whose code exceeds the 16-bit table
   window -- or would read past end-of-stream -- stops the vector chain;
   the single offending code is decoded by the scalar reader (which
   raises the canonical :class:`repro.errors.EndOfStreamError` on
   truncation), after which vector decoding resumes *inside the same
   region*: the per-position tables and the composed jump powers are
   position-indexed, not chain-indexed, so an escape costs one scalar
   decode plus a few small gathers, never a region rebuild.  Runs whose
   escape rate stays pathologically high (adversarial streams of huge
   codes) bail out to the caller-supplied table-kernel fallback so the
   numpy tier is never asymptotically slower than the table tier.

Regions are sized adaptively: the first region assumes
:data:`_EST_BITS_SINGLE` bits per code and every later region uses the
bits-per-code actually observed so far (plus head-room), so a run is
normally covered by one or two regions instead of a geometric tail of
shrinking rounds.

The contract is *byte exactness*: for every stream, count and code family,
:func:`decode_run`/:func:`decode_run_pairs` consume exactly the bits and
return exactly the values of the table and scalar tiers, including the
exception raised (and cursor position reached) on truncated or corrupt
streams.  ``tests/test_vectorized_kernels.py`` enforces this by property
test across all three tiers.

Importing this module requires numpy; the planner never selects the numpy
tier without probing availability first, and nothing else imports this
module eagerly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bits import kernels
from repro.bits.bitio import BitReader, Buffer
from repro.errors import CodecDomainError

__all__ = ["decode_run", "decode_run_pairs"]

_TABLE_BITS = 16

#: Sentinel length for 16-bit windows the tables cannot decode (the code
#: is longer than the window).  Large enough that ``position + _BIG_LEN``
#: always exceeds any stream limit (streams are far below 2**60 bits),
#: small enough never to overflow int64.
_BIG_LEN = 1 << 60

#: numpy copies of the 16-bit decode tables, keyed by ``id()`` of the
#: source list.  The lists are process-lifetime singletons cached by
#: :mod:`repro.bits.codes` (never freed), so identity keys are stable.
_NP_TABLES: Dict[int, Tuple[Any, Any]] = {}

#: Initial bits-per-unit estimates used to size the first region of a run;
#: later regions adapt to the bits per unit actually consumed.  Gap codes
#: in real streams average 2--8 bits, a gap/duration pair roughly twice
#: that.
_EST_BITS_SINGLE = 8
_EST_BITS_PAIR = 16

#: Clamp for the adaptive estimate: one pathological escape code (a
#: corrupt stream can gamma-code arbitrarily large values) must not balloon
#: the next region.
_MAX_EST_BITS = 64

#: Never build a region smaller than this (fixed numpy call overhead
#: dominates below it anyway).
_MIN_REGION_BITS = 256

#: Cap the *first* region of a run: it doubles as a cheap pilot sample of
#: the stream's escape rate, so escape-dominated runs bail to the table
#: fallback before a full-size region is built and burned.
_PILOT_BITS = 8192

#: Cap region size so the per-position arrays (and the cached jump powers)
#: stay a few megabytes; longer runs simply take multiple regions.
_MAX_REGION_BITS = 1 << 17

#: Escape-rate bail-out: once at least this many units decoded, if more
#: than one in eight of them went through the scalar escape, hand the rest
#: of the run to the table-kernel fallback.
_BAIL_MIN_UNITS = 64

#: Chains longer than one segment are extracted via a scalar backbone walk
#: of stride ``_SEG`` plus a matrix expansion, which caps the composed
#: jump powers at ``succ^_SEG`` -- the full-region compositions are the
#: dominant cost of pointer doubling, so the cap is the main throughput
#: lever.
_SEG_LOG = 5
_SEG = 1 << _SEG_LOG

_ARANGE: Any = None
_QIDX: Any = None  # _QIDX[j] = j >> 3, length tracks _ARANGE + 8
_SHIFT: Any = None  # _SHIFT[j] = 16 - (j & 7), uint32

#: Mutable per-thread scratch buffers (grow-only, capped by region size).
#: Scratch is thread-local because PR 4's query plane decodes concurrently
#: (``neighbors_many`` fans out over a thread pool); the read-only caches
#: above are process-global with benign-race regrowth.
_TLS = threading.local()


def _grow_caches(region: int) -> None:
    global _ARANGE, _QIDX, _SHIFT
    size = max(region, 1 << 12)
    _ARANGE = np.arange(size, dtype=np.int64)
    ext = np.arange(size + 8, dtype=np.int64)
    _QIDX = ext >> 3
    _SHIFT = (16 - (ext & 7)).astype(np.uint32)


def _prel(region: int) -> Any:
    """A cached ``arange`` view of length ``region`` (read-only by contract).

    Readers are per-thread but this cache is process-global; a racing
    regrow at worst allocates twice, and views into a superseded array
    stay valid, so no locking is needed.
    """
    cur = _ARANGE
    if cur is None or cur.size < region:
        _grow_caches(region)
        cur = _ARANGE
    return cur[:region]


def _scratch(name: str, dtype: Any, size: int) -> Any:
    """A per-thread reusable buffer slice of ``size`` elements.

    Buffers grow monotonically and are never shared between live uses: each
    ``name`` maps to one role inside a single region decode, and region
    decodes on one thread never nest (the scalar escape and the table
    fallback do not re-enter this module).
    """
    bufs = getattr(_TLS, "bufs", None)
    if bufs is None:
        bufs = _TLS.bufs = {}
    buf = bufs.get(name)
    if buf is None or buf.size < size:
        buf = np.empty(max(size, 1 << 12), dtype=dtype)
        bufs[name] = buf
    return buf[:size]


def _np_table(vals: Sequence[int], lens: Sequence[int]) -> Tuple[Any, Any]:
    """The (values, lengths) decode table as cached numpy arrays.

    Zero lengths ("window undecodable, take the scalar path") are replaced
    by :data:`_BIG_LEN` so validity falls out of a single comparison
    against the stream limit downstream.
    """
    key = id(vals)
    got = _NP_TABLES.get(key)
    if got is None:
        np_lens = np.asarray(lens, dtype=np.int64)
        np_lens[np_lens == 0] = _BIG_LEN
        got = (np.asarray(vals, dtype=np.int32), np_lens)
        _NP_TABLES[key] = got
    return got


def _sync(reader: BitReader, pos: int) -> None:
    """Publish an absolute cursor back into the reader (word dropped)."""
    reader._pos = pos
    reader._word = 0
    reader._wbits = 0


def _window16(data: Buffer, nbits: int, start: int, region: int) -> Any:
    """The 16-bit windows at bit positions ``[start, start + region)``.

    Bits at or past ``nbits`` read as zero, matching
    :meth:`repro.bits.bitio.BitReader.peek_bits` padding semantics, so the
    table lookups below see exactly what the scalar probe would.  Windows
    of positions near the region edge extend past it (into real stream
    bytes), so edge-straddling codes still decode exactly.
    """
    lo_byte = start >> 3
    hi_byte = ((start + region - 1 + _TABLE_BITS - 1) >> 3) + 1
    buf = np.zeros(hi_byte - lo_byte + 4, dtype=np.uint8)
    take = min(hi_byte, len(data)) - lo_byte
    if take > 0:
        buf[:take] = np.frombuffer(data, dtype=np.uint8, count=take, offset=lo_byte)
    first_dead = nbits - 8 * lo_byte  # buffer-relative index of first dead bit
    if first_dead < 8 * len(buf):
        kill_byte = first_dead >> 3
        keep = first_dead & 7
        if kill_byte < len(buf):
            buf[kill_byte] &= (0xFF00 >> keep) & 0xFF
            buf[kill_byte + 1 :] = 0
    u32 = (
        (buf[:-3].astype(np.uint32) << 24)
        | (buf[1:-2].astype(np.uint32) << 16)
        | (buf[2:-1].astype(np.uint32) << 8)
        | buf[3:].astype(np.uint32)
    )
    # Per-position byte index and shift are periodic in the bit phase, so
    # they come from cached arrays sliced at `phase` -- no arithmetic
    # passes, just one bounded gather and two in-place uint32 ops.
    phase = start & 7
    qidx, shift = _QIDX, _SHIFT
    if qidx is None or qidx.size < region + 8:
        _grow_caches(region)
        qidx, shift = _QIDX, _SHIFT
    g = np.take(u32, qidx[phase : phase + region], out=_scratch("g", np.uint32, region))
    np.right_shift(g, shift[phase : phase + region], out=g)
    np.bitwise_and(g, 0xFFFF, out=g)
    w16 = _scratch("w16", np.int64, region)
    np.copyto(w16, g)  # int64 windows double as gather indices downstream
    return w16


def _region_size(nbits: int, pos: int, need: int, est_bits: int) -> int:
    """Speculative region size for ``need`` more units at ``pos``."""
    wanted = max(_MIN_REGION_BITS, min(need * est_bits, _MAX_REGION_BITS))
    return int(min(nbits - pos, wanted))


def _next_est(consumed: int, units: int) -> int:
    """Adaptive bits-per-unit estimate: observed mean plus 25% head-room."""
    per_unit = consumed // units
    return min(_MAX_EST_BITS, max(4, per_unit + per_unit // 4 + 1))


def _extended(values: Any, cmp_limit: int, region: int) -> Tuple[Any, Any]:
    """Build the extended successor and validity arrays for one region.

    ``values`` holds per-position unclamped unit ends; entry ``region`` is
    the absorbing off-region state (successor: itself; validity: False).
    """
    succ_ext = _scratch("succ", np.int64, region + 1)
    np.minimum(values, region, out=succ_ext[:region])
    succ_ext[region] = region
    good_ext = _scratch("good", np.bool_, region + 1)
    np.less_equal(values, cmp_limit, out=good_ext[:region])
    good_ext[region] = False
    return succ_ext, good_ext


def _decode_region(
    reader: BitReader,
    region_start: int,
    region: int,
    succ_ext: Any,
    good_ext: Any,
    nxt_end: Any,
    emit_vec: Callable[[Any], None],
    emit_scalar: Callable[[], None],
    need: int,
    bail: Optional[Callable[[int, int], bool]] = None,
) -> Tuple[int, int, int]:
    """Decode units inside one region; returns (units, escapes, new_pos).

    ``bail(decoded, escapes)`` is consulted after every scalar escape; a
    True result aborts the region early (cursor synced after the escaped
    unit) so the caller can switch tiers.

    ``succ_ext``/``good_ext`` are the extended (region + 1 entries,
    absorbing sentinel last) unit-successor and unit-validity arrays;
    ``nxt_end`` holds, per good position, the *unclamped* region-relative
    end of the unit starting there.  ``emit_vec`` receives the ordered
    positions of a decoded chain segment; ``emit_scalar`` decodes exactly
    one unit through the scalar path at the reader's cursor (the escape).

    Jump powers ``succ^(2^k)`` are composed lazily (capped at
    ``succ^_SEG``) and cached for the lifetime of the region, so
    re-entering the chain after a scalar escape costs only gathers
    proportional to the remaining chain, not a rebuild.
    """
    powers: List[Any] = [succ_ext]

    def power(k: int) -> Any:
        while len(powers) <= k:
            prev = powers[-1]
            nxt = np.take(
                prev, prev, out=_scratch(f"p{len(powers)}", np.int64, region + 1)
            )
            powers.append(nxt)
        return powers[k]

    decoded = 0
    escapes = 0
    rel = 0
    while True:
        if rel >= region:
            # The chain ran off the region after a complete unit; the
            # caller resumes with a fresh (re-estimated) region there.
            return decoded, escapes, region_start + rel
        if not bool(good_ext[rel]):
            # Stall: the unit at `rel` needs the scalar path (a code past
            # the 16-bit window, or truncated by end-of-stream).
            _sync(reader, region_start + rel)
            emit_scalar()  # raises EndOfStreamError on truncation
            decoded += 1
            escapes += 1
            if decoded >= need:
                return decoded, escapes, reader._pos
            if bail is not None and bail(decoded, escapes):
                # Escape-dominated so far: stop mid-region so the caller
                # can hand the rest of the run to the table fallback
                # before a long region burns thousands of escapes.
                return decoded, escapes, reader._pos
            rel = reader._pos - region_start
            continue
        want = need - decoded
        if want <= _SEG:
            # Short chain: plain pointer doubling, stopping early as soon
            # as an appended block contains an invalid entry (the chain is
            # already cut before the block's end, longer jumps are wasted).
            known = np.array([rel], dtype=np.int64)
            k = 0
            while known.size < want:
                block = power(k)[known]
                known = np.concatenate([known, block])
                k += 1
                if not bool(good_ext[block].all()):
                    break
            known = known[:want]
        else:
            # Long chain: walk a stride-_SEG backbone with the capped top
            # power (absorbing sentinel stops the walk at the region edge
            # or at the first stalled unit), then expand every backbone
            # point into its _SEG-unit segment by doubling a matrix whose
            # rows are in-segment offsets -- column-major flattening
            # restores chain order.
            jump_seg = power(_SEG_LOG)
            segs = [rel]
            s = rel
            for _ in range((want + _SEG - 1) // _SEG - 1):
                s = int(jump_seg[s])
                if s >= region:
                    break
                segs.append(s)
            rows = np.array(segs, dtype=np.int64).reshape(1, -1)
            for k in range(_SEG_LOG):
                rows = np.concatenate([rows, power(k)[rows]])
            known = rows.T.reshape(-1)[:want]
        ok = good_ext[known]
        n_done = known.size if bool(ok.all()) else int(np.argmin(ok))
        done = known[:n_done]
        emit_vec(done)
        decoded += n_done
        rel = int(nxt_end[int(done[-1])])
        if decoded >= need:
            return decoded, escapes, region_start + rel


def decode_run(
    reader: BitReader,
    count: int,
    vals: Sequence[int],
    lens: Sequence[int],
    slow: Callable[[BitReader], int],
    delta: int = 0,
    fallback: Optional[Callable[[BitReader, int], List[int]]] = None,
) -> List[int]:
    """Decode ``count`` codes of one family; numpy mirror of the table kernel.

    ``vals``/``lens`` are the family's 16-bit decode tables, ``slow`` its
    scalar reader (the escape path), ``delta`` an offset applied to every
    decoded value (``-1`` for the ``*_natural`` wrappers).  ``fallback``,
    when given, decodes a remaining run through the table kernel (with
    ``delta`` already applied) and is used to bail out of escape-dominated
    runs.  The reader's cursor ends exactly after the last code, as with
    every other tier.
    """
    if count < 0:
        raise CodecDomainError(f"negative bulk read count: {count}")
    out: List[int] = []
    if count == 0:
        return out
    np_vals, np_lens = _np_table(vals, lens)
    data = reader._data
    nbits = reader._nbits
    pos = reader._pos
    need = count
    est = _EST_BITS_SINGLE
    escaped = 0

    def emit_scalar() -> None:
        out.append(slow(reader) + delta)

    def bail(decoded: int, escapes: int) -> bool:
        if fallback is None:
            return False
        done = count - need + decoded
        return done >= _BAIL_MIN_UNITS and (escaped + escapes) * 8 > done

    hook = kernels._checkpoint_hook
    while need:
        if hook is not None and need != count:
            # Region boundary: publish the cursor (so an interruption
            # leaves the reader between codes) and poll the active query
            # context, if any.
            _sync(reader, pos)
            hook(0)
        if pos >= nbits:
            _sync(reader, pos)
            emit_scalar()  # raises EndOfStreamError
            pos = reader._pos
            need -= 1
            continue
        region = _region_size(nbits, pos, need, est)
        if need == count:
            region = min(region, _PILOT_BITS)
        w16 = _window16(data, nbits, pos, region)
        end = np.take(np_lens, w16, out=_scratch("end", np.int64, region))
        end += _prel(region)
        succ_ext, good_ext = _extended(end, nbits - pos, region)

        def emit_vec(done: Any, w16: Any = w16) -> None:
            values = np_vals[w16[done]]
            if delta:
                values = values + delta
            out.extend(values.tolist())

        n_done, n_esc, new_pos = _decode_region(
            reader, pos, region, succ_ext, good_ext, end,
            emit_vec, emit_scalar, need, bail,
        )
        need -= n_done
        escaped += n_esc
        done_total = count - need
        if n_done:
            est = _next_est(new_pos - pos, n_done)
        pos = new_pos
        if (
            need
            and fallback is not None
            and done_total >= _BAIL_MIN_UNITS
            and escaped * 8 > done_total
        ):
            # Escape-dominated stream: the per-escape overhead would make
            # this tier lose to the plain table loop, so hand over to it.
            _sync(reader, pos)
            out.extend(fallback(reader, need))
            return out
    _sync(reader, pos)
    return out


def decode_run_pairs(
    reader: BitReader,
    count: int,
    vals_a: Sequence[int],
    lens_a: Sequence[int],
    slow_a: Callable[[BitReader], int],
    vals_b: Sequence[int],
    lens_b: Sequence[int],
    slow_b: Callable[[BitReader], int],
    delta: int = 0,
    fallback: Optional[
        Callable[[BitReader, int], Tuple[List[int], List[int]]]
    ] = None,
) -> Tuple[List[int], List[int]]:
    """Decode ``count`` interleaved (a, b) pairs; numpy pair-kernel mirror.

    The layout of interval-graph timestamp records: a gap code followed by
    a duration code, each with its own table.  ``delta`` applies to both
    outputs (the ``*_natural`` shift).  A pair is decoded as a unit: a
    stall on either half re-decodes the whole pair through the scalar
    escape, so the cursor never rests between the halves of an emitted
    pair.
    """
    if count < 0:
        raise CodecDomainError(f"negative bulk read count: {count}")
    out_a: List[int] = []
    out_b: List[int] = []
    if count == 0:
        return out_a, out_b
    np_vals_a, np_lens_a = _np_table(vals_a, lens_a)
    np_vals_b, np_lens_b = _np_table(vals_b, lens_b)
    data = reader._data
    nbits = reader._nbits
    pos = reader._pos
    need = count
    est = _EST_BITS_PAIR
    escaped = 0

    def emit_scalar() -> None:
        out_a.append(slow_a(reader) + delta)
        out_b.append(slow_b(reader) + delta)

    def bail(decoded: int, escapes: int) -> bool:
        if fallback is None:
            return False
        done = count - need + decoded
        return done >= _BAIL_MIN_UNITS and (escaped + escapes) * 8 > done

    hook = kernels._checkpoint_hook
    while need:
        if hook is not None and need != count:
            # Region boundary: publish the cursor (so an interruption
            # leaves the reader between codes) and poll the active query
            # context, if any.
            _sync(reader, pos)
            hook(0)
        if pos >= nbits:
            _sync(reader, pos)
            emit_scalar()  # raises EndOfStreamError
            pos = reader._pos
            need -= 1
            continue
        region = _region_size(nbits, pos, need, est)
        if need == count:
            region = min(region, _PILOT_BITS)
        w16 = _window16(data, nbits, pos, region)
        prel = _prel(region)
        # Where the b half starts; clamping to `region` also covers "a not
        # decodable here" (big sentinel length) and "a straddles the
        # region edge" -- the b tables are only materialised in-region.
        qa = np.take(np_lens_a, w16, out=_scratch("qa", np.int64, region))
        qa += prel
        np.minimum(qa, region, out=qa)
        b_end_ext = _scratch("bend", np.int64, region + 1)
        np.take(np_lens_b, w16, out=b_end_ext[:region])
        b_end_ext[:region] += prel
        b_end_ext[region] = _BIG_LEN
        # Unclamped pair end per position; big when either half is invalid.
        pair_end = np.take(b_end_ext, qa, out=_scratch("end", np.int64, region))
        succ_ext, good_ext = _extended(pair_end, nbits - pos, region)

        def emit_vec(done: Any, w16: Any = w16, qa: Any = qa) -> None:
            values_a = np_vals_a[w16[done]]
            values_b = np_vals_b[w16[qa[done]]]
            if delta:
                values_a = values_a + delta
                values_b = values_b + delta
            out_a.extend(values_a.tolist())
            out_b.extend(values_b.tolist())

        n_done, n_esc, new_pos = _decode_region(
            reader, pos, region, succ_ext, good_ext, pair_end,
            emit_vec, emit_scalar, need, bail,
        )
        need -= n_done
        escaped += n_esc
        done_total = count - need
        if n_done:
            est = _next_est(new_pos - pos, n_done)
        pos = new_pos
        if (
            need
            and fallback is not None
            and done_total >= _BAIL_MIN_UNITS
            and escaped * 8 > done_total
        ):
            _sync(reader, pos)
            rest_a, rest_b = fallback(reader, need)
            out_a.extend(rest_a)
            out_b.extend(rest_b)
            return out_a, out_b
    _sync(reader, pos)
    return out_a, out_b
