"""The integer-to-natural mapping of the paper's Eq. (1).

The gap sequences ChronoGraph produces (timestamp gaps under the *previous*
strategy, first gaps of dedup/interval/extra blocks) may be negative, while
the instantaneous codes only handle naturals.  Eq. (1) of the paper folds the
integers onto the naturals so that small absolute values stay small::

    f(x) = 2x        if x >= 0
    f(x) = 2|x| - 1  otherwise

e.g. 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, 2 -> 4 ...  (Table II of the paper:
161 -> 322, -143 -> 285, -4 -> 7.)
"""

from __future__ import annotations

from repro.errors import CodecDomainError


def to_natural(x: int) -> int:
    """Map an integer to a natural number per Eq. (1) of the paper."""
    return 2 * x if x >= 0 else 2 * (-x) - 1


def to_integer(n: int) -> int:
    """Invert :func:`to_natural`."""
    if n < 0:
        raise CodecDomainError(f"not a natural number: {n}")
    return n // 2 if n % 2 == 0 else -((n + 1) // 2)
