"""Elias-Fano representation of non-decreasing sequences.

ChronoGraph keeps two offset indexes (structure stream, timestamp stream) so
a node's records can be located in constant time.  Both are non-decreasing
sequences of bit offsets; Elias-Fano stores them in roughly
``2 + log2(u / n)`` bits per element (Section IV-E of the paper) while
supporting O(1) ``access(i)``.

Layout: with universe ``u`` and ``n`` elements, each value is split into
``l = max(0, floor(log2(u / n)))`` low bits stored verbatim, and high bits
stored as a unary-coded sequence of bucket counters.  ``access(i)`` is a
``select1`` on the high-bits array plus a low-bits fetch.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.bits.bitvector import BitVector
from repro.errors import CodecDomainError


class EliasFano:
    """Compressed random-access store for a monotone sequence of naturals."""

    def __init__(self, values: Sequence[int], universe: int | None = None) -> None:
        n = len(values)
        self._n = n
        if n == 0:
            self._universe = 0
            self._low_bits = 0
            self._lows: List[int] = []
            self._high = BitVector([])
            return
        prev = 0
        for v in values:
            if v < 0:
                raise CodecDomainError(f"negative value {v} in monotone sequence")
            if v < prev:
                raise CodecDomainError(
                    f"sequence is not non-decreasing ({v} after {prev})"
                )
            prev = v
        top = values[-1]
        if universe is None:
            universe = top + 1
        if universe <= top:
            raise CodecDomainError(f"universe {universe} <= max value {top}")
        self._universe = universe
        ratio = universe // n
        self._low_bits = max(0, ratio.bit_length() - 1) if ratio > 0 else 0
        l = self._low_bits
        mask = (1 << l) - 1
        self._lows = [v & mask for v in values]
        # High bits: for element i with high part h, set bit at h + i + 1 - 1.
        high_positions = [(v >> l) + i for i, v in enumerate(values)]
        length = high_positions[-1] + 1 if high_positions else 0
        self._high = BitVector.from_indices(high_positions, length)

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self.access(i)

    def access(self, i: int) -> int:
        """Return the i-th element of the original sequence."""
        if not 0 <= i < self._n:
            raise IndexError(i)
        high = self._high.select1(i) - i
        return (high << self._low_bits) | self._lows[i]

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def size_in_bits(self) -> int:
        """Payload size: low bits plus the unary high-bits array.

        This is the figure ChronoGraph's size accounting charges for each
        offset index (rank/select directories are bookkeeping, as in the
        paper's Java implementation which reports the EF payload).
        """
        return self._n * self._low_bits + len(self._high)

    def predecessor_index(self, value: int) -> int:
        """Index of the last element ``<= value``; -1 if none.

        Used by snapshot queries that binary-search offset boundaries.
        """
        lo, hi = 0, self._n - 1
        result = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            if self.access(mid) <= value:
                result = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return result
