"""Instantaneous codes used by ChronoGraph and the baselines.

All codes operate on *positive* integers (x >= 1), following Boldi & Vigna,
"Codes for the World Wide Web".  Natural numbers (>= 0) are coded through the
``*_natural`` wrappers which shift by one.  The worked examples from the
paper hold exactly:

* unary(2) = ``01``
* minimal binary of 8 over [0, 55] = ``010000``
* zeta_3(16) = ``01010000``

The module exposes, per code, a writer (``write_*``), a reader (``read_*``)
and a length function (``*_length``) used when sizing candidate encodings
without materialising them (e.g. reference selection and the Figure 7 sweep).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bits import kernels
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.zigzag import to_integer, to_natural
from repro.errors import CodecDomainError

__all__ = [
    "write_unary", "read_unary", "unary_length",
    "write_minimal_binary", "read_minimal_binary", "minimal_binary_length",
    "write_gamma", "read_gamma", "gamma_length",
    "write_gamma_natural", "read_gamma_natural",
    "write_gamma_integer", "read_gamma_integer",
    "write_delta", "read_delta", "delta_length",
    "write_zeta", "read_zeta", "zeta_length",
    "write_zeta_natural", "read_zeta_natural",
    "write_zeta_integer", "read_zeta_integer",
    "write_golomb", "read_golomb", "golomb_length",
    "write_rice", "read_rice", "rice_length",
    "write_vbyte", "read_vbyte", "vbyte_length",
    "encode_simple16", "decode_simple16",
    "read_many_unary", "read_many_gamma", "read_many_gamma_natural",
    "read_many_zeta", "read_many_zeta_natural", "read_many_zeta_natural_pairs",
]


# --------------------------------------------------------------------------
# Table-driven prefix decoding
#
# A 16-bit window peeked at the cursor resolves the vast majority of unary,
# gamma and zeta codes in one lookup (the Zuckerli trick): per window the
# tables hold the decoded value and the bits consumed, with 0 consumed
# meaning "code does not fit in 16 bits, take the scalar path".  Tables are
# built lazily on first use (the zeta family is per-k) and shared by the
# scalar readers and the ``read_many_*`` bulk readers below.
# --------------------------------------------------------------------------

_TABLE_BITS = 16
_TABLE_SIZE = 1 << _TABLE_BITS

_UNARY_TABLE: Optional[Tuple[List[int], List[int]]] = None
_GAMMA_TABLE: Optional[Tuple[List[int], List[int]]] = None
_ZETA_TABLES: Dict[int, Tuple[List[int], List[int]]] = {}


def _fill(vals: List[int], lens: List[int], code: int, n: int, value: int) -> None:
    """Claim every 16-bit window whose top ``n`` bits equal ``code``."""
    span = 1 << (_TABLE_BITS - n)
    start = code << (_TABLE_BITS - n)
    vals[start : start + span] = [value] * span
    lens[start : start + span] = [n] * span


def _unary_table() -> Tuple[List[int], List[int]]:
    global _UNARY_TABLE
    if _UNARY_TABLE is None:
        vals = [0] * _TABLE_SIZE
        lens = [0] * _TABLE_SIZE
        for zeros in range(_TABLE_BITS):
            # `zeros` leading zeros then a 1: the code for value zeros + 1.
            _fill(vals, lens, 1, zeros + 1, zeros + 1)
        _UNARY_TABLE = (vals, lens)
    return _UNARY_TABLE


def _gamma_table() -> Tuple[List[int], List[int]]:
    global _GAMMA_TABLE
    if _GAMMA_TABLE is None:
        vals = [0] * _TABLE_SIZE
        lens = [0] * _TABLE_SIZE
        # Table build is bounded by _TABLE_BITS and memoised per process,
        # so the one cold-path run needs no checkpoint.
        for lead in range((_TABLE_BITS - 1) // 2 + 1):  # repro: noqa[CG007]
            n = 2 * lead + 1
            # The n-bit gamma codeword of x is x itself (unary exponent
            # prefix then the low bits), so the fill is direct.
            for x in range(1 << lead, 1 << (lead + 1)):  # repro: noqa[CG007]
                _fill(vals, lens, x, n, x)
        _GAMMA_TABLE = (vals, lens)
    return _GAMMA_TABLE


def _zeta_table(k: int) -> Tuple[List[int], List[int]]:
    table = _ZETA_TABLES.get(k)
    if table is not None:
        return table
    vals = [0] * _TABLE_SIZE
    lens = [0] * _TABLE_SIZE
    h = 0
    # Exits once the shortest h-level code overflows _TABLE_BITS, so the
    # memoised build is bounded; no checkpoint needed on the cold path.
    while True:  # repro: noqa[CG007]
        un = h + 1  # unary part: h zeros then a 1
        low = 1 << (h * k)
        z = (low << k) - low
        s = (z - 1).bit_length()
        m = (1 << s) - z
        shortest = un if z == 1 else un + (s - 1 if m > 0 else s)
        if shortest > _TABLE_BITS:
            break
        if z == 1:
            _fill(vals, lens, 1, un, low)
        else:
            if m > 0 and un + s - 1 <= _TABLE_BITS:
                # Short codes: s - 1 payload bits (table-bounded fill).
                for d in range(m):  # repro: noqa[CG007]
                    _fill(vals, lens, (1 << (s - 1)) | d, un + s - 1, low + d)
            if un + s <= _TABLE_BITS:
                # Long codes: s payload bits of d + m (table-bounded fill).
                for d in range(m, z):  # repro: noqa[CG007]
                    _fill(vals, lens, (1 << s) | (d + m), un + s, low + d)
        h += 1
    _ZETA_TABLES[k] = (vals, lens)
    return _ZETA_TABLES[k]


def _read_many_table(
    reader: BitReader,
    count: int,
    vals: Sequence[int],
    lens: Sequence[int],
    slow: Callable[[BitReader], int],
) -> List[int]:
    """Decode ``count`` codes through a 16-bit table, ``slow`` as fallback.

    Operates on the reader's cached-word internals directly (same-package
    contract with :class:`repro.bits.bitio.BitReader`): the refill is inlined
    so the per-code cost is a shift, two list lookups and a mask.
    """
    out: List[int] = []
    if count <= 0:
        return out
    append = out.append
    data = reader._data
    nbits = reader._nbits
    pos = reader._pos
    word = reader._word
    wbits = reader._wbits
    for _ in range(count):
        if wbits < 16:
            i = pos >> 3
            chunk = data[i : i + 8]
            total = (len(chunk) << 3) - (pos & 7)
            word = int.from_bytes(chunk, "big")
            avail = nbits - pos
            if total > avail:
                word >>= total - avail
                total = avail
            word &= (1 << total) - 1
            wbits = total
        w16 = (word >> (wbits - 16)) if wbits >= 16 else (word << (16 - wbits))
        n = lens[w16]
        if 0 < n <= wbits:
            append(vals[w16])
            wbits -= n
            word &= (1 << wbits) - 1
            pos += n
        else:
            # Long code or end-of-stream: sync, take the scalar path, resync.
            reader._pos = pos
            reader._word = word
            reader._wbits = wbits
            append(slow(reader))
            pos = reader._pos
            word = reader._word
            wbits = reader._wbits
    reader._pos = pos
    reader._word = word
    reader._wbits = wbits
    return out


def _read_many_table_pairs(
    reader: BitReader,
    count: int,
    vals_a: Sequence[int],
    lens_a: Sequence[int],
    slow_a: Callable[[BitReader], int],
    vals_b: Sequence[int],
    lens_b: Sequence[int],
    slow_b: Callable[[BitReader], int],
) -> Tuple[List[int], List[int]]:
    """Decode ``count`` interleaved (a, b) code pairs; two result lists."""
    out_a: List[int] = []
    out_b: List[int] = []
    if count <= 0:
        return out_a, out_b
    append_a = out_a.append
    append_b = out_b.append
    data = reader._data
    nbits = reader._nbits
    pos = reader._pos
    word = reader._word
    wbits = reader._wbits
    for _ in range(count):
        for append, vals, lens, slow in (
            (append_a, vals_a, lens_a, slow_a),
            (append_b, vals_b, lens_b, slow_b),
        ):
            if wbits < 16:
                i = pos >> 3
                chunk = data[i : i + 8]
                total = (len(chunk) << 3) - (pos & 7)
                word = int.from_bytes(chunk, "big")
                avail = nbits - pos
                if total > avail:
                    word >>= total - avail
                    total = avail
                word &= (1 << total) - 1
                wbits = total
            w16 = (word >> (wbits - 16)) if wbits >= 16 else (word << (16 - wbits))
            n = lens[w16]
            if 0 < n <= wbits:
                append(vals[w16])
                wbits -= n
                word &= (1 << wbits) - 1
                pos += n
            else:
                reader._pos = pos
                reader._word = word
                reader._wbits = wbits
                append(slow(reader))
                pos = reader._pos
                word = reader._word
                wbits = reader._wbits
    reader._pos = pos
    reader._word = word
    reader._wbits = wbits
    return out_a, out_b


# --------------------------------------------------------------------------
# Unary
# --------------------------------------------------------------------------

def write_unary(writer: BitWriter, x: int) -> int:
    """Write ``x >= 1`` as ``x - 1`` zeros followed by a one."""
    if x < 1:
        raise CodecDomainError(f"unary undefined for {x}")
    # A single write keeps long runs cheap: the value 1 in `x` bits.
    return writer.write_bits(1, x)


def read_unary(reader: BitReader) -> int:
    """Read a unary code; inverse of :func:`write_unary`."""
    return reader.read_unary_run() + 1


def unary_length(x: int) -> int:
    """Bit length of the unary code of ``x``."""
    if x < 1:
        raise CodecDomainError(f"unary undefined for {x}")
    return x


# --------------------------------------------------------------------------
# Minimal binary over an interval [0, z - 1]
# --------------------------------------------------------------------------

def _ceil_log2(z: int) -> int:
    if z <= 0:
        raise CodecDomainError(f"ceil log2 undefined for {z}")
    return (z - 1).bit_length()


def write_minimal_binary(writer: BitWriter, x: int, z: int) -> int:
    """Write ``x`` minimally over the interval ``[0, z - 1]``.

    With ``s = ceil(log2 z)`` and ``m = 2**s - z``: values below ``m`` take
    ``s - 1`` bits, the rest take ``s`` bits (offset by ``m``).
    """
    if not 0 <= x < z:
        raise CodecDomainError(f"{x} outside [0, {z - 1}]")
    if z == 1:
        return 0  # the singleton interval needs no bits
    s = _ceil_log2(z)
    m = (1 << s) - z
    if x < m:
        return writer.write_bits(x, s - 1)
    return writer.write_bits(x + m, s)


def read_minimal_binary(reader: BitReader, z: int) -> int:
    """Read a minimal binary code over ``[0, z - 1]``."""
    if z <= 0:
        raise CodecDomainError(f"empty interval: z={z}")
    if z == 1:
        return 0
    s = _ceil_log2(z)
    m = (1 << s) - z
    if s == 1:
        # m == 0 here (z == 2); one full-width bit.
        return reader.read_bits(1)
    value = reader.read_bits(s - 1)
    if value < m:
        return value
    value = (value << 1) | reader.read_bit()
    return value - m


def minimal_binary_length(x: int, z: int) -> int:
    """Bit length of the minimal binary code of ``x`` over ``[0, z - 1]``."""
    if not 0 <= x < z:
        raise CodecDomainError(f"{x} outside [0, {z - 1}]")
    if z == 1:
        return 0
    s = _ceil_log2(z)
    m = (1 << s) - z
    return s - 1 if x < m else s


# --------------------------------------------------------------------------
# Elias gamma / delta
# --------------------------------------------------------------------------

def write_gamma(writer: BitWriter, x: int) -> int:
    """Write Elias gamma: unary(|x| bits) then the low bits of ``x``."""
    if x < 1:
        raise CodecDomainError(f"gamma undefined for {x}")
    l = x.bit_length() - 1
    n = write_unary(writer, l + 1)
    if l:
        n += writer.write_bits(x - (1 << l), l)
    return n


def read_gamma(reader: BitReader) -> int:
    """Read an Elias gamma code."""
    # Table probe first: gamma decoding is the hottest loop of every
    # structure-record decode, and nearly every code fits 16 bits.
    vals, lens = _gamma_table()
    w16 = reader.peek_bits(16)
    n = lens[w16]
    if n:
        reader.skip(n)
        return vals[w16]
    l = reader.read_unary_run()
    if l == 0:
        return 1
    return (1 << l) | reader.read_bits(l)


def gamma_length(x: int) -> int:
    """Bit length of the Elias gamma code of ``x``."""
    if x < 1:
        raise CodecDomainError(f"gamma undefined for {x}")
    return 2 * (x.bit_length() - 1) + 1


def write_gamma_natural(writer: BitWriter, n: int) -> int:
    """Gamma-code a natural number (``n >= 0``) as ``gamma(n + 1)``."""
    return write_gamma(writer, n + 1)


def read_gamma_natural(reader: BitReader) -> int:
    """Inverse of :func:`write_gamma_natural`."""
    return read_gamma(reader) - 1


def write_gamma_integer(writer: BitWriter, x: int) -> int:
    """Gamma-code a possibly-negative integer via Eq. (1)."""
    return write_gamma_natural(writer, to_natural(x))


def read_gamma_integer(reader: BitReader) -> int:
    """Inverse of :func:`write_gamma_integer`."""
    return to_integer(read_gamma_natural(reader))


def write_delta(writer: BitWriter, x: int) -> int:
    """Write Elias delta: gamma(|x| bits) then the low bits of ``x``."""
    if x < 1:
        raise CodecDomainError(f"delta undefined for {x}")
    l = x.bit_length() - 1
    n = write_gamma(writer, l + 1)
    if l:
        n += writer.write_bits(x - (1 << l), l)
    return n


def read_delta(reader: BitReader) -> int:
    """Read an Elias delta code."""
    l = read_gamma(reader) - 1
    if l == 0:
        return 1
    return (1 << l) | reader.read_bits(l)


def delta_length(x: int) -> int:
    """Bit length of the Elias delta code of ``x``."""
    if x < 1:
        raise CodecDomainError(f"delta undefined for {x}")
    l = x.bit_length() - 1
    return gamma_length(l + 1) + l


# --------------------------------------------------------------------------
# Boldi-Vigna zeta_k
# --------------------------------------------------------------------------

def write_zeta(writer: BitWriter, x: int, k: int) -> int:
    """Write the Boldi-Vigna zeta_k code of ``x >= 1``.

    With ``x`` in ``[2**(h*k), 2**((h+1)*k) - 1]``: unary(h + 1) followed by
    the minimal binary code of ``x - 2**(h*k)`` over an interval of size
    ``2**((h+1)*k) - 2**(h*k)``.  zeta_1 coincides with Elias gamma.
    """
    if x < 1:
        raise CodecDomainError(f"zeta undefined for {x}")
    if k < 1:
        raise CodecDomainError(f"invalid zeta shrinking parameter k={k}")
    h = (x.bit_length() - 1) // k
    n = write_unary(writer, h + 1)
    low = 1 << (h * k)
    n += write_minimal_binary(writer, x - low, (low << k) - low)
    return n


def read_zeta(reader: BitReader, k: int) -> int:
    """Read a zeta_k code."""
    vals, lens = _zeta_table(k)
    w16 = reader.peek_bits(16)
    n = lens[w16]
    if n:
        reader.skip(n)
        return vals[w16]
    h = reader.read_unary_run()
    low = 1 << (h * k)
    return low + read_minimal_binary(reader, (low << k) - low)


def zeta_length(x: int, k: int) -> int:
    """Bit length of the zeta_k code of ``x``."""
    if x < 1:
        raise CodecDomainError(f"zeta undefined for {x}")
    h = (x.bit_length() - 1) // k
    low = 1 << (h * k)
    return (h + 1) + minimal_binary_length(x - low, (low << k) - low)


def write_zeta_natural(writer: BitWriter, n: int, k: int) -> int:
    """zeta_k-code a natural number as ``zeta_k(n + 1)``."""
    return write_zeta(writer, n + 1, k)


def read_zeta_natural(reader: BitReader, k: int) -> int:
    """Inverse of :func:`write_zeta_natural`."""
    return read_zeta(reader, k) - 1


def write_zeta_integer(writer: BitWriter, x: int, k: int) -> int:
    """zeta_k-code a possibly-negative integer via Eq. (1)."""
    return write_zeta_natural(writer, to_natural(x), k)


def read_zeta_integer(reader: BitReader, k: int) -> int:
    """Inverse of :func:`write_zeta_integer`."""
    return to_integer(read_zeta_natural(reader, k))


# --------------------------------------------------------------------------
# Golomb / Rice
# --------------------------------------------------------------------------

def write_golomb(writer: BitWriter, x: int, m: int) -> int:
    """Write the Golomb code of ``x >= 0`` with modulus ``m >= 1``."""
    if x < 0:
        raise CodecDomainError(f"golomb undefined for {x}")
    if m < 1:
        raise CodecDomainError(f"invalid golomb modulus m={m}")
    q, r = divmod(x, m)
    n = write_unary(writer, q + 1)
    n += write_minimal_binary(writer, r, m)
    return n


def read_golomb(reader: BitReader, m: int) -> int:
    """Read a Golomb code with modulus ``m``."""
    q = read_unary(reader) - 1
    return q * m + read_minimal_binary(reader, m)


def golomb_length(x: int, m: int) -> int:
    """Bit length of the Golomb code of ``x`` with modulus ``m``."""
    q, r = divmod(x, m)
    return (q + 1) + minimal_binary_length(r, m)


def write_rice(writer: BitWriter, x: int, b: int) -> int:
    """Write the Rice code of ``x >= 0``: Golomb with ``m = 2**b``."""
    return write_golomb(writer, x, 1 << b)


def read_rice(reader: BitReader, b: int) -> int:
    """Read a Rice code with parameter ``b``."""
    return read_golomb(reader, 1 << b)


def rice_length(x: int, b: int) -> int:
    """Bit length of the Rice code of ``x`` with parameter ``b``."""
    return golomb_length(x, 1 << b)


# --------------------------------------------------------------------------
# Variable byte
# --------------------------------------------------------------------------

def write_vbyte(writer: BitWriter, x: int) -> int:
    """Write ``x >= 0`` in 7-bit groups, high continuation bit per byte."""
    if x < 0:
        raise CodecDomainError(f"vbyte undefined for {x}")
    groups = []
    while True:
        groups.append(x & 0x7F)
        x >>= 7
        if not x:
            break
    n = 0
    for i in range(len(groups) - 1, 0, -1):
        n += writer.write_bits(0x80 | groups[i], 8)
    n += writer.write_bits(groups[0], 8)
    return n


def read_vbyte(reader: BitReader) -> int:
    """Read a variable-byte code."""
    value = 0
    while True:
        byte = reader.read_bits(8)
        value = (value << 7) | (byte & 0x7F)
        if not byte & 0x80:
            return value


def vbyte_length(x: int) -> int:
    """Bit length of the variable-byte code of ``x``."""
    if x < 0:
        raise CodecDomainError(f"vbyte undefined for {x}")
    return 8 * max(1, (x.bit_length() + 6) // 7)


# --------------------------------------------------------------------------
# Simple16
# --------------------------------------------------------------------------

# Each selector lists the bit widths of the slots packed into one 28-bit
# payload (the 4 selector bits make a 32-bit word).  This is the canonical
# Simple16 table used by inverted-index codecs such as the one EdgeLog cites.
_SIMPLE16_MODES: List[List[int]] = [
    [1] * 28,
    [2] * 7 + [1] * 14,
    [1] * 7 + [2] * 7 + [1] * 7,
    [1] * 14 + [2] * 7,
    [2] * 14,
    [4] * 1 + [3] * 8,
    [3] * 1 + [4] * 4 + [3] * 3,
    [4] * 7,
    [5] * 4 + [4] * 2,
    [4] * 2 + [5] * 4,
    [6] * 3 + [5] * 2,
    [5] * 2 + [6] * 3,
    [7] * 4,
    [10] * 1 + [9] * 2,
    [14] * 2,
    [28] * 1,
]


def encode_simple16(writer: BitWriter, values: Sequence[int]) -> int:
    """Pack naturals ``< 2**28`` into 32-bit Simple16 words.

    The count is *not* stored; callers record it separately.  Returns the
    number of bits written.
    """
    for v in values:
        if v < 0 or v >= (1 << 28):
            raise CodecDomainError(f"simple16 requires 0 <= value < 2**28, got {v}")
    n = 0
    i = 0
    total = len(values)
    while i < total:
        for selector, widths in enumerate(_SIMPLE16_MODES):
            # Trailing slots of a partial final block are zero-filled, so a
            # selector fits as soon as every value present fits its slot.
            take = min(len(widths), total - i)
            fits = all(
                values[i + j].bit_length() <= widths[j] for j in range(take)
            )
            if fits:
                n += writer.write_bits(selector, 4)
                for j, width in enumerate(widths):
                    v = values[i + j] if i + j < total else 0
                    n += writer.write_bits(v, width)
                i += take
                break
        else:  # pragma: no cover - mode 15 always fits
            raise AssertionError("no simple16 mode fits")
    return n


def decode_simple16(reader: BitReader, count: int) -> List[int]:
    """Decode ``count`` naturals written by :func:`encode_simple16`."""
    out: List[int] = []
    while len(out) < count:
        selector = reader.read_bits(4)
        for width in _SIMPLE16_MODES[selector]:
            out.append(reader.read_bits(width))
    return out[:count]


# --------------------------------------------------------------------------
# Bulk readers
#
# Decode whole runs of codes with the reader state held in locals; the
# per-record decoders (structure, timestamps) are built on these.  Each
# returns exactly ``count`` values or raises the same exceptions as its
# scalar counterpart mid-run.  The actual kernel is chosen per run by the
# planner in :mod:`repro.bits.kernels`: numpy-vectorised decoding
# (:mod:`repro.bits.vectorized`) for long runs when numpy is available,
# the inlined 16-bit table loop otherwise, with a per-code scalar tier for
# differential testing.  All tiers are byte-exact mirrors of one another.
# --------------------------------------------------------------------------

_VEC_CHECKED = False
_VEC_MODULE: Optional[Any] = None


def _vectorized_kernel() -> Optional[Any]:
    """The numpy-tier module, imported lazily; ``None`` when unusable.

    The planner only reports the numpy tier after probing numpy itself,
    but the vectorized module is still imported defensively so a broken
    numpy installation degrades to the table kernel instead of raising.
    """
    global _VEC_CHECKED, _VEC_MODULE
    if not _VEC_CHECKED:
        try:
            from repro.bits import vectorized
        except ImportError:
            _VEC_MODULE = None
        else:
            _VEC_MODULE = vectorized
        _VEC_CHECKED = True
    return _VEC_MODULE


def _check_count(count: int) -> None:
    """Bulk reads own their domain check: a negative count is a caller bug."""
    if count < 0:
        raise CodecDomainError(f"negative bulk read count: {count}")


def _decode_run(
    reader: BitReader,
    count: int,
    vals: Sequence[int],
    lens: Sequence[int],
    slow: Callable[[BitReader], int],
    delta: int = 0,
) -> List[int]:
    """Decode ``count`` codes of one family on the planned kernel tier.

    ``delta`` is added to every decoded value (``-1`` for the ``*_natural``
    wrappers) inside the kernel, where the numpy tier can apply it as one
    array operation.

    When a query context is active on this thread (see the checkpoint
    hook in :mod:`repro.bits.kernels`), the run is charged against the
    context's decode-work budget and split into stride-sized chunks with
    a checkpoint between each, so even a single huge run observes its
    deadline within one stride of decode work.  Each chunk decodes whole
    codes and leaves the reader cursor between codes, so chunked and
    unchunked decodes are byte-identical; an interruption raises with the
    cursor in a consistent (between-codes) position.
    """
    _check_count(count)
    hook = kernels._checkpoint_hook
    if hook is not None:
        stride = hook(count)
        if 0 < stride < count:
            out: List[int] = []
            done = 0
            while True:
                step = min(stride, count - done)
                out.extend(
                    _decode_run_plain(reader, step, vals, lens, slow, delta)
                )
                done += step
                if done >= count:
                    return out
                hook(0)
    return _decode_run_plain(reader, count, vals, lens, slow, delta)


def _decode_run_plain(
    reader: BitReader,
    count: int,
    vals: Sequence[int],
    lens: Sequence[int],
    slow: Callable[[BitReader], int],
    delta: int = 0,
) -> List[int]:
    """The uninterruptible kernel dispatch behind :func:`_decode_run`."""
    tier = kernels.plan(count)
    if tier == kernels.TIER_NUMPY:
        vec = _vectorized_kernel()
        if vec is not None:

            def fallback(r: BitReader, c: int) -> List[int]:
                raw = _read_many_table(r, c, vals, lens, slow)
                return [x + delta for x in raw] if delta else raw

            result: List[int] = vec.decode_run(
                reader, count, vals, lens, slow, delta, fallback
            )
            return result
        tier = kernels.TIER_TABLE
    if tier == kernels.TIER_SCALAR:
        out: List[int] = []
        for _ in range(count):
            out.append(slow(reader) + delta)
        return out
    raw = _read_many_table(reader, count, vals, lens, slow)
    if delta:
        return [x + delta for x in raw]
    return raw


def _decode_run_pairs(
    reader: BitReader,
    count: int,
    vals_a: Sequence[int],
    lens_a: Sequence[int],
    slow_a: Callable[[BitReader], int],
    vals_b: Sequence[int],
    lens_b: Sequence[int],
    slow_b: Callable[[BitReader], int],
    delta: int = 0,
) -> Tuple[List[int], List[int]]:
    """Decode ``count`` interleaved (a, b) pairs on the planned kernel tier.

    Chunks against an active query context exactly like
    :func:`_decode_run` (pairs count as two work units each).
    """
    _check_count(count)
    hook = kernels._checkpoint_hook
    if hook is not None:
        stride = hook(2 * count)
        # A pair is two codes; halve the stride so a chunk does roughly
        # the same decode work as in the single-code readers.
        stride //= 2
        if 0 < stride < count:
            out_a: List[int] = []
            out_b: List[int] = []
            done = 0
            while True:
                step = min(stride, count - done)
                part_a, part_b = _decode_run_pairs_plain(
                    reader, step,
                    vals_a, lens_a, slow_a,
                    vals_b, lens_b, slow_b,
                    delta,
                )
                out_a.extend(part_a)
                out_b.extend(part_b)
                done += step
                if done >= count:
                    return out_a, out_b
                hook(0)
    return _decode_run_pairs_plain(
        reader, count, vals_a, lens_a, slow_a, vals_b, lens_b, slow_b, delta
    )


def _decode_run_pairs_plain(
    reader: BitReader,
    count: int,
    vals_a: Sequence[int],
    lens_a: Sequence[int],
    slow_a: Callable[[BitReader], int],
    vals_b: Sequence[int],
    lens_b: Sequence[int],
    slow_b: Callable[[BitReader], int],
    delta: int = 0,
) -> Tuple[List[int], List[int]]:
    """The uninterruptible kernel dispatch behind :func:`_decode_run_pairs`."""
    tier = kernels.plan(count)
    if tier == kernels.TIER_NUMPY:
        vec = _vectorized_kernel()
        if vec is not None:

            def fallback(r: BitReader, c: int) -> Tuple[List[int], List[int]]:
                raw_a, raw_b = _read_many_table_pairs(
                    r, c, vals_a, lens_a, slow_a, vals_b, lens_b, slow_b
                )
                if delta:
                    return (
                        [x + delta for x in raw_a],
                        [x + delta for x in raw_b],
                    )
                return raw_a, raw_b

            pair: Tuple[List[int], List[int]] = vec.decode_run_pairs(
                reader, count,
                vals_a, lens_a, slow_a,
                vals_b, lens_b, slow_b,
                delta,
                fallback,
            )
            return pair
        tier = kernels.TIER_TABLE
    if tier == kernels.TIER_SCALAR:
        out_a: List[int] = []
        out_b: List[int] = []
        for _ in range(count):
            out_a.append(slow_a(reader) + delta)
            out_b.append(slow_b(reader) + delta)
        return out_a, out_b
    raw_a, raw_b = _read_many_table_pairs(
        reader, count, vals_a, lens_a, slow_a, vals_b, lens_b, slow_b
    )
    if delta:
        return [x + delta for x in raw_a], [x + delta for x in raw_b]
    return raw_a, raw_b


def read_many_unary(reader: BitReader, count: int) -> List[int]:
    """Read ``count`` unary codes (values >= 1)."""
    vals, lens = _unary_table()
    return _decode_run(reader, count, vals, lens, read_unary)


def read_many_gamma(reader: BitReader, count: int) -> List[int]:
    """Read ``count`` Elias gamma codes (values >= 1)."""
    vals, lens = _gamma_table()
    return _decode_run(reader, count, vals, lens, read_gamma)


def read_many_gamma_natural(reader: BitReader, count: int) -> List[int]:
    """Read ``count`` gamma-coded naturals (values >= 0)."""
    vals, lens = _gamma_table()
    return _decode_run(reader, count, vals, lens, read_gamma, delta=-1)


def read_many_zeta(reader: BitReader, count: int, k: int) -> List[int]:
    """Read ``count`` zeta_k codes (values >= 1)."""
    vals, lens = _zeta_table(k)
    return _decode_run(reader, count, vals, lens, lambda r: read_zeta(r, k))


def read_many_zeta_natural(reader: BitReader, count: int, k: int) -> List[int]:
    """Read ``count`` zeta_k-coded naturals (values >= 0)."""
    vals, lens = _zeta_table(k)
    return _decode_run(
        reader, count, vals, lens, lambda r: read_zeta(r, k), delta=-1
    )


def read_many_zeta_natural_pairs(
    reader: BitReader, count: int, k_a: int, k_b: int
) -> Tuple[List[int], List[int]]:
    """Read ``count`` interleaved (zeta_k_a, zeta_k_b) natural pairs.

    This is the layout of interval-graph timestamp records: a timestamp gap
    followed by its duration, each with its own shrinking parameter.
    """
    vals_a, lens_a = _zeta_table(k_a)
    vals_b, lens_b = _zeta_table(k_b)
    return _decode_run_pairs(
        reader, count,
        vals_a, lens_a, lambda r: read_zeta(r, k_a),
        vals_b, lens_b, lambda r: read_zeta(r, k_b),
        delta=-1,
    )


def iter_code_lengths(values: Iterable[int], k: int) -> int:
    """Total zeta_k bit length of an iterable of naturals (for sizing)."""
    return sum(zeta_length(v + 1, k) for v in values)
