"""Datasets: the paper's synthetic graphs and stand-ins for its real traces.

Table III lists eight graphs.  Comm.Net and Powerlaw are synthetic in the
paper itself (Erdos-Renyi and Barabasi-Albert respectively, built "according
to the instructions provided in [6]") and are generated here the same way.
The six real-world traces (Flickr, Wiki-Edit, Wiki-Links-sub/full,
Yahoo-sub/full) cannot be redistributed and span up to 3x10^9 contacts; per
DESIGN.md they are replaced by parameterised *stand-ins* that reproduce the
properties the paper's techniques exploit -- graph kind, granularity,
power-law degrees, label locality and bursty (power-law gap) timestamps --
at a scale a pure-Python codec can sweep.
"""

from repro.datasets.registry import DATASETS, dataset_names, load
from repro.datasets.synthetic import comm_net, powerlaw_graph
from repro.datasets.realworldlike import (
    flickr_like,
    wiki_edit_like,
    wiki_links_like,
    yahoo_like,
)

__all__ = [
    "DATASETS",
    "dataset_names",
    "load",
    "comm_net",
    "powerlaw_graph",
    "flickr_like",
    "wiki_edit_like",
    "wiki_links_like",
    "yahoo_like",
]
