"""Scaled synthetic stand-ins for the paper's real-world traces (Table III).

The real datasets are unavailable (licensing) and up to 3x10^9 contacts;
DESIGN.md records the substitution.  Each stand-in matches its original's
*shape*: graph kind, time granularity, relative lifetime, bursty power-law
timestamp gaps (the Figure 2-4 property ChronoGraph exploits), skewed
degrees and label locality (the structure-compression properties).

Default scales target ~10^4 contacts per graph so that the full Table IV/V
sweep over nine methods runs in minutes in pure Python.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.datasets.util import (
    bursty_timestamps,
    local_neighbor,
    pareto_gap,
    zipf_index,
)
from repro.graph.builders import graph_from_contacts
from repro.graph.model import GraphKind, TemporalGraph


def flickr_like(
    num_nodes: int = 1200,
    num_contacts: int = 15_000,
    lifetime_days: int = 134,
    seed: int = 1,
) -> TemporalGraph:
    """Incremental friendship graph with day granularity (Flickr stand-in).

    Matches the original's defining features: incremental (friendships are
    only added), a 134-day lifetime at day granularity, bursty arrival of
    edges (growth accelerates) and preferential attachment.
    """
    rng = random.Random(seed)
    contacts: List[Tuple[int, int, int]] = []
    # Users add friends in bursts: a batch of friendships lands within a few
    # days of each other (cross-neighbor temporal locality, Section IV-A).
    while len(contacts) < num_contacts:
        # Growth accelerates: most bursts land late in the lifetime.
        day = int(lifetime_days * (len(contacts) / num_contacts) ** 0.7)
        u = zipf_index(rng, num_nodes, skew=1.3)
        batch = 1 + pareto_gap(rng, alpha=1.4, x_min=1, cap=25)
        for _ in range(batch):
            if rng.random() < 0.6:
                v = local_neighbor(rng, u, num_nodes)
            else:
                v = zipf_index(rng, num_nodes, skew=1.3)
            if v == u:
                v = (u + 1) % num_nodes
            jitter = pareto_gap(rng, alpha=1.8, x_min=1, cap=10) - 1
            contacts.append((u, v, min(day + jitter, lifetime_days - 1)))
            if len(contacts) >= num_contacts:
                break
    return graph_from_contacts(
        GraphKind.INCREMENTAL,
        contacts,
        num_nodes=num_nodes,
        name="flickr-like",
        granularity="day",
    )


def wiki_edit_like(
    num_users: int = 400,
    num_articles: int = 900,
    num_sessions: int = 2600,
    lifetime_seconds: int = 30_000_000,
    seed: int = 2,
) -> TemporalGraph:
    """Bipartite point graph of user -> article edits (Wiki-Edit stand-in).

    Captures the paper's Section IV-A locality argument directly: a user who
    edits keeps editing in the near future, either the same article (locality
    with a specific neighbor) or another one (locality across neighbors), so
    sessions produce short gaps and the session process has a heavy tail.
    """
    rng = random.Random(seed)
    num_nodes = num_users + num_articles
    contacts: List[Tuple[int, int, int]] = []
    for _ in range(num_sessions):
        user = zipf_index(rng, num_users, skew=1.4)
        session_start = rng.randrange(lifetime_seconds)
        edits = 1 + pareto_gap(rng, alpha=1.6, x_min=1, cap=30)
        times = bursty_timestamps(
            rng, edits, session_start, alpha=1.4, x_min=5, cap=3600
        )
        article = num_users + zipf_index(rng, num_articles, skew=1.2)
        for t in times:
            if rng.random() < 0.45:  # switch articles mid-session sometimes
                article = num_users + zipf_index(rng, num_articles, skew=1.2)
            contacts.append((user, article, min(t, lifetime_seconds - 1)))
    return graph_from_contacts(
        GraphKind.POINT,
        contacts,
        num_nodes=num_nodes,
        name="wiki-edit-like",
        granularity="second",
    )


def wiki_links_like(
    num_articles: int = 1100,
    num_links: int = 11_000,
    lifetime_seconds: int = 60_000_000,
    seed: int = 3,
    name: str = "wiki-links-like",
) -> TemporalGraph:
    """Interval graph of article links with long lifetimes (Wiki-Links stand-in).

    Links appear at a power-law-gapped moment, persist for a long (heavy
    tailed) interval, and occasionally reappear after removal -- producing
    the multi-contact edges the dedup step targets.
    """
    rng = random.Random(seed)
    contacts: List[Tuple[int, int, int, int]] = []
    # Links are created by *edit sessions*: one edit of article u adds a
    # batch of links within seconds of each other, so u's neighbors share
    # nearly identical creation timestamps (cross-neighbor locality) --
    # exactly the redundancy the per-node previous-gap strategy exploits
    # and per-edge inverted lists (EdgeLog) cannot.
    while len(contacts) < num_links:
        u = zipf_index(rng, num_articles, skew=1.25)
        session_time = rng.randrange(lifetime_seconds // 2)
        batch = 1 + pareto_gap(rng, alpha=1.2, x_min=1, cap=30)
        for _ in range(batch):
            if rng.random() < 0.7:
                v = local_neighbor(rng, u, num_articles, spread=64)
            else:
                v = zipf_index(rng, num_articles, skew=1.25)
            if v == u:
                v = (u + 1) % num_articles
            t = session_time + pareto_gap(rng, alpha=1.5, x_min=1, cap=300)
            episodes = 1 if rng.random() < 0.8 else 2
            for _ in range(episodes):
                duration = pareto_gap(
                    rng, alpha=0.9, x_min=3600, cap=lifetime_seconds // 2
                )
                contacts.append((u, v, t, duration))
                t += duration + pareto_gap(rng, alpha=1.1, x_min=86_400,
                                           cap=lifetime_seconds // 4)
                if t >= lifetime_seconds:
                    break
            if len(contacts) >= num_links:
                break
    return graph_from_contacts(
        GraphKind.INTERVAL,
        contacts,
        num_nodes=num_articles,
        name=name,
        granularity="second",
    )


def yahoo_like(
    num_hosts: int = 700,
    num_flows: int = 11_000,
    lifetime_seconds: int = 54_094,
    seed: int = 4,
    name: str = "yahoo-like",
) -> TemporalGraph:
    """Point graph of netflow records over a short lifetime (Yahoo stand-in).

    The original spans about a day, which is why Figure 2 shows 40% of its
    previous-strategy gaps under 100 seconds: traffic to a server is dense
    in time.  Flows here target Zipf-popular servers in bursts.
    """
    rng = random.Random(seed)
    contacts: List[Tuple[int, int, int]] = []
    flows = 0
    # A client session hits several servers within a short window (think a
    # page load fanning out), then the same flows recur in bursts.
    while flows < num_flows:
        src = zipf_index(rng, num_hosts, skew=1.2)
        session_start = rng.randrange(lifetime_seconds)
        fanout = 1 + pareto_gap(rng, alpha=1.5, x_min=1, cap=12)
        for _ in range(fanout):
            dst = zipf_index(rng, num_hosts, skew=1.5)
            if dst == src:
                dst = (src + 1) % num_hosts
            burst = 1 + pareto_gap(rng, alpha=1.7, x_min=1, cap=10)
            start = session_start + pareto_gap(rng, alpha=1.6, x_min=1, cap=120)
            times = bursty_timestamps(rng, burst, start, alpha=1.5, x_min=1,
                                      cap=600)
            for t in times:
                contacts.append((src, dst, min(t, lifetime_seconds - 1)))
                flows += 1
                if flows >= num_flows:
                    break
            if flows >= num_flows:
                break
    return graph_from_contacts(
        GraphKind.POINT,
        contacts,
        num_nodes=num_hosts,
        name=name,
        granularity="second",
    )
