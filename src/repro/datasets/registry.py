"""Named dataset registry mirroring Table III.

``load(name)`` produces the graph for a Table III row at the default
reproduction scale; ``load(name, scale=...)`` scales contact counts for
quicker smoke runs or heavier sweeps.  Generation is deterministic per
(name, scale).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.realworldlike import (
    flickr_like,
    wiki_edit_like,
    wiki_links_like,
    yahoo_like,
)
from repro.datasets.synthetic import comm_net, powerlaw_graph
from repro.graph.model import TemporalGraph


def _flickr(scale: float) -> TemporalGraph:
    return flickr_like(
        num_nodes=max(50, int(1200 * scale)),
        num_contacts=max(150, int(15_000 * scale)),
    )


def _wiki_edit(scale: float) -> TemporalGraph:
    return wiki_edit_like(
        num_users=max(20, int(400 * scale)),
        num_articles=max(40, int(900 * scale)),
        num_sessions=max(60, int(2600 * scale)),
    )


def _wiki_links_sub(scale: float) -> TemporalGraph:
    return wiki_links_like(
        num_articles=max(60, int(1000 * scale)),
        num_links=max(150, int(9000 * scale)),
        lifetime_seconds=30_000_000,
        seed=3,
        name="wiki-links-sub-like",
    )


def _wiki_links_full(scale: float) -> TemporalGraph:
    # ~3x the sub graph, like the paper's full recreation.
    return wiki_links_like(
        num_articles=max(150, int(2600 * scale)),
        num_links=max(400, int(27_000 * scale)),
        lifetime_seconds=60_000_000,
        seed=33,
        name="wiki-links-full-like",
    )


def _yahoo_sub(scale: float) -> TemporalGraph:
    return yahoo_like(
        num_hosts=max(40, int(700 * scale)),
        num_flows=max(150, int(11_000 * scale)),
        seed=4,
        name="yahoo-sub-like",
    )


def _yahoo_full(scale: float) -> TemporalGraph:
    return yahoo_like(
        num_hosts=max(100, int(1700 * scale)),
        num_flows=max(400, int(33_000 * scale)),
        lifetime_seconds=181_292,
        seed=44,
        name="yahoo-full-like",
    )


def _comm_net(scale: float) -> TemporalGraph:
    return comm_net(
        num_nodes=max(20, int(200 * scale)),
        time_steps=max(30, int(300 * scale)),
        contacts_per_step=40,
    )


def _powerlaw(scale: float) -> TemporalGraph:
    return powerlaw_graph(
        num_nodes=max(50, int(2000 * scale)),
        edges_per_node=8,
    )


#: Table III row name -> deterministic factory.
DATASETS: Dict[str, Callable[[float], TemporalGraph]] = {
    "flickr": _flickr,
    "wiki-edit": _wiki_edit,
    "wiki-links-sub": _wiki_links_sub,
    "wiki-links-full": _wiki_links_full,
    "yahoo-sub": _yahoo_sub,
    "yahoo-full": _yahoo_full,
    "comm-net": _comm_net,
    "powerlaw": _powerlaw,
}


def dataset_names() -> List[str]:
    """Table III order."""
    return list(DATASETS)


def load(name: str, scale: float = 1.0) -> TemporalGraph:
    """Build the named dataset at the given scale (1.0 = reproduction size)."""
    try:
        factory = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return factory(scale)
