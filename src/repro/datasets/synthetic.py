"""The paper's two synthetic datasets: Comm.Net and Powerlaw (Table III).

Both are *interval* graphs built "in the context of the work in [9] ...
according to the instructions provided in [6]":

* **Comm.Net** -- an Erdos-Renyi random network whose nodes establish
  short-life communications: at every time step a random set of node pairs
  opens a contact lasting a handful of steps.  The paper's instance has an
  "unreal" 1,906 average contacts per node; ours keeps the same
  dense-per-node character at laptop scale.
* **Powerlaw** -- a Barabasi-Albert preferential-attachment network; each
  attachment edge becomes a contact with a short activity interval, giving
  the power-law degree distribution the dataset is named after.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graph.builders import graph_from_contacts
from repro.graph.model import GraphKind, TemporalGraph


def comm_net(
    num_nodes: int = 200,
    time_steps: int = 300,
    contacts_per_step: int = 40,
    max_duration: int = 5,
    seed: int = 0,
) -> TemporalGraph:
    """Erdos-Renyi style random short-life communication network."""
    if num_nodes < 2:
        raise ValueError("comm_net needs at least two nodes")
    rng = random.Random(seed)
    contacts: List[Tuple[int, int, int, int]] = []
    for t in range(time_steps):
        for _ in range(contacts_per_step):
            u = rng.randrange(num_nodes)
            v = rng.randrange(num_nodes)
            while v == u:
                v = rng.randrange(num_nodes)
            duration = rng.randint(1, max_duration)
            contacts.append((u, v, t, duration))
    return graph_from_contacts(
        GraphKind.INTERVAL,
        contacts,
        num_nodes=num_nodes,
        name="comm-net",
        granularity="step",
    )


def powerlaw_graph(
    num_nodes: int = 2000,
    edges_per_node: int = 8,
    time_steps: int = 1000,
    max_duration: int = 20,
    seed: int = 0,
) -> TemporalGraph:
    """Barabasi-Albert preferential-attachment interval graph."""
    if num_nodes <= edges_per_node:
        raise ValueError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    # Repeated-nodes list implements preferential attachment in O(1) a draw.
    repeated: List[int] = list(range(edges_per_node))
    contacts: List[Tuple[int, int, int, int]] = []
    for u in range(edges_per_node, num_nodes):
        targets = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(repeated) if repeated else rng.randrange(u))
        birth = (u * time_steps) // num_nodes  # nodes arrive over the lifetime
        for v in sorted(targets):
            t = min(time_steps - 1, birth + rng.randrange(0, 3))
            duration = rng.randint(1, max_duration)
            contacts.append((u, v, t, duration))
            repeated.append(v)
        repeated.extend([u] * edges_per_node)
    return graph_from_contacts(
        GraphKind.INTERVAL,
        contacts,
        num_nodes=num_nodes,
        name="powerlaw",
        granularity="step",
    )
