"""Shared random-generation primitives for the dataset builders.

The key temporal property the paper uncovers (Section IV-A) is that
inter-contact gaps under the *previous* ordering follow a power law with a
heavy tail.  :func:`pareto_gap` draws such gaps; :func:`zipf_index` draws
power-law-distributed node picks, giving both the degree skew and the label
locality real traces exhibit.
"""

from __future__ import annotations

import random
from typing import List


def pareto_gap(rng: random.Random, alpha: float = 1.5, x_min: int = 1,
               cap: int = 10**7) -> int:
    """A discrete Pareto-distributed gap >= x_min (heavy-tailed)."""
    u = rng.random()
    gap = int(x_min * (1.0 - u) ** (-1.0 / alpha))
    return min(max(x_min, gap), cap)


def zipf_index(rng: random.Random, n: int, skew: float = 1.1) -> int:
    """An index in [0, n) with approximately Zipfian popularity.

    Uses the inverse-CDF of the continuous bounded Pareto as a fast
    approximation, which is plenty for workload shaping.
    """
    if n <= 1:
        return 0
    u = rng.random()
    if skew == 1.0:
        skew = 1.0001
    h = 1.0 - skew
    # Inverse of F(x) ~ (x^h - 1) / (n^h - 1) over [1, n].
    x = ((n ** h - 1.0) * u + 1.0) ** (1.0 / h)
    return min(n - 1, max(0, int(x) - 1))


def bursty_timestamps(
    rng: random.Random,
    count: int,
    start: int,
    alpha: float = 1.3,
    x_min: int = 1,
    cap: int = 10**6,
) -> List[int]:
    """``count`` ascending timestamps with power-law inter-event gaps."""
    out: List[int] = []
    t = start
    for _ in range(count):
        out.append(t)
        t += pareto_gap(rng, alpha=alpha, x_min=x_min, cap=cap)
    return out


def local_neighbor(rng: random.Random, u: int, n: int, spread: int = 32) -> int:
    """A neighbor near ``u`` in label space (locality of reference)."""
    offset = pareto_gap(rng, alpha=1.2, x_min=1, cap=max(2, spread))
    if rng.random() < 0.5:
        offset = -offset
    return min(n - 1, max(0, u + offset))
