"""R-MAT temporal graph generator.

R-MAT (recursive matrix) is the standard scale-free generator used by graph
benchmarks (Graph500); each edge lands in a quadrant of the adjacency
matrix recursively with probabilities (a, b, c, d).  We attach bursty
timestamps to the generated edges so the output exercises the same codec
paths as the Table III stand-ins, giving the benchmarks an extra
family of inputs whose skew is controlled by a single knob.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.datasets.util import pareto_gap
from repro.graph.builders import graph_from_contacts
from repro.graph.model import GraphKind, TemporalGraph


def rmat_graph(
    scale: int = 9,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    lifetime: int = 100_000,
    kind: GraphKind = GraphKind.POINT,
    max_duration: int = 600,
    seed: int = 0,
) -> TemporalGraph:
    """An R-MAT graph with ``2**scale`` nodes and bursty contact times.

    ``a + b + c`` must be < 1 (the remainder is the d quadrant).  Higher
    ``a`` concentrates edges around low labels -- more locality, better
    compression -- which makes the generator a handy knob for studying the
    structure codec.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"invalid quadrant probabilities a={a} b={b} c={c}")
    rng = random.Random(seed)
    n = 1 << scale
    num_edges = n * edge_factor
    contacts: List[Tuple[int, int, int, int]] = []
    t = 0
    for _ in range(num_edges):
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        t = (t + pareto_gap(rng, alpha=1.4, x_min=1, cap=lifetime // 10)) % lifetime
        duration = (
            rng.randint(1, max_duration) if kind is GraphKind.INTERVAL else 0
        )
        contacts.append((u, v, t, duration))
    return graph_from_contacts(
        kind,
        contacts,
        num_nodes=n,
        name=f"rmat-{scale}",
        granularity="second",
    )
