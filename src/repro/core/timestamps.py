"""Timestamp codec (Sections IV-A to IV-C of the paper).

For each node, the timestamps of its contacts -- ordered by (neighbor label,
timestamp), the ordering shared with the structure stream -- are stored as a
gap sequence: the first value relative to the *global minimum* timestamp and
every subsequent value relative to its predecessor (the "previous" strategy
whose gap distribution Figure 3 shows to be power-law).  Gaps after the
first may be negative and are folded to naturals with Eq. (1); the naturals
are zeta_k-coded.

Interval graphs additionally need each contact's duration.  The paper does
not spell out duration storage; we interleave each duration (a natural,
zeta_k-coded) right after its timestamp gap, preserving the one-stream /
one-offset-index design.  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.bits import codes
from repro.bits.bitio import BitReader, BitWriter
from repro.core import bulkops
from repro.errors import GraphDomainError


def timestamp_gaps(timestamps: Sequence[int], t_min: int) -> List[int]:
    """The integer gap sequence of Table II (before Eq. (1) mapping)."""
    gaps: List[int] = []
    prev: Optional[int] = None
    for t in timestamps:
        gaps.append(t - t_min if prev is None else t - prev)
        prev = t
    return gaps


def encode_node_timestamps(
    writer: BitWriter,
    timestamps: Sequence[int],
    durations: Optional[Sequence[int]],
    t_min: int,
    zeta_k: int,
    duration_zeta_k: Optional[int] = None,
) -> None:
    """Append one node's timestamp record (and durations, if given).

    Durations carry their own zeta parameter (default: same as the gaps) --
    their magnitudes are unrelated to the gap magnitudes, so the optimal
    codes differ (short contacts vs long-lived links).
    """
    if durations is not None and len(durations) != len(timestamps):
        raise GraphDomainError("durations must align one-to-one with timestamps")
    dk = zeta_k if duration_zeta_k is None else duration_zeta_k
    prev: Optional[int] = None
    for i, t in enumerate(timestamps):
        if prev is None:
            gap = t - t_min
            if gap < 0:
                raise GraphDomainError(
                    f"timestamp {t} below the global minimum {t_min}"
                )
            codes.write_zeta_natural(writer, gap, zeta_k)
        else:
            codes.write_zeta_integer(writer, t - prev, zeta_k)
        if durations is not None:
            codes.write_zeta_natural(writer, durations[i], dk)
        prev = t


def decode_node_timestamps(
    reader: BitReader,
    count: int,
    with_durations: bool,
    t_min: int,
    zeta_k: int,
    duration_zeta_k: Optional[int] = None,
) -> Tuple[List[int], Optional[List[int]]]:
    """Decode ``count`` timestamps (and durations) from the reader cursor.

    The record is one homogeneous zeta run (or an interleaved pair run for
    interval graphs), so the whole node decodes through the bulk readers;
    only the prefix-sum over the Eq. (1)-folded gaps stays per-element.
    """
    dk = zeta_k if duration_zeta_k is None else duration_zeta_k
    if count <= 0:
        return [], ([] if with_durations else None)
    if with_durations:
        raw, durations = codes.read_many_zeta_natural_pairs(
            reader, count, zeta_k, dk
        )
    else:
        raw = codes.read_many_zeta_natural(reader, count, zeta_k)
        durations = None
    timestamps = bulkops.unfold_timestamps(raw, t_min)
    if timestamps is None:
        t = t_min + raw[0]
        timestamps = [t]
        append = timestamps.append
        for gap in raw[1:]:
            # Inlined Eq. (1) unfolding (repro.bits.zigzag.to_integer).
            t += (gap >> 1) if not gap & 1 else -((gap + 1) >> 1)
            append(t)
    return timestamps, durations


def encoded_timestamp_bits(
    timestamps: Sequence[int],
    durations: Optional[Sequence[int]],
    t_min: int,
    zeta_k: int,
    duration_zeta_k: Optional[int] = None,
) -> int:
    """Bit size of a node's timestamp record without materialising it.

    Used by the Figure 7 zeta-parameter sweep, which sizes every k without
    building six full graphs.
    """
    dk = zeta_k if duration_zeta_k is None else duration_zeta_k
    total = 0
    prev: Optional[int] = None
    for i, t in enumerate(timestamps):
        if prev is None:
            total += codes.zeta_length((t - t_min) + 1, zeta_k)
        else:
            gap = t - prev
            natural = 2 * gap if gap >= 0 else 2 * (-gap) - 1
            total += codes.zeta_length(natural + 1, zeta_k)
        if durations is not None:
            total += codes.zeta_length(durations[i] + 1, dk)
        prev = t
    return total
