"""The in-memory compressed temporal graph and its query surface.

A :class:`CompressedChronoGraph` owns four artefacts (Section IV-F):

* the compressed structure stream and the compressed timestamp stream,
* one Elias-Fano offset index per stream.

Every query seeks straight to a node's records through the offset indexes,
decodes only what it needs, and never touches the rest of the graph -- this
is why the paper's access times depend on the average degree, not the graph
size (Section V-D).

Two layers keep the decode cost off the hot path:

* a bounded, memory-budgeted LRU of fully decoded node records (neighbor
  multiset, timestamps, durations) so repeated queries against the same
  node decode it once -- see :meth:`CompressedChronoGraph.cache_stats`,
  :meth:`configure_cache` and :meth:`clear_cache`;
* sequential-scan fast paths (:meth:`snapshot`, :meth:`to_static_graph`,
  :meth:`iter_contacts`, :meth:`iter_window_neighbors`) that walk the
  streams in storage order and decode every node at most once per pass,
  resolving reference chains from a rolling window instead of re-seeking.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bits import codes
from repro.bits.bitio import BitReader
from repro.bits.eliasfano import EliasFano
from repro.core.config import ChronoGraphConfig
from repro.core.structure import decode_node_structure, multiset_from_parts
from repro.core.timestamps import decode_node_timestamps
from repro.errors import CorruptStreamError, FormatError
from repro.graph.model import Contact, GraphKind

#: Exceptions a decoder may hit on a corrupt stream; every decode path
#: converts them to :class:`repro.errors.CorruptStreamError` so callers can
#: rely on the :class:`repro.errors.FormatError` hierarchy alone.
_DECODE_FAILURES = (
    EOFError, ValueError, IndexError, KeyError, OverflowError, TypeError,
)

#: Fixed metadata charged to every compressed graph: kind, node count,
#: global minimum timestamp, configuration and stream lengths.
HEADER_BITS = 5 * 64

_DISTINCT_CACHE_CAP = 4096

#: Default memory budget of the decoded-record cache, in (estimated) bytes.
DEFAULT_CACHE_BUDGET_BYTES = 32 << 20

_UNSET = object()

#: A decoded node record: (neighbor multiset, timestamps, durations-or-None).
NodeRecord = Tuple[List[int], List[int], Optional[List[int]]]


class CompressedChronoGraph:
    """Queryable compressed representation produced by :func:`repro.core.compress`."""

    def __init__(
        self,
        *,
        kind: GraphKind,
        num_nodes: int,
        num_contacts: int,
        t_min: int,
        config: ChronoGraphConfig,
        structure_bytes: bytes,
        structure_bits: int,
        timestamp_bytes: bytes,
        timestamp_bits: int,
        structure_offsets: EliasFano,
        timestamp_offsets: EliasFano,
        name: str = "unnamed",
    ) -> None:
        self.kind = kind
        self.num_nodes = num_nodes
        self.num_contacts = num_contacts
        self.t_min = t_min
        self.config = config
        self.name = name
        self._sbytes = structure_bytes
        self._sbits = structure_bits
        self._tbytes = timestamp_bytes
        self._tbits = timestamp_bits
        self._soffsets = structure_offsets
        self._toffsets = timestamp_offsets
        self._distinct_cache: "OrderedDict[int, List[int]]" = OrderedDict()
        self._record_cache: "OrderedDict[int, NodeRecord]" = OrderedDict()
        self._cache_bytes = 0
        self._cache_max_bytes: Optional[int] = DEFAULT_CACHE_BUDGET_BYTES
        self._cache_max_entries: Optional[int] = None
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._cache_invalidations = 0
        # WAL overlay (repro.storage): contacts replayed on top of the
        # immutable streams, per source node, in stored (bucketed) time
        # units, each list sorted by (v, time).  ``_base_nodes`` marks the
        # stream-backed label range; nodes at or past it exist only in the
        # overlay.  The distinct-list cache stays *base-only* throughout --
        # reference chains must resolve against the encoded lists, never
        # overlay-merged ones.
        self._overlay: Dict[int, List[Contact]] = {}
        self._overlay_count = 0
        self._overlay_t_min: Optional[int] = None
        self._base_nodes = num_nodes

    # -- size accounting -----------------------------------------------------

    @property
    def structure_size_bits(self) -> int:
        """Structure stream plus its offset index."""
        return self._sbits + self._soffsets.size_in_bits()

    @property
    def timestamp_size_bits(self) -> int:
        """Timestamp stream plus its offset index (the Table IV parenthesis)."""
        return self._tbits + self._toffsets.size_in_bits()

    @property
    def overlay_size_bits(self) -> int:
        """Replayed-but-uncompacted contacts, charged at the raw rate.

        Overlay contacts live as plain tuples until :func:`compact` folds
        them into the streams, so they are charged like
        :class:`repro.core.growable.GrowableChronoGraph` delta contacts:
        three (point/incremental) or four (interval) 64-bit words each.
        """
        if not self._overlay_count:
            return 0
        per = 4 * 64 if self.kind is GraphKind.INTERVAL else 3 * 64
        return self._overlay_count * per

    @property
    def size_in_bits(self) -> int:
        """Total in-memory footprint charged by the evaluation."""
        return (
            self.structure_size_bits
            + self.timestamp_size_bits
            + self.overlay_size_bits
            + HEADER_BITS
        )

    @property
    def bits_per_contact(self) -> float:
        """The paper's headline metric."""
        if self.num_contacts == 0:
            return 0.0
        return self.size_in_bits / self.num_contacts

    @property
    def timestamp_bits_per_contact(self) -> float:
        """Timestamp share of the footprint, per contact."""
        if self.num_contacts == 0:
            return 0.0
        return self.timestamp_size_bits / self.num_contacts

    # -- decoded-record cache ------------------------------------------------

    @staticmethod
    def _record_cost(record: NodeRecord) -> int:
        """Deterministic byte estimate of a cached record.

        Roughly a CPython small int (28 bytes) plus a list slot (8) per
        element, plus fixed list/tuple overhead; exactness does not matter,
        only that the budget scales with decoded size.
        """
        multiset, times, durations = record
        elements = len(multiset) + len(times)
        if durations is not None:
            elements += len(durations)
        return 120 + 36 * elements

    def cache_stats(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters and current occupancy of the record cache.

        Every record-level lookup (one per query, one per node of a
        sequential pass) counts exactly one hit or one miss; evictions
        count records dropped to honour the budget, not overwrites.
        """
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "invalidations": self._cache_invalidations,
            "entries": len(self._record_cache),
            "current_bytes": self._cache_bytes,
            "max_bytes": self._cache_max_bytes,
            "max_entries": self._cache_max_entries,
        }

    def configure_cache(self, *, max_bytes=_UNSET, max_entries=_UNSET) -> None:
        """Re-bound the record cache; ``None`` lifts that bound.

        ``max_bytes`` budgets the estimated decoded footprint
        (:meth:`_record_cost`); ``max_entries`` caps the record count.
        Shrinking evicts least-recently-used records immediately.
        """
        if max_bytes is not _UNSET:
            self._cache_max_bytes = max_bytes
        if max_entries is not _UNSET:
            self._cache_max_entries = max_entries
        self._evict_to_fit()

    def clear_cache(self) -> None:
        """Drop every cached decoded record (counters are preserved)."""
        self._record_cache.clear()
        self._cache_bytes = 0

    def _evict_to_fit(self) -> None:
        cache = self._record_cache
        max_bytes = self._cache_max_bytes
        max_entries = self._cache_max_entries
        while cache and (
            (max_entries is not None and len(cache) > max_entries)
            or (max_bytes is not None and self._cache_bytes > max_bytes)
        ):
            _, evicted = cache.popitem(last=False)
            self._cache_bytes -= self._record_cost(evicted)
            self._cache_evictions += 1

    def _cache_put(self, u: int, record: NodeRecord) -> None:
        max_entries = self._cache_max_entries
        if max_entries is not None and max_entries <= 0:
            return
        cost = self._record_cost(record)
        max_bytes = self._cache_max_bytes
        if max_bytes is not None and cost > max_bytes:
            return  # would evict the whole cache for a single-use record
        cache = self._record_cache
        old = cache.pop(u, None)
        if old is not None:
            self._cache_bytes -= self._record_cost(old)
        cache[u] = record
        self._cache_bytes += cost
        self._evict_to_fit()

    def _decode_record(self, u: int) -> NodeRecord:
        """The fully decoded record of ``u``, through the LRU cache.

        Cached records are overlay-merged; nodes past the stream-backed
        range decode to an empty base record before the merge.
        """
        self._check_node(u)
        record = self._record_cache.get(u)
        if record is not None:
            self._cache_hits += 1
            self._record_cache.move_to_end(u)
            return record
        self._cache_misses += 1
        if u < self._base_nodes:
            dedup, singles = self._decode_structure(u)
            multiset = multiset_from_parts(dedup, singles)
            times, durations = self._decode_timestamps(u, len(multiset))
        else:
            multiset, times = [], []
            durations = [] if self.kind is GraphKind.INTERVAL else None
        record = (multiset, times, durations)
        if self._overlay:
            record = self._merge_overlay(u, record)
        self._cache_put(u, record)
        return record

    # -- WAL overlay (repro.storage) ------------------------------------------

    def apply_contacts(self, contacts) -> int:
        """Overlay replayed WAL contacts onto the compressed base, in memory.

        Contacts must already be in *stored* time units (the ingest path
        buckets by ``config.resolution`` before committing to the WAL, so
        base and overlay share one time axis).  Node labels may exceed the
        stream-backed range, growing :attr:`num_nodes`.  Cached decoded
        records of touched nodes are invalidated (counted in
        ``cache_stats()['invalidations']``); the base streams and the
        distinct-list cache are untouched.  Returns contacts applied.
        """
        kind = self.kind
        added: Dict[int, List[Contact]] = {}
        count = 0
        for c in contacts:
            if not isinstance(c, Contact):
                c = Contact(*c)
            if c.u < 0 or c.v < 0:
                raise ValueError(f"negative node label in {c}")
            if c.duration < 0:
                raise ValueError(f"negative duration in {c}")
            if kind is not GraphKind.INTERVAL and c.duration:
                raise ValueError(
                    f"{kind.value} graphs cannot carry durations: {c}"
                )
            added.setdefault(c.u, []).append(c)
            count += 1
        if not count:
            return 0
        top = self.num_nodes - 1
        for u, rows in added.items():
            bucket = self._overlay.setdefault(u, [])
            bucket.extend(rows)
            bucket.sort(key=lambda c: (c.v, c.time))
            top = max(top, u, max(r.v for r in rows))
            old = self._record_cache.pop(u, None)
            if old is not None:
                self._cache_bytes -= self._record_cost(old)
                self._cache_invalidations += 1
            lo = min(r.time for r in rows)
            if self._overlay_t_min is None or lo < self._overlay_t_min:
                self._overlay_t_min = lo
        self.num_nodes = top + 1
        self.num_contacts += count
        self._overlay_count += count
        return count

    def _merge_overlay(self, u: int, record: NodeRecord) -> NodeRecord:
        """Merge ``u``'s overlay contacts into a decoded base record.

        Both sides are (label, time)-sorted; the merge is stable with base
        entries first on ties, preserving the alignment contract.
        """
        extra = self._overlay.get(u)
        if not extra:
            return record
        multiset, times, durations = record
        if durations is not None:
            rows = list(zip(multiset, times, durations))
        else:
            rows = [(v, t, 0) for v, t in zip(multiset, times)]
        rows.extend((c.v, c.time, c.duration) for c in extra)
        rows.sort(key=lambda r: (r[0], r[1]))
        merged_multiset = [r[0] for r in rows]
        merged_times = [r[1] for r in rows]
        if durations is None:
            return merged_multiset, merged_times, None
        return merged_multiset, merged_times, [r[2] for r in rows]

    # -- decoding ------------------------------------------------------------

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _corrupt(self, u: int, stage: str, exc: Exception) -> CorruptStreamError:
        return CorruptStreamError(f"node {u}: {stage} decode failed: {exc}")

    def _structure_reader(self, u: int) -> BitReader:
        reader = BitReader(self._sbytes, self._sbits)
        reader.seek(self._soffsets.access(u))
        return reader

    def _decode_structure(self, u: int):
        try:
            reader = self._structure_reader(u)
            return decode_node_structure(
                reader, u, self._resolve_distinct, self.config,
                limit=self.num_contacts,
            )
        except FormatError:
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "structure", exc) from exc

    def _reference_of(self, u: int) -> int:
        """The reference target of ``u``'s record (-1 when none).

        Scans only the dedup block and the reference field; used to resolve
        reference chains iteratively so that unbounded chains
        (``max_ref_chain=None``) cannot exhaust the Python stack.
        """
        try:
            reader = self._structure_reader(u)
            dedup_count = codes.read_gamma_natural(reader)
            if dedup_count:
                codes.read_many_gamma_natural(reader, 2 * dedup_count)
            r = codes.read_gamma_natural(reader)
        except FormatError:
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "reference", exc) from exc
        return u - r if r else -1

    def _resolve_distinct(self, v: int) -> List[int]:
        cached = self._distinct_cache.get(v)
        if cached is not None:
            self._distinct_cache.move_to_end(v)
            return cached
        # Walk the reference chain down to a cached or reference-free record,
        # then decode upward so every recursive lookup is a cache hit.
        chain = [v]
        target = self._reference_of(v)
        while target >= 0 and target not in self._distinct_cache:
            chain.append(target)
            target = self._reference_of(target)
        for node in reversed(chain):
            dedup, singles = self._decode_structure(node)
            distinct = sorted({*(label for label, _ in dedup), *singles})
            self._distinct_cache[node] = distinct
            if len(self._distinct_cache) > _DISTINCT_CACHE_CAP:
                self._distinct_cache.popitem(last=False)
        self._distinct_cache.move_to_end(v)
        return self._distinct_cache[v]

    def decode_multiset(self, u: int) -> List[int]:
        """The label-sorted neighbor multiset of ``u`` (Figure 5(a) order)."""
        return list(self._decode_record(u)[0])

    def _decode_timestamps(
        self, u: int, count: int
    ) -> Tuple[List[int], Optional[List[int]]]:
        try:
            reader = BitReader(self._tbytes, self._tbits)
            reader.seek(self._toffsets.access(u))
            return decode_node_timestamps(
                reader,
                count,
                self.kind is GraphKind.INTERVAL,
                self.t_min,
                self.config.timestamp_zeta_k,
                self.config.duration_zeta_k,
            )
        except FormatError:
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "timestamp", exc) from exc

    def contacts_of(self, u: int) -> List[Contact]:
        """All contacts of ``u``, decoded, in (label, time) order."""
        multiset, times, durations = self._decode_record(u)
        if durations is None:
            return [Contact(u, v, t) for v, t in zip(multiset, times)]
        return [
            Contact(u, v, t, d) for v, t, d in zip(multiset, times, durations)
        ]

    def distinct_neighbors(self, u: int) -> List[int]:
        """Sorted distinct neighbor labels over the whole lifetime."""
        self._check_node(u)
        extra = self._overlay.get(u)
        if u >= self._base_nodes:
            return sorted({c.v for c in extra}) if extra else []
        if extra:
            return sorted({*self._resolve_distinct(u), *(c.v for c in extra)})
        return self._resolve_distinct(u)

    # -- sequential scans ------------------------------------------------------

    def _iter_records(self) -> Iterator[Tuple[int, NodeRecord]]:
        """Yield ``(u, record)`` in storage order, decoding each node once.

        Both streams are walked with a single reader each; reference chains
        resolve against the distinct lists of the last ``config.window``
        nodes (the only legal targets), so a full pass never re-seeks or
        re-decodes an earlier record.  Cached records short-circuit their
        decode but still feed the rolling reference window.
        """
        n = self.num_nodes
        if n == 0:
            return
        config = self.config
        window = config.window
        limit = self.num_contacts
        with_durations = self.kind is GraphKind.INTERVAL
        sreader = BitReader(self._sbytes, self._sbits)
        treader = BitReader(self._tbytes, self._tbits)
        cache = self._record_cache
        overlay = self._overlay
        base_n = self._base_nodes
        recent: Dict[int, List[int]] = {}

        def resolve(v: int) -> List[int]:
            got = recent.get(v)
            if got is not None:
                return got
            # Out-of-window reference: only reachable on corrupt streams or
            # window=0 configs; fall back to the random-access resolver.
            return self._resolve_distinct(v)

        for u in range(n):
            base_distinct: Optional[List[int]] = None
            record = cache.get(u)
            if record is not None:
                self._cache_hits += 1
                cache.move_to_end(u)
                if window > 0 and u < base_n:
                    if u in overlay:
                        # The cached record is overlay-merged; reference
                        # chains must see the *encoded* distinct list, so
                        # re-derive it from the base stream.
                        base_distinct = self._resolve_distinct(u)
                    else:
                        base_distinct = []
                        last = None
                        for v in record[0]:
                            if v != last:
                                base_distinct.append(v)
                                last = v
            else:
                self._cache_misses += 1
                if u < base_n:
                    try:
                        sreader.seek(self._soffsets.access(u))
                        dedup, singles = decode_node_structure(
                            sreader, u, resolve, config, limit=limit
                        )
                    except FormatError:
                        raise
                    except _DECODE_FAILURES as exc:
                        raise self._corrupt(u, "structure", exc) from exc
                    multiset = multiset_from_parts(dedup, singles)
                    try:
                        treader.seek(self._toffsets.access(u))
                        times, durations = decode_node_timestamps(
                            treader,
                            len(multiset),
                            with_durations,
                            self.t_min,
                            config.timestamp_zeta_k,
                            config.duration_zeta_k,
                        )
                    except FormatError:
                        raise
                    except _DECODE_FAILURES as exc:
                        raise self._corrupt(u, "timestamp", exc) from exc
                else:
                    multiset, times = [], []
                    durations = [] if with_durations else None
                if window > 0 and u < base_n:
                    base_distinct = []
                    last = None
                    for v in multiset:
                        if v != last:
                            base_distinct.append(v)
                            last = v
                record = (multiset, times, durations)
                if overlay:
                    record = self._merge_overlay(u, record)
                self._cache_put(u, record)
            if window > 0:
                if base_distinct is not None:
                    recent[u] = base_distinct
                recent.pop(u - window, None)
            yield u, record

    def _active_neighbors(
        self,
        multiset: List[int],
        times: List[int],
        durations: Optional[List[int]],
        t_start: int,
        t_end: int,
    ) -> List[int]:
        """Sorted distinct labels active within the window, from a record."""
        out: List[int] = []
        if t_end < t_start:
            return out
        kind = self.kind
        # Inline the per-kind activity predicate: this is the hot loop of
        # every neighbor query and of the graph algorithms built on it.
        if kind is GraphKind.POINT:
            for v, t in zip(multiset, times):
                if t_start <= t <= t_end and (not out or out[-1] != v):
                    out.append(v)
        elif kind is GraphKind.INCREMENTAL:
            for v, t in zip(multiset, times):
                if t <= t_end and (not out or out[-1] != v):
                    out.append(v)
        else:
            for v, t, d in zip(multiset, times, durations):
                if d > 0 and t <= t_end and t + d > t_start:
                    if not out or out[-1] != v:
                        out.append(v)
        return out

    # -- temporal queries (Section IV-F) --------------------------------------

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        """Sorted distinct neighbors of ``u`` active within [t_start, t_end]."""
        multiset, times, durations = self._decode_record(u)
        return self._active_neighbors(multiset, times, durations, t_start, t_end)

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        """Algorithm 1: is ``v`` a neighbor of ``u`` during [t_start, t_end]?

        Binary-searches the label-sorted multiset for the ``v``-run;
        timestamps come from the same cached record.
        """
        multiset, times, durations = self._decode_record(u)
        start = bisect_left(multiset, v)
        if start == len(multiset) or multiset[start] != v:
            return False
        end = bisect_right(multiset, v, start)
        kind = self.kind
        for i in range(start, end):
            duration = durations[i] if durations is not None else 0
            c = Contact(u, v, times[i], duration)
            if c.is_active(t_start, t_end, kind):
                return True
        return False

    def edge_timestamps(self, u: int, v: int) -> List[int]:
        """All activation timestamps of the edge (u, v), ascending."""
        multiset, times, _ = self._decode_record(u)
        start = bisect_left(multiset, v)
        if start == len(multiset) or multiset[start] != v:
            return []
        return times[start : bisect_right(multiset, v, start)]

    def neighbors_before(self, u: int, t: int) -> List[int]:
        """Neighbors active strictly before ``t`` (Section IV-F).

        For point and incremental graphs: a contact before ``t``.  For
        interval graphs: activity starting before ``t``.
        """
        lo = self.t_min
        if self._overlay_t_min is not None and self._overlay_t_min < lo:
            lo = self._overlay_t_min
        if t <= lo:
            return []
        return self.neighbors(u, lo, t - 1)

    def neighbors_after(self, u: int, t: int) -> List[int]:
        """Neighbors active at or after ``t`` (Section IV-F), sorted distinct.

        Incremental edges never deactivate, so any edge is "after" every
        ``t`` at or past its creation; interval contacts count when their
        activity reaches ``t`` or later.  The multiset is label-sorted, so
        deduplicating against the last emitted label already yields the
        sorted distinct output.
        """
        multiset, times, durations = self._decode_record(u)
        out: List[int] = []
        kind = self.kind
        if kind is GraphKind.POINT:
            for v, ts in zip(multiset, times):
                if ts >= t and (not out or out[-1] != v):
                    out.append(v)
        elif kind is GraphKind.INCREMENTAL:
            for v in multiset:
                if not out or out[-1] != v:
                    out.append(v)
        else:
            for v, ts, d in zip(multiset, times, durations):
                if d > 0 and ts + d > t and (not out or out[-1] != v):
                    out.append(v)
        return out

    def edge_activity(self, u: int, v: int) -> List[Tuple[int, int]]:
        """(start, end-exclusive) activity spans of edge (u, v), sorted.

        Point and incremental contacts yield unit spans at their
        timestamps; interval contacts yield their full span.
        """
        spans: List[Tuple[int, int]] = []
        for c in self.contacts_of(u):
            if c.v != v:
                continue
            if self.kind is GraphKind.INTERVAL:
                if c.duration > 0:
                    spans.append((c.time, c.end))
            else:
                spans.append((c.time, c.time + 1))
        return spans

    def _iter_distinct(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(u, distinct neighbors)`` in storage order, structure only.

        The timestamp stream is never touched; distinct lists come from the
        distinct-list cache, the record cache, or a sequential
        structure-only decode (references resolved from the rolling
        window), and feed the distinct-list cache so repeat passes are pure
        hits.  Record-cache counters are untouched: nothing here is a
        record-level lookup.
        """
        n = self.num_nodes
        if n == 0:
            return
        config = self.config
        window = config.window
        limit = self.num_contacts
        dcache = self._distinct_cache
        overlay = self._overlay
        base_n = self._base_nodes
        sreader = BitReader(self._sbytes, self._sbits)
        recent: Dict[int, List[int]] = {}

        def resolve(v: int) -> List[int]:
            got = recent.get(v)
            if got is not None:
                return got
            return self._resolve_distinct(v)

        for u in range(n):
            if u < base_n:
                distinct = dcache.get(u)
                if distinct is None:
                    record = self._record_cache.get(u)
                    if record is not None and u not in overlay:
                        distinct = []
                        last = None
                        for v in record[0]:
                            if v != last:
                                distinct.append(v)
                                last = v
                    else:
                        # Overlay-touched cached records are merged; decode
                        # the base structure so the distinct-list cache and
                        # the reference window stay base-only.
                        try:
                            sreader.seek(self._soffsets.access(u))
                            dedup, singles = decode_node_structure(
                                sreader, u, resolve, config, limit=limit
                            )
                        except FormatError:
                            raise
                        except _DECODE_FAILURES as exc:
                            raise self._corrupt(u, "structure", exc) from exc
                        distinct = sorted(
                            {*(label for label, _ in dedup), *singles}
                        )
                    dcache[u] = distinct
                    if len(dcache) > _DISTINCT_CACHE_CAP:
                        dcache.popitem(last=False)
            else:
                distinct = []
            if window > 0:
                if u < base_n:
                    recent[u] = distinct
                recent.pop(u - window, None)
            extra = overlay.get(u)
            if extra:
                yield u, sorted({*distinct, *(c.v for c in extra)})
            else:
                yield u, distinct

    def to_static_graph(self) -> List[Tuple[int, int]]:
        """The "flattened" aggregated view of Figure 1(a): distinct edges."""
        edges: List[Tuple[int, int]] = []
        for u, distinct in self._iter_distinct():
            for v in distinct:
                edges.append((u, v))
        return edges

    def snapshot(self, t_start: int, t_end: int) -> List[Tuple[int, int]]:
        """All distinct edges active within the interval, sorted."""
        edges: List[Tuple[int, int]] = []
        for u, (multiset, times, durations) in self._iter_records():
            for v in self._active_neighbors(
                multiset, times, durations, t_start, t_end
            ):
                edges.append((u, v))
        return edges

    def iter_window_neighbors(
        self, t_start: int, t_end: int
    ) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(u, active neighbors)`` for every node, one decode per node.

        The bulk form of :meth:`neighbors` used by full-graph consumers
        (the vertex-centric engine's undirected symmetrisation, exports).
        """
        for u, (multiset, times, durations) in self._iter_records():
            yield u, self._active_neighbors(
                multiset, times, durations, t_start, t_end
            )

    def iter_contacts(self):
        """Yield every contact in (u, v, time) storage order, lazily.

        Decodes one node at a time, so full-graph passes (exports, motif
        counters, bulk loads) never hold more than one node's contacts
        beyond the output itself.
        """
        for u, (multiset, times, durations) in self._iter_records():
            if durations is None:
                for v, t in zip(multiset, times):
                    yield Contact(u, v, t)
            else:
                for v, t, d in zip(multiset, times, durations):
                    yield Contact(u, v, t, d)

    def to_temporal_graph(self) -> "object":
        """Full decompression back to a :class:`repro.graph.model.TemporalGraph`."""
        from repro.graph.model import TemporalGraph

        return TemporalGraph(
            self.kind,
            self.num_nodes,
            list(self.iter_contacts()),
            name=self.name,
            granularity="stored",
            sort=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedChronoGraph({self.name!r}, nodes={self.num_nodes}, "
            f"contacts={self.num_contacts}, "
            f"bits/contact={self.bits_per_contact:.2f})"
        )
