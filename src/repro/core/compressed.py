"""The in-memory compressed temporal graph and its query surface.

A :class:`CompressedChronoGraph` owns four artefacts (Section IV-F):

* the compressed structure stream and the compressed timestamp stream,
* one Elias-Fano offset index per stream.

Every query seeks straight to a node's records through the offset indexes,
decodes only what it needs, and never touches the rest of the graph -- this
is why the paper's access times depend on the average degree, not the graph
size (Section V-D).

Two layers keep the decode cost off the hot path:

* a bounded, memory-budgeted LRU of fully decoded node records (neighbor
  multiset, timestamps, durations) so repeated queries against the same
  node decode it once -- see :meth:`CompressedChronoGraph.cache_stats`,
  :meth:`configure_cache` and :meth:`clear_cache`;
* sequential-scan fast paths (:meth:`snapshot`, :meth:`to_static_graph`,
  :meth:`iter_contacts`, :meth:`iter_window_neighbors`) that walk the
  streams in storage order and decode every node at most once per pass,
  resolving reference chains from a rolling window instead of re-seeking.

Concurrency model
-----------------

The query surface is safe to share across threads:

* The decoded-record cache is sharded; each shard guards its LRU segment
  with its own lock, and the hit/miss counters live inside those locks, so
  lookups from different threads never corrupt cache state.  Eviction
  preserves the *global* LRU order exactly (per-entry sequence numbers)
  by briefly holding every shard lock in index order.
* All mutable overlay bookkeeping (:meth:`apply_contacts`) lives in one
  immutable :class:`_OverlayState` snapshot published with a single
  reference assignment.  Every query captures the snapshot once at entry,
  so an in-flight reader finishes against the generation it started on --
  it never observes a half-applied batch (overlay-read linearizability).
* Cached records carry the generation they were decoded under, and every
  snapshot carries the last generation that touched each node.  A reader
  holding generation ``g`` ignores entries tagged with a newer generation
  *and* entries older than its snapshot's touched-generation floor for
  that node, so stale records can never serve a newer generation -- even
  a stale insert racing the publish is simply invisible to post-swap
  readers.  :meth:`apply_contacts` additionally drops touched entries so
  dead records do not linger in the cache.
* Each decode builds its own :class:`repro.bits.bitio.BitReader` over the
  shared immutable stream bytes (reader-per-thread rule): readers carry
  mutable positions and must never be shared across threads.

:meth:`neighbors_many` and :meth:`snapshot_parallel` are the batch forms
of :meth:`neighbors` and :meth:`snapshot`; both accept ``workers`` and fan
out over the bounded shared pool of a :class:`repro.runtime.governor.Governor`
while keeping the exact sequential semantics (output order and cache
counters included).

Resource governance
-------------------

Every query entry point accepts an optional
``ctx=`` :class:`repro.runtime.context.QueryContext` -- a wall-clock
deadline, cooperative cancel flag and decode-work budget polled at cheap
checkpoints down to the bulk-decode loops.  An expired envelope raises
the typed :class:`repro.errors.QueryTimeout` /
:class:`repro.errors.QueryCancelled` / :class:`repro.errors.QueryBudgetExceeded`
branch; interruption always leaves reader cursors (query-local) and the
caches (which only ingest completed decodes) consistent, so a retry with
a larger envelope returns the complete answer.  A context carrying a
governor is additionally subject to admission control
(:class:`repro.errors.RejectedError` before any work happens).
"""

from __future__ import annotations

import itertools
import threading
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bits import codes, kernels
from repro.bits.bitio import BitReader, Buffer
from repro.bits.eliasfano import EliasFano
from repro.core.config import ChronoGraphConfig
from repro.core.structure import decode_node_structure, multiset_from_parts
from repro.core.timestamps import decode_node_timestamps
from repro.errors import (
    CorruptStreamError,
    FormatError,
    GraphDomainError,
    LimitExceededError,
    QueryInterrupted,
)
from repro.graph.model import Contact, GraphKind
from repro.runtime.context import QueryContext, activate, query_scope
from repro.runtime.governor import Governor, default_governor

#: Exceptions a decoder may hit on a corrupt stream; every decode path
#: converts them to :class:`repro.errors.CorruptStreamError` so callers can
#: rely on the :class:`repro.errors.FormatError` hierarchy alone.
_DECODE_FAILURES = (
    EOFError, ValueError, IndexError, KeyError, OverflowError, TypeError,
)

#: Fixed metadata charged to every compressed graph: kind, node count,
#: global minimum timestamp, configuration and stream lengths.
HEADER_BITS = 5 * 64

_DISTINCT_CACHE_CAP = 4096

#: Default memory budget of the decoded-record cache, in (estimated) bytes.
DEFAULT_CACHE_BUDGET_BYTES = 32 << 20

#: Shard count of the decoded-record cache (power of two; shard = u & mask).
_CACHE_SHARDS = 8
_SHARD_MASK = _CACHE_SHARDS - 1

_UNSET = object()

#: A decoded node record: (neighbor multiset, timestamps, durations-or-None).
NodeRecord = Tuple[List[int], List[int], Optional[List[int]]]

#: Attributes rebuilt from scratch on unpickle: locks, cache shards and the
#: counters that live next to them (a transported graph starts cold).
_RUNTIME_KEYS = (
    "_mutate_lock",
    "_next_seq",
    "_shards",
    "_distinct_lock",
    "_distinct_cache",
    "_cache_evictions",
    "_cache_invalidations",
)


class _OverlayState:
    """Immutable snapshot of the WAL overlay and the counters it grows.

    ``apply_contacts`` never mutates a published instance: it builds a
    complete successor (generation + 1) and swaps it in with one reference
    assignment, which the GIL makes atomic.  Readers capture ``self._state``
    once per query and work against that snapshot for their whole lifetime.
    Overlay buckets are tuples (per source node, sorted by ``(v, time)``),
    so a captured snapshot can never change underneath a reader.

    ``touched`` maps each overlay-written node to the generation of the
    last batch that touched it.  It is the cache-visibility floor: a
    cached record tagged with an older generation than a node's floor
    predates that node's latest batch and must never be served to a
    reader of this snapshot (see :meth:`CompressedChronoGraph._cache_get`).
    """

    __slots__ = (
        "generation", "overlay", "count", "t_min", "num_nodes", "num_contacts",
        "touched",
    )

    def __init__(
        self,
        generation: int,
        overlay: Dict[int, Tuple[Contact, ...]],
        count: int,
        t_min: Optional[int],
        num_nodes: int,
        num_contacts: int,
        touched: Dict[int, int],
    ) -> None:
        self.generation = generation
        self.overlay = overlay
        self.count = count
        self.t_min = t_min
        self.num_nodes = num_nodes
        self.num_contacts = num_contacts
        self.touched = touched

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        self.touched = {}  # absent in pre-floor pickles
        for slot, value in state.items():
            setattr(self, slot, value)


class _AtomicCounter:
    """Lock-free monotone counter safe under concurrent increments.

    ``itertools.count.__next__`` is a single C call -- atomic under the
    GIL -- so increments from racing threads are never lost, unlike
    ``n += 1`` (a load/add/store bytecode triple).  ``value()`` reads the
    current count through the iterator's pickle protocol without
    consuming it.
    """

    __slots__ = ("_advance",)

    def __init__(self) -> None:
        self._advance = itertools.count(1).__next__

    def increment(self) -> None:
        """Add one; safe to call from any thread without a lock."""
        self._advance()

    def value(self) -> int:
        """Increments so far (``count.__reduce__`` exposes the next value)."""
        return self._advance.__self__.__reduce__()[1][0] - 1


class _CacheShard:
    """One segment of the decoded-record LRU.

    ``records`` maps node -> ``[generation, sequence, cost, record]``;
    ``sequence`` is drawn from a graph-global clock on every hit, so the
    entry with the minimum sequence across shards is the exact global LRU
    victim.  Reads are lock-free (dict lookups and counter bumps are
    GIL-atomic; the recency stamp is a single list-item store); the lock
    guards every mutation of the dict or the byte total.
    """

    __slots__ = ("lock", "records", "bytes", "hits", "misses")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.records: Dict[int, list] = {}
        self.bytes = 0
        self.hits = _AtomicCounter()
        self.misses = _AtomicCounter()


class CompressedChronoGraph:
    """Queryable compressed representation produced by :func:`repro.core.compress`."""

    def __init__(
        self,
        *,
        kind: GraphKind,
        num_nodes: int,
        num_contacts: int,
        t_min: int,
        config: ChronoGraphConfig,
        structure_bytes: Buffer,
        structure_bits: int,
        timestamp_bytes: Buffer,
        timestamp_bits: int,
        structure_offsets: EliasFano,
        timestamp_offsets: EliasFano,
        name: str = "unnamed",
    ) -> None:
        self.kind = kind
        self.t_min = t_min
        self.config = config
        self.name = name
        self._sbytes = structure_bytes
        self._sbits = structure_bits
        self._tbytes = timestamp_bytes
        self._tbits = timestamp_bits
        # Deferred per-stream CRC checks installed by mmap-mode loading
        # (repro.core.serialize); run once at the first decode touching
        # each stream, then dropped.  None everywhere else.
        self._sverify: Optional[Callable[[], None]] = None
        self._tverify: Optional[Callable[[], None]] = None
        self._soffsets = structure_offsets
        self._toffsets = timestamp_offsets
        self._cache_max_bytes: Optional[int] = DEFAULT_CACHE_BUDGET_BYTES
        self._cache_max_entries: Optional[int] = None
        # WAL overlay (repro.storage): contacts replayed on top of the
        # immutable streams, published as an immutable snapshot (see
        # _OverlayState).  ``_base_nodes`` marks the stream-backed label
        # range; nodes at or past it exist only in the overlay.  The
        # distinct-list cache stays *base-only* throughout -- reference
        # chains must resolve against the encoded lists, never
        # overlay-merged ones.
        self._base_nodes = num_nodes
        self._state = _OverlayState(0, {}, 0, None, num_nodes, num_contacts, {})
        self._init_runtime()

    def _init_runtime(self) -> None:
        """Create the locks, cache shards and counters (never pickled)."""
        self._mutate_lock = threading.Lock()
        # LRU clock: itertools.count.__next__ is a C call, atomic under the
        # GIL, so recency stamps need no lock of their own.
        self._next_seq = itertools.count(1).__next__
        self._shards = tuple(_CacheShard() for _ in range(_CACHE_SHARDS))
        self._distinct_lock = threading.RLock()
        self._distinct_cache: "OrderedDict[int, List[int]]" = OrderedDict()
        self._cache_evictions = 0
        self._cache_invalidations = 0

    def _touch_structure(self) -> None:
        """Run (once) the deferred structure-stream checksum, if any."""
        check = self._sverify
        if check is not None:
            check()
            self._sverify = None

    def _touch_timestamps(self) -> None:
        """Run (once) the deferred timestamp-stream checksum, if any."""
        check = self._tverify
        if check is not None:
            check()
            self._tverify = None

    def __getstate__(self):
        state = self.__dict__.copy()
        for key in _RUNTIME_KEYS:
            state.pop(key, None)
        # A pickle crosses process or machine boundaries: settle any
        # deferred checksum now and ship plain bytes -- memoryviews (e.g.
        # over an mmap-ed container) cannot be pickled.
        self._touch_structure()
        self._touch_timestamps()
        state["_sverify"] = None
        state["_tverify"] = None
        if not isinstance(self._sbytes, bytes):
            state["_sbytes"] = bytes(self._sbytes)  # repro: noqa[CG006]
        if not isinstance(self._tbytes, bytes):
            state["_tbytes"] = bytes(self._tbytes)  # repro: noqa[CG006]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Pickles written before lazy verification existed lack these.
        self.__dict__.setdefault("_sverify", None)
        self.__dict__.setdefault("_tverify", None)
        self._init_runtime()

    # -- derived counts --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Node-label range, including nodes grown by :meth:`apply_contacts`."""
        return self._state.num_nodes

    @property
    def num_contacts(self) -> int:
        """Contacts in the base streams plus the uncompacted overlay."""
        return self._state.num_contacts

    @property
    def overlay_generation(self) -> int:
        """Monotone generation counter bumped by every :meth:`apply_contacts`."""
        return self._state.generation

    # -- size accounting -----------------------------------------------------

    @property
    def structure_size_bits(self) -> int:
        """Structure stream plus its offset index."""
        return self._sbits + self._soffsets.size_in_bits()

    @property
    def timestamp_size_bits(self) -> int:
        """Timestamp stream plus its offset index (the Table IV parenthesis)."""
        return self._tbits + self._toffsets.size_in_bits()

    def _overlay_bits(self, count: int) -> int:
        """Raw-rate charge of ``count`` uncompacted overlay contacts."""
        if not count:
            return 0
        per = 4 * 64 if self.kind is GraphKind.INTERVAL else 3 * 64
        return count * per

    def _total_bits(self, state: _OverlayState) -> int:
        """Total footprint computed against one captured snapshot."""
        return (
            self.structure_size_bits
            + self.timestamp_size_bits
            + self._overlay_bits(state.count)
            + HEADER_BITS
        )

    @property
    def overlay_size_bits(self) -> int:
        """Replayed-but-uncompacted contacts, charged at the raw rate.

        Overlay contacts live as plain tuples until :func:`compact` folds
        them into the streams, so they are charged like
        :class:`repro.core.growable.GrowableChronoGraph` delta contacts:
        three (point/incremental) or four (interval) 64-bit words each.
        """
        return self._overlay_bits(self._state.count)

    @property
    def size_in_bits(self) -> int:
        """Total in-memory footprint charged by the evaluation."""
        return self._total_bits(self._state)

    @property
    def bits_per_contact(self) -> float:
        """The paper's headline metric.

        Size and contact count come from one snapshot capture, so the
        ratio is internally consistent even while :meth:`apply_contacts`
        publishes new generations concurrently (CG001).
        """
        state = self._state
        if state.num_contacts == 0:
            return 0.0
        return self._total_bits(state) / state.num_contacts

    @property
    def timestamp_bits_per_contact(self) -> float:
        """Timestamp share of the footprint, per contact."""
        state = self._state
        if state.num_contacts == 0:
            return 0.0
        return self.timestamp_size_bits / state.num_contacts

    # -- decoded-record cache ------------------------------------------------

    @staticmethod
    def _record_cost(record: NodeRecord) -> int:
        """Deterministic byte estimate of a cached record.

        Roughly a CPython small int (28 bytes) plus a list slot (8) per
        element, plus fixed list/tuple overhead; exactness does not matter,
        only that the budget scales with decoded size.
        """
        multiset, times, durations = record
        elements = len(multiset) + len(times)
        if durations is not None:
            elements += len(durations)
        return 120 + 36 * elements

    def cache_stats(self) -> Dict[str, Optional[int]]:
        """Hit/miss/eviction counters and current occupancy of the record cache.

        Every record-level lookup (one per query, one per node of a
        sequential pass) counts exactly one hit or one miss; evictions
        count records dropped to honour the budget, not overwrites.
        Counters are atomic and monotone, so no lost updates under
        concurrency; occupancy is summed under every shard lock.
        """
        shards = self._shards
        hits = sum(s.hits.value() for s in shards)
        misses = sum(s.misses.value() for s in shards)
        for shard in shards:
            shard.lock.acquire()
        try:
            entries = sum(len(s.records) for s in shards)
            current = sum(s.bytes for s in shards)
        finally:
            for shard in reversed(shards):
                shard.lock.release()
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self._cache_evictions,
            "invalidations": self._cache_invalidations,
            "entries": entries,
            "current_bytes": current,
            "max_bytes": self._cache_max_bytes,
            "max_entries": self._cache_max_entries,
        }

    def decode_kernel_info(self) -> Dict[str, object]:
        """Which bulk-decode kernel tier this process resolves to.

        Every record decode routes through the :mod:`repro.bits.kernels`
        planner; this surfaces its process-wide settings (override, numpy
        availability, auto-mode crossover) so operators can confirm what a
        deployment is actually running.  Tier selection never changes
        answers -- only speed -- so this is purely observability.
        """
        return kernels.kernel_info()

    def configure_cache(self, *, max_bytes=_UNSET, max_entries=_UNSET) -> None:
        """Re-bound the record cache; ``None`` lifts that bound.

        ``max_bytes`` budgets the estimated decoded footprint
        (:meth:`_record_cost`); ``max_entries`` caps the record count.
        Shrinking evicts least-recently-used records immediately.
        """
        if max_bytes is not _UNSET:
            self._cache_max_bytes = max_bytes
        if max_entries is not _UNSET:
            self._cache_max_entries = max_entries
        self._evict_to_fit()

    def clear_cache(self) -> None:
        """Drop every cached decoded record (counters are preserved)."""
        shards = self._shards
        for shard in shards:
            shard.lock.acquire()
        try:
            for shard in shards:
                shard.records.clear()
                shard.bytes = 0
        finally:
            for shard in reversed(shards):
                shard.lock.release()

    def _evict_to_fit(self) -> None:
        """Evict global-LRU records in one batch until both bounds hold.

        Holds every shard lock (in index order -- the only multi-shard
        acquisition pattern, so lock order is total), sorts every entry by
        its recency sequence once, and evicts in that order: exactly the
        global least-recently-used records first.  Hits stamp recency
        without locks, so no per-shard order is maintained; one sorted
        scan per batch pays for the lock-free hot path.

        When a bound is exceeded, eviction overshoots down to ~7/8 of that
        bound (an eighth of hysteresis, which rounds to zero for tiny
        caches, keeping their eviction exact).  A sustained stream of
        inserts against a full cache therefore triggers one global scan
        per *batch* of evictions instead of one per inserted record --
        amortised logarithmic, not quadratic.
        """
        max_bytes = self._cache_max_bytes
        max_entries = self._cache_max_entries
        if max_bytes is None and max_entries is None:
            return
        shards = self._shards
        for shard in shards:
            shard.lock.acquire()
        try:
            entries = sum(len(s.records) for s in shards)
            total = sum(s.bytes for s in shards)
            if not (
                (max_entries is not None and entries > max_entries)
                or (max_bytes is not None and total > max_bytes)
            ):
                return
            goal_entries = (
                None if max_entries is None else max_entries - max_entries // 8
            )
            goal_bytes = (
                None if max_bytes is None else max_bytes - max_bytes // 8
            )
            order = [
                (entry[1], key, shard)
                for shard in shards
                for key, entry in shard.records.items()
            ]
            order.sort(key=lambda item: item[0])
            for _, key, shard in order:
                if not (
                    (goal_entries is not None and entries > goal_entries)
                    or (goal_bytes is not None and total > goal_bytes)
                ):
                    break
                evicted = shard.records.pop(key)
                shard.bytes -= evicted[2]
                total -= evicted[2]
                entries -= 1
                self._cache_evictions += 1
        finally:
            for shard in reversed(shards):
                shard.lock.release()

    def _maybe_evict(self) -> None:
        """Cheap unlocked bound check before taking every shard lock."""
        max_bytes = self._cache_max_bytes
        max_entries = self._cache_max_entries
        if max_bytes is None and max_entries is None:
            return
        shards = self._shards
        if (
            max_entries is not None
            and sum(len(s.records) for s in shards) > max_entries
        ) or (
            max_bytes is not None and sum(s.bytes for s in shards) > max_bytes
        ):
            self._evict_to_fit()

    def _cache_get(self, u: int, state: _OverlayState) -> Optional[NodeRecord]:
        """Counting lookup: a hit only if the entry's generation is visible.

        An entry is visible to a reader's snapshot iff its generation lies
        in ``[state.touched.get(u, 0), state.generation]``: entries decoded
        under a *newer* generation may contain batches the snapshot must
        not see, and entries older than the node's touched-generation
        floor predate a batch the snapshot must see.  The floor is what
        makes the contract safe against inserts racing a publish: a stale
        record tagged with the old generation can land in the cache at any
        time, but no post-swap reader will ever accept it.

        Lock-free: the dict read and counter bumps are GIL-atomic, the
        entry's generation is written once at insert, and the recency
        stamp is a single list-item store whose races only blur LRU
        order, never a returned record.
        """
        shard = self._shards[u & _SHARD_MASK]
        entry = shard.records.get(u)
        if (
            entry is not None
            and state.touched.get(u, 0) <= entry[0] <= state.generation
        ):
            entry[1] = self._next_seq()
            shard.hits.increment()
            return entry[3]
        shard.misses.increment()
        return None

    def _cache_peek(self, u: int, state: _OverlayState) -> Optional[NodeRecord]:
        """Non-counting, non-promoting lookup (structure-only passes)."""
        entry = self._shards[u & _SHARD_MASK].records.get(u)
        if (
            entry is not None
            and state.touched.get(u, 0) <= entry[0] <= state.generation
        ):
            return entry[3]
        return None

    def _cache_put(self, u: int, record: NodeRecord, gen: int) -> None:
        max_entries = self._cache_max_entries
        if max_entries is not None and max_entries <= 0:
            return
        cost = self._record_cost(record)
        max_bytes = self._cache_max_bytes
        if max_bytes is not None and cost > max_bytes:
            return  # would evict the whole cache for a single-use record
        if self._state.touched.get(u, 0) > gen:
            # A writer already published a batch touching this node after
            # our snapshot: the record is dead on arrival (every current
            # and future snapshot's floor rejects it), so skip the insert.
            # Pure optimisation -- _cache_get's floor check is what makes
            # stale inserts safe, not this.
            return
        shard = self._shards[u & _SHARD_MASK]
        with shard.lock:
            old = shard.records.get(u)
            if old is not None:
                if old[0] > gen:
                    # A racing decode against a newer snapshot got here
                    # first; its record supersedes ours.
                    return
                shard.bytes -= old[2]
            shard.records[u] = [gen, self._next_seq(), cost, record]
            shard.bytes += cost
        self._maybe_evict()

    def _cache_invalidate(self, u: int) -> None:
        shard = self._shards[u & _SHARD_MASK]
        with shard.lock:
            entry = shard.records.pop(u, None)
            if entry is not None:
                shard.bytes -= entry[2]

    def _decode_record(
        self, u: int, state: Optional[_OverlayState] = None
    ) -> NodeRecord:
        """The fully decoded record of ``u``, through the LRU cache.

        Cached records are overlay-merged against ``state`` (the caller's
        snapshot, defaulting to the current one); nodes past the
        stream-backed range decode to an empty base record before the
        merge.
        """
        if state is None:
            state = self._state
        self._check_node(u, state.num_nodes)
        record = self._cache_get(u, state)
        if record is not None:
            return record
        if u < self._base_nodes:
            dedup, singles = self._decode_structure(u)
            multiset = multiset_from_parts(dedup, singles)
            times, durations = self._decode_timestamps(u, len(multiset))
        else:
            multiset, times = [], []
            durations = [] if self.kind is GraphKind.INTERVAL else None
        record = (multiset, times, durations)
        if state.overlay:
            record = self._merge_overlay(u, record, state.overlay)
        self._cache_put(u, record, state.generation)
        return record

    # -- WAL overlay (repro.storage) ------------------------------------------

    def apply_contacts(self, contacts) -> int:
        """Overlay replayed WAL contacts onto the compressed base, in memory.

        Contacts must already be in *stored* time units (the ingest path
        buckets by ``config.resolution`` before committing to the WAL, so
        base and overlay share one time axis).  Node labels may exceed the
        stream-backed range, growing :attr:`num_nodes`.

        Thread-safe: writers serialize on an internal lock; the merged
        overlay is published as a new immutable snapshot with one atomic
        reference swap.  The snapshot records the new generation as every
        touched node's cache-visibility floor, so readers of this or any
        later generation reject still-cached pre-batch records no matter
        how the drop below interleaves with them; the cached records of
        touched nodes are then dropped to free their memory.
        Every touched node counts one invalidation in
        ``cache_stats()['invalidations']`` -- including nodes that were
        not cached and nodes with no base record -- so the counter tracks
        write-side pressure, not cache luck.  In-flight readers finish
        against the snapshot they captured; readers arriving after the
        swap see base + overlay merged.  Returns contacts applied.
        """
        kind = self.kind
        added: Dict[int, List[Contact]] = {}
        count = 0
        for c in contacts:
            if not isinstance(c, Contact):
                c = Contact(*c)
            if c.u < 0 or c.v < 0:
                raise GraphDomainError(f"negative node label in {c}")
            if c.duration < 0:
                raise GraphDomainError(f"negative duration in {c}")
            if kind is not GraphKind.INTERVAL and c.duration:
                raise GraphDomainError(
                    f"{kind.value} graphs cannot carry durations: {c}"
                )
            added.setdefault(c.u, []).append(c)
            count += 1
        if not count:
            return 0
        with self._mutate_lock:
            state = self._state
            generation = state.generation + 1
            overlay = dict(state.overlay)
            touched = dict(state.touched)
            top = state.num_nodes - 1
            t_min = state.t_min
            for u, rows in added.items():
                bucket = list(overlay.get(u, ()))
                bucket.extend(rows)
                bucket.sort(key=lambda c: (c.v, c.time))
                overlay[u] = tuple(bucket)
                touched[u] = generation
                top = max(top, u, max(r.v for r in rows))
                lo = min(r.time for r in rows)
                if t_min is None or lo < t_min:
                    t_min = lo
            self._state = _OverlayState(
                generation,
                overlay,
                state.count + count,
                t_min,
                top + 1,
                state.num_contacts + count,
                touched,
            )
            # Drop touched records to free their memory.  Correctness does
            # not depend on this racing well: the published touched floors
            # already make any pre-batch record -- including one inserted
            # concurrently with an old generation tag -- invisible to every
            # reader at the new generation.
            for u in added:
                self._cache_invalidate(u)
                self._cache_invalidations += 1
        return count

    def _merge_overlay(
        self,
        u: int,
        record: NodeRecord,
        overlay: Dict[int, Tuple[Contact, ...]],
    ) -> NodeRecord:
        """Merge ``u``'s overlay contacts into a decoded base record.

        Both sides are (label, time)-sorted; the merge is stable with base
        entries first on ties, preserving the alignment contract.
        """
        extra = overlay.get(u)
        if not extra:
            return record
        multiset, times, durations = record
        if durations is not None:
            rows = list(zip(multiset, times, durations))
        else:
            rows = [(v, t, 0) for v, t in zip(multiset, times)]
        rows.extend((c.v, c.time, c.duration) for c in extra)
        rows.sort(key=lambda r: (r[0], r[1]))
        merged_multiset = [r[0] for r in rows]
        merged_times = [r[1] for r in rows]
        if durations is None:
            return merged_multiset, merged_times, None
        return merged_multiset, merged_times, [r[2] for r in rows]

    # -- decoding ------------------------------------------------------------

    def _check_node(self, u: int, n: Optional[int] = None) -> None:
        if n is None:
            n = self._state.num_nodes
        if not 0 <= u < n:
            raise GraphDomainError(f"node {u} outside [0, {n})")

    def _corrupt(self, u: int, stage: str, exc: Exception) -> CorruptStreamError:
        return CorruptStreamError(f"node {u}: {stage} decode failed: {exc}")

    def _structure_reader(self, u: int) -> BitReader:
        self._touch_structure()
        reader = BitReader(self._sbytes, self._sbits)
        reader.seek(self._soffsets.access(u))
        return reader

    def _decode_structure(self, u: int):
        try:
            reader = self._structure_reader(u)
            return decode_node_structure(
                reader, u, self._resolve_distinct, self.config,
                limit=self.num_contacts,
            )
        except (FormatError, QueryInterrupted):
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "structure", exc) from exc

    def _reference_of(self, u: int) -> int:
        """The reference target of ``u``'s record (-1 when none).

        Scans only the dedup block and the reference field; used to resolve
        reference chains iteratively so that unbounded chains
        (``max_ref_chain=None``) cannot exhaust the Python stack.
        """
        try:
            reader = self._structure_reader(u)
            dedup_count = codes.read_gamma_natural(reader)
            limit = self.num_contacts
            if dedup_count > limit:
                raise LimitExceededError(
                    f"node {u}: dedup block claims {dedup_count} runs, "
                    f"graph has {limit} contacts"
                )
            if dedup_count:
                codes.read_many_gamma_natural(reader, 2 * dedup_count)
            r = codes.read_gamma_natural(reader)
        except (FormatError, QueryInterrupted):
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "reference", exc) from exc
        return u - r if r else -1

    def _resolve_distinct(self, v: int) -> List[int]:
        """Distinct *base* neighbor labels of ``v``, through the chain cache.

        Mutations are guarded by a reentrant lock: reference resolution
        both reads and warms the distinct-list cache, and decoding a chain
        re-enters this method for its targets.  The hit path is lock-free:
        distinct lists are base-only and immutable once inserted, and the
        dict read is GIL-atomic, so at worst a racing miss re-decodes.
        """
        cached = self._distinct_cache.get(v)
        if cached is not None:
            return cached
        with self._distinct_lock:
            cached = self._distinct_cache.get(v)
            if cached is not None:
                self._distinct_cache.move_to_end(v)
                return cached
            # Walk the reference chain down to a cached or reference-free
            # record, then decode upward so every recursive lookup is a
            # cache hit.
            chain = [v]
            target = self._reference_of(v)
            while target >= 0 and target not in self._distinct_cache:
                chain.append(target)
                target = self._reference_of(target)
            for node in reversed(chain):
                dedup, singles = self._decode_structure(node)
                distinct = sorted({*(label for label, _ in dedup), *singles})
                self._distinct_cache[node] = distinct
                if len(self._distinct_cache) > _DISTINCT_CACHE_CAP:
                    self._distinct_cache.popitem(last=False)
            self._distinct_cache.move_to_end(v)
            return self._distinct_cache[v]

    def decode_multiset(self, u: int) -> List[int]:
        """The label-sorted neighbor multiset of ``u`` (Figure 5(a) order)."""
        return list(self._decode_record(u)[0])

    def _decode_timestamps(
        self, u: int, count: int
    ) -> Tuple[List[int], Optional[List[int]]]:
        try:
            self._touch_timestamps()
            reader = BitReader(self._tbytes, self._tbits)
            reader.seek(self._toffsets.access(u))
            return decode_node_timestamps(
                reader,
                count,
                self.kind is GraphKind.INTERVAL,
                self.t_min,
                self.config.timestamp_zeta_k,
                self.config.duration_zeta_k,
            )
        except (FormatError, QueryInterrupted):
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "timestamp", exc) from exc

    def contacts_of(
        self, u: int, *, ctx: Optional[QueryContext] = None
    ) -> List[Contact]:
        """All contacts of ``u``, decoded, in (label, time) order."""
        if ctx is None:  # bare compare: this entry is on the perf gate
            multiset, times, durations = self._decode_record(u)
        else:
            with query_scope(ctx):
                multiset, times, durations = self._decode_record(u)
        if durations is None:
            return [Contact(u, v, t) for v, t in zip(multiset, times)]
        return [
            Contact(u, v, t, d) for v, t, d in zip(multiset, times, durations)
        ]

    def distinct_neighbors(self, u: int) -> List[int]:
        """Sorted distinct neighbor labels over the whole lifetime."""
        state = self._state
        self._check_node(u, state.num_nodes)
        extra = state.overlay.get(u)
        if u >= self._base_nodes:
            return sorted({c.v for c in extra}) if extra else []
        if extra:
            return sorted({*self._resolve_distinct(u), *(c.v for c in extra)})
        return self._resolve_distinct(u)

    # -- sequential scans ------------------------------------------------------

    def _iter_records(self) -> Iterator[Tuple[int, NodeRecord]]:
        """Yield ``(u, record)`` in storage order against the current snapshot."""
        state = self._state
        return self._scan_records(state, 0, state.num_nodes)

    def _scan_records(
        self,
        state: _OverlayState,
        lo: int,
        hi: int,
        ctx: Optional[QueryContext] = None,
    ) -> Iterator[Tuple[int, NodeRecord]]:
        """Yield ``(u, record)`` for ``lo <= u < hi``, decoding each node once.

        Both streams are walked with a single reader each; reference chains
        resolve against the distinct lists of the last ``config.window``
        nodes (the only legal targets), so a full pass never re-seeks or
        re-decodes an earlier record.  Cached records short-circuit their
        decode but still feed the rolling reference window.  The whole scan
        runs against the caller's captured ``state``; no lock is held
        across a yield.

        ``ctx`` is polled once per node, and activated around each
        stream decode so the bulk readers chunk against it too -- but
        only around the decode, never across a yield, so the ambient
        context can't leak into the consumer's frame.
        """
        if hi <= lo:
            return
        config = self.config
        window = config.window
        limit = state.num_contacts
        with_durations = self.kind is GraphKind.INTERVAL
        self._touch_structure()
        self._touch_timestamps()
        sreader = BitReader(self._sbytes, self._sbits)
        treader = BitReader(self._tbytes, self._tbits)
        overlay = state.overlay
        gen = state.generation
        base_n = self._base_nodes
        recent: Dict[int, List[int]] = {}

        def resolve(v: int) -> List[int]:
            got = recent.get(v)
            if got is not None:
                return got
            # Out-of-window reference (corrupt streams, window=0 configs) or
            # a range scan starting past the window head: fall back to the
            # random-access resolver.
            return self._resolve_distinct(v)

        for u in range(lo, hi):
            if ctx is not None:
                ctx.checkpoint()
            base_distinct: Optional[List[int]] = None
            record = self._cache_get(u, state)
            if record is not None:
                if window > 0 and u < base_n:
                    if u in overlay:
                        # The cached record is overlay-merged; reference
                        # chains must see the *encoded* distinct list, so
                        # re-derive it from the base stream.
                        base_distinct = self._resolve_distinct(u)
                    else:
                        base_distinct = []
                        last = None
                        for v in record[0]:
                            if v != last:
                                base_distinct.append(v)
                                last = v
            else:
                if u < base_n:
                    with activate(ctx):
                        try:
                            sreader.seek(self._soffsets.access(u))
                            dedup, singles = decode_node_structure(
                                sreader, u, resolve, config, limit=limit
                            )
                        except (FormatError, QueryInterrupted):
                            raise
                        except _DECODE_FAILURES as exc:
                            raise self._corrupt(u, "structure", exc) from exc
                        multiset = multiset_from_parts(dedup, singles)
                        try:
                            treader.seek(self._toffsets.access(u))
                            times, durations = decode_node_timestamps(
                                treader,
                                len(multiset),
                                with_durations,
                                self.t_min,
                                config.timestamp_zeta_k,
                                config.duration_zeta_k,
                            )
                        except (FormatError, QueryInterrupted):
                            raise
                        except _DECODE_FAILURES as exc:
                            raise self._corrupt(u, "timestamp", exc) from exc
                else:
                    multiset, times = [], []
                    durations = [] if with_durations else None
                if window > 0 and u < base_n:
                    base_distinct = []
                    last = None
                    for v in multiset:
                        if v != last:
                            base_distinct.append(v)
                            last = v
                record = (multiset, times, durations)
                if overlay:
                    record = self._merge_overlay(u, record, overlay)
                self._cache_put(u, record, gen)
            if window > 0:
                if base_distinct is not None:
                    recent[u] = base_distinct
                recent.pop(u - window, None)
            yield u, record

    def _active_neighbors(
        self,
        multiset: List[int],
        times: List[int],
        durations: Optional[List[int]],
        t_start: int,
        t_end: int,
    ) -> List[int]:
        """Sorted distinct labels active within the window, from a record."""
        out: List[int] = []
        if t_end < t_start:
            return out
        kind = self.kind
        # Inline the per-kind activity predicate: this is the hot loop of
        # every neighbor query and of the graph algorithms built on it.
        if kind is GraphKind.POINT:
            for v, t in zip(multiset, times):
                if t_start <= t <= t_end and (not out or out[-1] != v):
                    out.append(v)
        elif kind is GraphKind.INCREMENTAL:
            for v, t in zip(multiset, times):
                if t <= t_end and (not out or out[-1] != v):
                    out.append(v)
        else:
            for v, t, d in zip(multiset, times, durations):
                if d > 0 and t <= t_end and t + d > t_start:
                    if not out or out[-1] != v:
                        out.append(v)
        return out

    # -- temporal queries (Section IV-F) --------------------------------------

    def neighbors(
        self,
        u: int,
        t_start: int,
        t_end: int,
        *,
        ctx: Optional[QueryContext] = None,
    ) -> List[int]:
        """Sorted distinct neighbors of ``u`` active within [t_start, t_end].

        The window is closed on both ends; an inverted window
        (``t_end < t_start``) is empty.  See FORMAT.md, "Query window
        semantics".  ``ctx`` bounds the query (see :mod:`repro.runtime`).
        """
        if ctx is None:  # bare compare: this entry is on the perf gate
            multiset, times, durations = self._decode_record(u)
        else:
            with query_scope(ctx):
                multiset, times, durations = self._decode_record(u)
        return self._active_neighbors(
            multiset, times, durations, t_start, t_end
        )

    def has_edge(
        self,
        u: int,
        v: int,
        t_start: int,
        t_end: int,
        *,
        ctx: Optional[QueryContext] = None,
    ) -> bool:
        """Algorithm 1: is ``v`` a neighbor of ``u`` during [t_start, t_end]?

        Binary-searches the label-sorted multiset for the ``v``-run;
        timestamps come from the same cached record.  ``ctx`` bounds the
        query (see :mod:`repro.runtime`).
        """
        if ctx is None:  # bare compare: this entry is on the perf gate
            multiset, times, durations = self._decode_record(u)
        else:
            with query_scope(ctx):
                multiset, times, durations = self._decode_record(u)
        start = bisect_left(multiset, v)
        if start == len(multiset) or multiset[start] != v:
            return False
        end = bisect_right(multiset, v, start)
        kind = self.kind
        # One edge's contact run: bounded by the decoded record, whose
        # size was already charged at decode time.
        for i in range(start, end):  # repro: noqa[CG007]
            duration = durations[i] if durations is not None else 0
            c = Contact(u, v, times[i], duration)
            if c.is_active(t_start, t_end, kind):
                return True
        return False

    def edge_timestamps(
        self, u: int, v: int, *, ctx: Optional[QueryContext] = None
    ) -> List[int]:
        """All activation timestamps of the edge (u, v), ascending."""
        if ctx is None:
            multiset, times, _ = self._decode_record(u)
        else:
            with query_scope(ctx):
                multiset, times, _ = self._decode_record(u)
        start = bisect_left(multiset, v)
        if start == len(multiset) or multiset[start] != v:
            return []
        return times[start : bisect_right(multiset, v, start)]

    def neighbors_before(
        self, u: int, t: int, *, ctx: Optional[QueryContext] = None
    ) -> List[int]:
        """Neighbors active strictly before ``t`` (Section IV-F).

        For point and incremental graphs: a contact before ``t``.  For
        interval graphs: activity starting before ``t``.  Equivalent to
        ``neighbors(u, t_min, t - 1)``: the closed-window complement of
        :meth:`neighbors_after`, so a contact exactly at ``t`` is excluded.
        """
        state = self._state
        lo = self.t_min
        if state.t_min is not None and state.t_min < lo:
            lo = state.t_min
        if t <= lo:
            return []
        if ctx is None:
            multiset, times, durations = self._decode_record(u, state)
        else:
            with query_scope(ctx):
                multiset, times, durations = self._decode_record(u, state)
        return self._active_neighbors(multiset, times, durations, lo, t - 1)

    def neighbors_after(
        self, u: int, t: int, *, ctx: Optional[QueryContext] = None
    ) -> List[int]:
        """Neighbors active at or after ``t`` (Section IV-F), sorted distinct.

        Incremental edges never deactivate, so any edge is "after" every
        ``t`` at or past its creation; interval contacts count when their
        activity reaches ``t`` or later.  A contact exactly at ``t`` is
        included (closed lower bound).  The multiset is label-sorted, so
        deduplicating against the last emitted label already yields the
        sorted distinct output.
        """
        if ctx is None:
            multiset, times, durations = self._decode_record(u)
        else:
            with query_scope(ctx):
                multiset, times, durations = self._decode_record(u)
        out: List[int] = []
        kind = self.kind
        if kind is GraphKind.POINT:
            for v, ts in zip(multiset, times):
                if ts >= t and (not out or out[-1] != v):
                    out.append(v)
        elif kind is GraphKind.INCREMENTAL:
            for v in multiset:
                if not out or out[-1] != v:
                    out.append(v)
        else:
            for v, ts, d in zip(multiset, times, durations):
                if d > 0 and ts + d > t and (not out or out[-1] != v):
                    out.append(v)
        return out

    def edge_activity(self, u: int, v: int) -> List[Tuple[int, int]]:
        """(start, end-exclusive) activity spans of edge (u, v), sorted.

        Point and incremental contacts yield unit spans at their
        timestamps; interval contacts yield their full span.
        """
        spans: List[Tuple[int, int]] = []
        for c in self.contacts_of(u):
            if c.v != v:
                continue
            if self.kind is GraphKind.INTERVAL:
                if c.duration > 0:
                    spans.append((c.time, c.end))
            else:
                spans.append((c.time, c.time + 1))
        return spans

    # -- batch queries ---------------------------------------------------------

    def _governor_for(self, ctx: Optional[QueryContext]) -> Governor:
        """The governor whose shared pool a batch query fans out on."""
        if ctx is not None and ctx.governor is not None:
            return ctx.governor
        return default_governor()

    def neighbors_many(
        self,
        queries: Sequence[Tuple[int, int, int]],
        *,
        workers: Optional[int] = None,
        ctx: Optional[QueryContext] = None,
    ) -> List[List[int]]:
        """Batch :meth:`neighbors`: results align with the input order.

        ``queries`` is a sequence of ``(u, t_start, t_end)`` triples.  The
        batch is grouped by node so each distinct node is decoded (or
        cache-probed) exactly once per call -- the win over a naive serial
        loop even single-threaded -- then node groups fan out across the
        governor's bounded shared pool when ``workers`` > 1 (the governor
        comes from ``ctx`` or the process default; total decode
        concurrency stays capped no matter how many batch calls are in
        flight).  The whole batch runs against one overlay snapshot, so a
        concurrent :meth:`apply_contacts` is either entirely visible or
        entirely invisible to it.  ``ctx`` bounds the whole batch: one
        envelope, polled by every worker.
        """
        state = self._state
        triples = [(int(u), t0, t1) for u, t0, t1 in queries]
        n = state.num_nodes
        out: List[Optional[List[int]]] = [None] * len(triples)
        with query_scope(ctx):
            groups: Dict[int, List[Tuple[int, int, int]]] = {}
            for i, (u, t0, t1) in enumerate(triples):
                self._check_node(u, n)
                groups.setdefault(u, []).append((i, t0, t1))

            def run(item: Tuple[int, List[Tuple[int, int, int]]]) -> None:
                with activate(ctx):
                    if ctx is not None:
                        ctx.checkpoint()
                    u, wants = item
                    multiset, times, durations = self._decode_record(u, state)
                    for i, t0, t1 in wants:
                        out[i] = self._active_neighbors(
                            multiset, times, durations, t0, t1
                        )

            items = list(groups.items())
            if workers is not None and workers > 1 and len(items) > 1:
                self._governor_for(ctx).run_parallel(
                    run, items, workers=workers
                )
            else:
                for item in items:
                    run(item)
        return out  # type: ignore[return-value]

    def snapshot_parallel(
        self,
        t_start: int,
        t_end: int,
        *,
        workers: Optional[int] = None,
        ctx: Optional[QueryContext] = None,
    ) -> List[Tuple[int, int]]:
        """Parallel :meth:`snapshot`: identical output, ranges scanned concurrently.

        The node range is split into ``workers`` contiguous slices, each
        scanned by its own thread with its own :class:`BitReader` pair
        (reader-per-thread rule), against one shared overlay snapshot.
        The threads come from the governor's bounded shared pool (from
        ``ctx`` or the process default), not a per-call executor.  Slice
        outputs are concatenated in node order, so the result is exactly
        ``snapshot(t_start, t_end)``.  ``ctx`` bounds the whole scan.
        """
        state = self._state
        n = state.num_nodes
        w = int(workers) if workers else 1
        with query_scope(ctx):
            if w <= 1 or n < 2:
                return self._snapshot_range(state, 0, n, t_start, t_end, ctx)
            w = min(w, n)
            bounds = [(n * i) // w for i in range(w + 1)]

            def scan(i: int) -> List[Tuple[int, int]]:
                return self._snapshot_range(
                    state, bounds[i], bounds[i + 1], t_start, t_end, ctx
                )

            parts = self._governor_for(ctx).run_parallel(
                scan, range(w), workers=w
            )
        edges: List[Tuple[int, int]] = []
        for part in parts:
            edges.extend(part)
        return edges

    def _snapshot_range(
        self,
        state: _OverlayState,
        lo: int,
        hi: int,
        t_start: int,
        t_end: int,
        ctx: Optional[QueryContext] = None,
    ) -> List[Tuple[int, int]]:
        edges: List[Tuple[int, int]] = []
        for u, (multiset, times, durations) in self._scan_records(
            state, lo, hi, ctx
        ):
            for v in self._active_neighbors(
                multiset, times, durations, t_start, t_end
            ):
                edges.append((u, v))
        return edges

    # -- structure-only scans --------------------------------------------------

    def _iter_distinct(
        self, state: Optional[_OverlayState] = None
    ) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(u, distinct neighbors)`` in storage order, structure only.

        The timestamp stream is never touched; distinct lists come from the
        distinct-list cache, the record cache, or a sequential
        structure-only decode (references resolved from the rolling
        window), and feed the distinct-list cache so repeat passes are pure
        hits.  Record-cache counters are untouched: nothing here is a
        record-level lookup.  The distinct-cache lock is taken per node,
        never across a yield.
        """
        if state is None:
            state = self._state
        n = state.num_nodes
        if n == 0:
            return
        config = self.config
        window = config.window
        limit = state.num_contacts
        dcache = self._distinct_cache
        overlay = state.overlay
        base_n = self._base_nodes
        self._touch_structure()
        sreader = BitReader(self._sbytes, self._sbits)
        recent: Dict[int, List[int]] = {}

        def resolve(v: int) -> List[int]:
            got = recent.get(v)
            if got is not None:
                return got
            return self._resolve_distinct(v)

        for u in range(n):
            if u < base_n:
                # Lock-free hit: distinct lists are base-only and
                # immutable once cached (see _resolve_distinct).
                distinct = dcache.get(u)
                if distinct is None:
                    with self._distinct_lock:
                        distinct = dcache.get(u)
                    if distinct is None:
                        record = self._cache_peek(u, state)
                        if record is not None and u not in overlay:
                            distinct = []
                            last = None
                            for v in record[0]:
                                if v != last:
                                    distinct.append(v)
                                    last = v
                        else:
                            # Overlay-touched cached records are merged;
                            # decode the base structure so the distinct-list
                            # cache and the reference window stay base-only.
                            try:
                                sreader.seek(self._soffsets.access(u))
                                dedup, singles = decode_node_structure(
                                    sreader, u, resolve, config, limit=limit
                                )
                            except (FormatError, QueryInterrupted):
                                raise
                            except _DECODE_FAILURES as exc:
                                raise self._corrupt(
                                    u, "structure", exc
                                ) from exc
                            distinct = sorted(
                                {*(label for label, _ in dedup), *singles}
                            )
                        with self._distinct_lock:
                            dcache[u] = distinct
                            if len(dcache) > _DISTINCT_CACHE_CAP:
                                dcache.popitem(last=False)
            else:
                distinct = []
            if window > 0:
                if u < base_n:
                    recent[u] = distinct
                recent.pop(u - window, None)
            extra = overlay.get(u)
            if extra:
                yield u, sorted({*distinct, *(c.v for c in extra)})
            else:
                yield u, distinct

    def to_static_graph(self) -> List[Tuple[int, int]]:
        """The "flattened" aggregated view of Figure 1(a): distinct edges."""
        edges: List[Tuple[int, int]] = []
        for u, distinct in self._iter_distinct(self._state):
            for v in distinct:
                edges.append((u, v))
        return edges

    def snapshot(
        self, t_start: int, t_end: int, *, ctx: Optional[QueryContext] = None
    ) -> List[Tuple[int, int]]:
        """All distinct edges active within the closed interval, sorted."""
        state = self._state
        with query_scope(ctx):
            return self._snapshot_range(
                state, 0, state.num_nodes, t_start, t_end, ctx
            )

    def iter_window_neighbors(
        self, t_start: int, t_end: int, *, ctx: Optional[QueryContext] = None
    ) -> Iterator[Tuple[int, List[int]]]:
        """Yield ``(u, active neighbors)`` for every node, one decode per node.

        The bulk form of :meth:`neighbors` used by full-graph consumers
        (the vertex-centric engine's undirected symmetrisation, exports);
        the same closed ``[t_start, t_end]`` window applies.  ``ctx`` is
        polled per node as the consumer iterates (never held across a
        yield).
        """
        state = self._state
        for u, (multiset, times, durations) in self._scan_records(
            state, 0, state.num_nodes, ctx
        ):
            yield u, self._active_neighbors(
                multiset, times, durations, t_start, t_end
            )

    def iter_contacts(self, *, ctx: Optional[QueryContext] = None):
        """Yield every contact in (u, v, time) storage order, lazily.

        Decodes one node at a time, so full-graph passes (exports, motif
        counters, bulk loads) never hold more than one node's contacts
        beyond the output itself.  ``ctx`` is polled per node as the
        consumer iterates.
        """
        state = self._state
        for u, (multiset, times, durations) in self._scan_records(
            state, 0, state.num_nodes, ctx
        ):
            if durations is None:
                for v, t in zip(multiset, times):
                    yield Contact(u, v, t)
            else:
                for v, t, d in zip(multiset, times, durations):
                    yield Contact(u, v, t, d)

    def to_temporal_graph(self) -> "object":
        """Full decompression back to a :class:`repro.graph.model.TemporalGraph`."""
        from repro.graph.model import TemporalGraph

        return TemporalGraph(
            self.kind,
            self.num_nodes,
            list(self.iter_contacts()),
            name=self.name,
            granularity="stored",
            sort=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._state
        per = (
            self._total_bits(state) / state.num_contacts
            if state.num_contacts
            else 0.0
        )
        return (
            f"CompressedChronoGraph({self.name!r}, nodes={state.num_nodes}, "
            f"contacts={state.num_contacts}, "
            f"bits/contact={per:.2f})"
        )
