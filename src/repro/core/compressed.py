"""The in-memory compressed temporal graph and its query surface.

A :class:`CompressedChronoGraph` owns four artefacts (Section IV-F):

* the compressed structure stream and the compressed timestamp stream,
* one Elias-Fano offset index per stream.

Every query seeks straight to a node's records through the offset indexes,
decodes only what it needs, and never touches the rest of the graph -- this
is why the paper's access times depend on the average degree, not the graph
size (Section V-D).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.bits import codes
from repro.bits.bitio import BitReader
from repro.bits.eliasfano import EliasFano
from repro.core.config import ChronoGraphConfig
from repro.core.structure import decode_node_structure, multiset_from_parts
from repro.core.timestamps import decode_node_timestamps
from repro.errors import CorruptStreamError, FormatError
from repro.graph.model import Contact, GraphKind

#: Exceptions a decoder may hit on a corrupt stream; every decode path
#: converts them to :class:`repro.errors.CorruptStreamError` so callers can
#: rely on the :class:`repro.errors.FormatError` hierarchy alone.
_DECODE_FAILURES = (
    EOFError, ValueError, IndexError, KeyError, OverflowError, TypeError,
)

#: Fixed metadata charged to every compressed graph: kind, node count,
#: global minimum timestamp, configuration and stream lengths.
HEADER_BITS = 5 * 64

_DISTINCT_CACHE_CAP = 4096


class CompressedChronoGraph:
    """Queryable compressed representation produced by :func:`repro.core.compress`."""

    def __init__(
        self,
        *,
        kind: GraphKind,
        num_nodes: int,
        num_contacts: int,
        t_min: int,
        config: ChronoGraphConfig,
        structure_bytes: bytes,
        structure_bits: int,
        timestamp_bytes: bytes,
        timestamp_bits: int,
        structure_offsets: EliasFano,
        timestamp_offsets: EliasFano,
        name: str = "unnamed",
    ) -> None:
        self.kind = kind
        self.num_nodes = num_nodes
        self.num_contacts = num_contacts
        self.t_min = t_min
        self.config = config
        self.name = name
        self._sbytes = structure_bytes
        self._sbits = structure_bits
        self._tbytes = timestamp_bytes
        self._tbits = timestamp_bits
        self._soffsets = structure_offsets
        self._toffsets = timestamp_offsets
        self._distinct_cache: "OrderedDict[int, List[int]]" = OrderedDict()

    # -- size accounting -----------------------------------------------------

    @property
    def structure_size_bits(self) -> int:
        """Structure stream plus its offset index."""
        return self._sbits + self._soffsets.size_in_bits()

    @property
    def timestamp_size_bits(self) -> int:
        """Timestamp stream plus its offset index (the Table IV parenthesis)."""
        return self._tbits + self._toffsets.size_in_bits()

    @property
    def size_in_bits(self) -> int:
        """Total in-memory footprint charged by the evaluation."""
        return self.structure_size_bits + self.timestamp_size_bits + HEADER_BITS

    @property
    def bits_per_contact(self) -> float:
        """The paper's headline metric."""
        if self.num_contacts == 0:
            return 0.0
        return self.size_in_bits / self.num_contacts

    @property
    def timestamp_bits_per_contact(self) -> float:
        """Timestamp share of the footprint, per contact."""
        if self.num_contacts == 0:
            return 0.0
        return self.timestamp_size_bits / self.num_contacts

    # -- decoding ------------------------------------------------------------

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"node {u} outside [0, {self.num_nodes})")

    def _corrupt(self, u: int, stage: str, exc: Exception) -> CorruptStreamError:
        return CorruptStreamError(f"node {u}: {stage} decode failed: {exc}")

    def _structure_reader(self, u: int) -> BitReader:
        reader = BitReader(self._sbytes, self._sbits)
        reader.seek(self._soffsets.access(u))
        return reader

    def _decode_structure(self, u: int):
        try:
            reader = self._structure_reader(u)
            return decode_node_structure(
                reader, u, self._resolve_distinct, self.config,
                limit=self.num_contacts,
            )
        except FormatError:
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "structure", exc) from exc

    def _reference_of(self, u: int) -> int:
        """The reference target of ``u``'s record (-1 when none).

        Scans only the dedup block and the reference field; used to resolve
        reference chains iteratively so that unbounded chains
        (``max_ref_chain=None``) cannot exhaust the Python stack.
        """
        try:
            reader = self._structure_reader(u)
            dedup_count = codes.read_gamma_natural(reader)
            for i in range(dedup_count):
                if i == 0:
                    codes.read_gamma_integer(reader)
                else:
                    codes.read_gamma_natural(reader)
                codes.read_gamma_natural(reader)
            r = codes.read_gamma_natural(reader)
        except FormatError:
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "reference", exc) from exc
        return u - r if r else -1

    def _resolve_distinct(self, v: int) -> List[int]:
        cached = self._distinct_cache.get(v)
        if cached is not None:
            self._distinct_cache.move_to_end(v)
            return cached
        # Walk the reference chain down to a cached or reference-free record,
        # then decode upward so every recursive lookup is a cache hit.
        chain = [v]
        target = self._reference_of(v)
        while target >= 0 and target not in self._distinct_cache:
            chain.append(target)
            target = self._reference_of(target)
        for node in reversed(chain):
            dedup, singles = self._decode_structure(node)
            distinct = sorted({*(label for label, _ in dedup), *singles})
            self._distinct_cache[node] = distinct
            if len(self._distinct_cache) > _DISTINCT_CACHE_CAP:
                self._distinct_cache.popitem(last=False)
        self._distinct_cache.move_to_end(v)
        return self._distinct_cache[v]

    def decode_multiset(self, u: int) -> List[int]:
        """The label-sorted neighbor multiset of ``u`` (Figure 5(a) order)."""
        self._check_node(u)
        dedup, singles = self._decode_structure(u)
        return multiset_from_parts(dedup, singles)

    def _decode_timestamps(
        self, u: int, count: int
    ) -> Tuple[List[int], Optional[List[int]]]:
        try:
            reader = BitReader(self._tbytes, self._tbits)
            reader.seek(self._toffsets.access(u))
            return decode_node_timestamps(
                reader,
                count,
                self.kind is GraphKind.INTERVAL,
                self.t_min,
                self.config.timestamp_zeta_k,
                self.config.duration_zeta_k,
            )
        except FormatError:
            raise
        except _DECODE_FAILURES as exc:
            raise self._corrupt(u, "timestamp", exc) from exc

    def contacts_of(self, u: int) -> List[Contact]:
        """All contacts of ``u``, decoded, in (label, time) order."""
        multiset = self.decode_multiset(u)
        times, durations = self._decode_timestamps(u, len(multiset))
        if durations is None:
            return [Contact(u, v, t) for v, t in zip(multiset, times)]
        return [
            Contact(u, v, t, d) for v, t, d in zip(multiset, times, durations)
        ]

    def distinct_neighbors(self, u: int) -> List[int]:
        """Sorted distinct neighbor labels over the whole lifetime."""
        self._check_node(u)
        return self._resolve_distinct(u)

    # -- temporal queries (Section IV-F) --------------------------------------

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        """Sorted distinct neighbors of ``u`` active within [t_start, t_end]."""
        multiset = self.decode_multiset(u)
        times, durations = self._decode_timestamps(u, len(multiset))
        out: List[int] = []
        kind = self.kind
        # Inline the per-kind activity predicate: this is the hot loop of
        # every neighbor query and of the graph algorithms built on it.
        if t_end < t_start:
            return out
        if kind is GraphKind.POINT:
            for v, t in zip(multiset, times):
                if t_start <= t <= t_end and (not out or out[-1] != v):
                    out.append(v)
        elif kind is GraphKind.INCREMENTAL:
            for v, t in zip(multiset, times):
                if t <= t_end and (not out or out[-1] != v):
                    out.append(v)
        else:
            for v, t, d in zip(multiset, times, durations):
                if d > 0 and t <= t_end and t + d > t_start:
                    if not out or out[-1] != v:
                        out.append(v)
        return out

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        """Algorithm 1: is ``v`` a neighbor of ``u`` during [t_start, t_end]?

        Scans the label-sorted multiset with early exit; timestamps are only
        decoded when the neighbor is present at all.
        """
        self._check_node(u)
        multiset = self.decode_multiset(u)
        start = end = -1
        for i, label in enumerate(multiset):
            if label == v:
                if start < 0:
                    start = i
                end = i
            elif label > v:
                break
        if start < 0:
            return False
        times, durations = self._decode_timestamps(u, end + 1)
        for i in range(start, end + 1):
            duration = durations[i] if durations is not None else 0
            c = Contact(u, v, times[i], duration)
            if c.is_active(t_start, t_end, self.kind):
                return True
        return False

    def edge_timestamps(self, u: int, v: int) -> List[int]:
        """All activation timestamps of the edge (u, v), ascending."""
        self._check_node(u)
        multiset = self.decode_multiset(u)
        positions = [i for i, label in enumerate(multiset) if label == v]
        if not positions:
            return []
        times, _ = self._decode_timestamps(u, positions[-1] + 1)
        return [times[i] for i in positions]

    def neighbors_before(self, u: int, t: int) -> List[int]:
        """Neighbors active strictly before ``t`` (Section IV-F).

        For point and incremental graphs: a contact before ``t``.  For
        interval graphs: activity starting before ``t``.
        """
        if t <= self.t_min:
            return []
        return self.neighbors(u, self.t_min, t - 1)

    def neighbors_after(self, u: int, t: int) -> List[int]:
        """Neighbors active at or after ``t`` (Section IV-F).

        Incremental edges never deactivate, so any edge is "after" every
        ``t`` at or past its creation; interval contacts count when their
        activity reaches ``t`` or later.
        """
        out: List[int] = []
        for c in self.contacts_of(u):
            if self.kind is GraphKind.POINT:
                active = c.time >= t
            elif self.kind is GraphKind.INCREMENTAL:
                active = True
            else:
                active = c.duration > 0 and c.end > t
            if active and (not out or out[-1] != c.v):
                out.append(c.v)
        return sorted(set(out))

    def edge_activity(self, u: int, v: int) -> List[Tuple[int, int]]:
        """(start, end-exclusive) activity spans of edge (u, v), sorted.

        Point and incremental contacts yield unit spans at their
        timestamps; interval contacts yield their full span.
        """
        spans: List[Tuple[int, int]] = []
        for c in self.contacts_of(u):
            if c.v != v:
                continue
            if self.kind is GraphKind.INTERVAL:
                if c.duration > 0:
                    spans.append((c.time, c.end))
            else:
                spans.append((c.time, c.time + 1))
        return spans

    def to_static_graph(self) -> List[Tuple[int, int]]:
        """The "flattened" aggregated view of Figure 1(a): distinct edges."""
        edges: List[Tuple[int, int]] = []
        for u in range(self.num_nodes):
            for v in self.distinct_neighbors(u):
                edges.append((u, v))
        return edges

    def snapshot(self, t_start: int, t_end: int) -> List[Tuple[int, int]]:
        """All distinct edges active within the interval, sorted."""
        edges: List[Tuple[int, int]] = []
        for u in range(self.num_nodes):
            for v in self.neighbors(u, t_start, t_end):
                edges.append((u, v))
        return edges

    def iter_contacts(self):
        """Yield every contact in (u, v, time) storage order, lazily.

        Decodes one node at a time, so full-graph passes (exports, motif
        counters, bulk loads) never hold more than one node's contacts
        beyond the output itself.
        """
        for u in range(self.num_nodes):
            yield from self.contacts_of(u)

    def to_temporal_graph(self) -> "object":
        """Full decompression back to a :class:`repro.graph.model.TemporalGraph`."""
        from repro.graph.model import TemporalGraph

        contacts: List[Contact] = []
        for u in range(self.num_nodes):
            contacts.extend(self.contacts_of(u))
        return TemporalGraph(
            self.kind,
            self.num_nodes,
            contacts,
            name=self.name,
            granularity="stored",
            sort=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompressedChronoGraph({self.name!r}, nodes={self.num_nodes}, "
            f"contacts={self.num_contacts}, "
            f"bits/contact={self.bits_per_contact:.2f})"
        )
