"""A growable temporal graph: compressed base plus an uncompressed delta.

ChronoGraph, like the static-graph frameworks it builds on, compresses an
immutable contact list.  Real deployments (the streaming setting of Nelson
et al.) keep receiving contacts; the standard architecture is exactly what
this module provides:

* a **base**: the bulk of the history, ChronoGraph-compressed;
* a **delta**: recent contacts in a plain in-memory buffer;
* unified queries over both;
* ``checkpoint()``: fold the delta into a freshly compressed base.

The delta is charged at the raw in-memory rate (three/four 64-bit words per
contact) so ``size_in_bits`` stays honest about the trade-off, and
``checkpoint_due`` suggests folding once the delta stops being negligible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.compressed import CompressedChronoGraph
from repro.core.config import ChronoGraphConfig
from repro.core.encoder import compress
from repro.errors import GraphDomainError
from repro.graph.model import Contact, GraphKind, TemporalGraph

#: Raw in-memory cost charged per buffered delta contact.
_DELTA_BITS_PER_CONTACT = {True: 4 * 64, False: 3 * 64}


class GrowableChronoGraph:
    """Append-friendly wrapper around :class:`CompressedChronoGraph`."""

    def __init__(
        self,
        kind: GraphKind,
        *,
        num_nodes: int = 0,
        config: Optional[ChronoGraphConfig] = None,
        name: str = "growable",
    ) -> None:
        self.kind = kind
        self.config = config or ChronoGraphConfig()
        self.name = name
        self._num_nodes = num_nodes
        self._base: Optional[CompressedChronoGraph] = None
        self._delta: Dict[int, List[Contact]] = {}
        self._delta_count = 0
        # Aggregation happens once, at ingestion: contacts are bucketed as
        # they arrive so base, delta and queries share one time unit and
        # repeated checkpoints never re-aggregate.  The checkpoint config
        # therefore compresses at resolution 1.
        self._resolution = self.config.resolution
        if self._resolution > 1:
            import dataclasses

            self._checkpoint_config = dataclasses.replace(
                self.config, resolution=1
            )
        else:
            self._checkpoint_config = self.config

    @classmethod
    def from_graph(
        cls,
        graph: TemporalGraph,
        config: Optional[ChronoGraphConfig] = None,
    ) -> "GrowableChronoGraph":
        """Start from an existing history, compressed immediately."""
        grown = cls(
            graph.kind,
            num_nodes=graph.num_nodes,
            config=config,
            name=graph.name,
        )
        grown._base = compress(graph, grown.config)
        return grown

    # -- growth ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Current node-label space (grows as contacts mention new labels)."""
        return self._num_nodes

    @property
    def num_contacts(self) -> int:
        """Contacts in the base plus the delta."""
        base = self._base.num_contacts if self._base else 0
        return base + self._delta_count

    @property
    def delta_contacts(self) -> int:
        """Contacts buffered since the last checkpoint."""
        return self._delta_count

    def add_contact(self, u: int, v: int, time: int, duration: int = 0) -> None:
        """Append one contact in *source* time units; node labels may grow.

        With an aggregating config the contact is bucketed here, once.
        """
        if u < 0 or v < 0:
            raise GraphDomainError(f"negative node label in ({u}, {v})")
        if duration < 0:
            raise GraphDomainError(f"negative duration {duration}")
        if self.kind is not GraphKind.INTERVAL and duration:
            raise GraphDomainError(f"{self.kind.value} graphs cannot carry durations")
        if self._resolution > 1:
            from repro.graph.aggregate import _aggregate_duration

            bucketed_duration = (
                _aggregate_duration(time, duration, self._resolution)
                if self.kind is GraphKind.INTERVAL
                else 0
            )
            time, duration = time // self._resolution, bucketed_duration
        self._num_nodes = max(self._num_nodes, u + 1, v + 1)
        self._delta.setdefault(u, []).append(Contact(u, v, time, duration))
        self._delta_count += 1

    def extend(self, contacts) -> None:
        """Append many contacts ((u, v, t) or (u, v, t, d) tuples)."""
        for row in contacts:
            self.add_contact(*row)

    # -- size accounting --------------------------------------------------------

    @property
    def size_in_bits(self) -> int:
        """Compressed base plus raw delta buffer."""
        base = self._base.size_in_bits if self._base else 0
        per = _DELTA_BITS_PER_CONTACT[self.kind is GraphKind.INTERVAL]
        return base + self._delta_count * per

    def checkpoint_due(self, delta_share: float = 0.1) -> bool:
        """Whether the delta exceeds ``delta_share`` of all contacts."""
        if self.num_contacts == 0:
            return False
        return self._delta_count / self.num_contacts > delta_share

    # -- folding ----------------------------------------------------------------

    def to_temporal_graph(self) -> TemporalGraph:
        """Materialise the full history (base decoded plus delta)."""
        contacts: List[Contact] = []
        if self._base:
            for u in range(self._base.num_nodes):
                contacts.extend(self._base.contacts_of(u))
        for bucket in self._delta.values():
            contacts.extend(bucket)
        return TemporalGraph(
            self.kind, self._num_nodes, contacts, name=self.name,
            granularity="stored",
        )

    def checkpoint(self) -> CompressedChronoGraph:
        """Fold the delta into a freshly compressed base and return it.

        All stored contacts are already in bucket units (see
        :meth:`add_contact`), so compression runs at resolution 1.
        """
        self._base = compress(self.to_temporal_graph(), self._checkpoint_config)
        if self._resolution > 1:
            # Stamp the provenance resolution (stored units per source unit)
            # so persisted sessions resume with the same bucketing.
            import dataclasses

            self._base.config = dataclasses.replace(
                self._base.config, resolution=self._resolution
            )
        self._delta = {}
        self._delta_count = 0
        return self._base

    # -- queries ------------------------------------------------------------------

    def _delta_contacts_of(self, u: int) -> List[Contact]:
        return sorted(self._delta.get(u, ()))

    def contacts_of(self, u: int) -> List[Contact]:
        """All contacts of ``u`` across base and delta, (label, time) order."""
        if not 0 <= u < max(1, self._num_nodes):
            raise GraphDomainError(f"node {u} outside [0, {self._num_nodes})")
        merged: List[Contact] = []
        if self._base and u < self._base.num_nodes:
            merged.extend(self._base.contacts_of(u))
        merged.extend(self._delta.get(u, ()))
        merged.sort()
        return merged

    def neighbors(self, u: int, t_start: int, t_end: int) -> List[int]:
        """Sorted distinct neighbors active within [t_start, t_end]."""
        out = set()
        for c in self.contacts_of(u):
            if c.is_active(t_start, t_end, self.kind):
                out.add(c.v)
        return sorted(out)

    def has_edge(self, u: int, v: int, t_start: int, t_end: int) -> bool:
        """Whether (u, v) is active within [t_start, t_end]."""
        if self._base and u < self._base.num_nodes:
            if self._base.has_edge(u, v, t_start, t_end):
                return True
        return any(
            c.v == v and c.is_active(t_start, t_end, self.kind)
            for c in self._delta.get(u, ())
        )

    # -- persistence ---------------------------------------------------------

    def save(self, base_path) -> None:
        """Persist the session: compressed base plus the raw delta.

        Writes ``<base_path>`` (a ``.chrono`` container; the delta is folded
        in via :meth:`checkpoint` first, which is what a shutdown wants --
        the buffered contacts must not be lost).
        """
        from repro.core.serialize import save_compressed

        save_compressed(self.checkpoint(), base_path)

    @classmethod
    def load(cls, base_path, config: Optional[ChronoGraphConfig] = None) -> "GrowableChronoGraph":
        """Resume a session from a ``.chrono`` file written by :meth:`save`."""
        from repro.core.serialize import load_compressed

        base = load_compressed(base_path)
        grown = cls(
            base.kind,
            num_nodes=base.num_nodes,
            config=config or base.config,
            name=base.name,
        )
        grown._base = base
        return grown
