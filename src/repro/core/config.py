"""Configuration knobs of the ChronoGraph compressor.

Defaults follow the paper: reference window of 7 and minimum interval
length of 4 "as in [WebGraph]" (Section IV-D), zeta codes for timestamp gaps
and structure residuals with the k values Section V-F found to work well.
"""

from __future__ import annotations

import dataclasses

from repro.errors import GraphDomainError


@dataclasses.dataclass(frozen=True)
class ChronoGraphConfig:
    """Immutable compressor configuration.

    Attributes:
        window: how many preceding nodes are tried as reference candidates
            (Section IV-D2; 0 disables reference compression).
        min_interval_length: minimum run length extracted by intervalisation
            (Section IV-D3).
        max_ref_chain: longest allowed chain of references; bounds decode
            recursion depth. ``None`` means unbounded.
        timestamp_zeta_k: shrinking parameter of the zeta code for timestamp
            gaps (Figure 7 sweeps this; small k suits short-lifetime or
            aggregated graphs, 5-6 long-lifetime ones).  ``None`` selects
            the best k in [2, 7] by sizing the timestamp stream for each --
            the per-dataset choice the paper's evaluation makes.
        duration_zeta_k: zeta parameter for interval-contact durations,
            which are unrelated in magnitude to the timestamp gaps.  ``None``
            auto-selects independently of ``timestamp_zeta_k``; ignored for
            point and incremental graphs.
        structure_zeta_k: zeta parameter for residual ("extra") neighbor gaps.
        resolution: time aggregation divisor applied before encoding
            (Section IV-C); 1 keeps the source granularity.
    """

    window: int = 7
    min_interval_length: int = 4
    max_ref_chain: int | None = 3
    timestamp_zeta_k: int | None = None
    duration_zeta_k: int | None = None
    structure_zeta_k: int = 3
    resolution: int = 1

    def __post_init__(self) -> None:
        if self.window < 0:
            raise GraphDomainError(f"negative window: {self.window}")
        if self.min_interval_length < 2:
            raise GraphDomainError(
                f"min_interval_length must be >= 2, got {self.min_interval_length}"
            )
        if self.max_ref_chain is not None and self.max_ref_chain < 0:
            raise GraphDomainError(f"negative max_ref_chain: {self.max_ref_chain}")
        if self.timestamp_zeta_k is not None and not 1 <= self.timestamp_zeta_k <= 16:
            raise GraphDomainError(f"timestamp_zeta_k out of range: {self.timestamp_zeta_k}")
        if self.duration_zeta_k is not None and not 1 <= self.duration_zeta_k <= 16:
            raise GraphDomainError(f"duration_zeta_k out of range: {self.duration_zeta_k}")
        if not 1 <= self.structure_zeta_k <= 16:
            raise GraphDomainError(f"structure_zeta_k out of range: {self.structure_zeta_k}")
        if self.resolution < 1:
            raise GraphDomainError(f"resolution must be >= 1, got {self.resolution}")
