"""Binary on-disk format for compressed ChronoGraphs.

A compressed graph is an in-memory artefact in the paper; persisting it
makes the compression reusable across processes (compress once with the
CLI, query from anywhere).  The format mirrors the in-memory layout:

* fixed header (magic, version, kind, counts, t_min, config),
* the structure and timestamp bit streams verbatim,
* the two offset sequences as VByte-coded deltas (the Elias-Fano indexes
  are rebuilt on load -- they are derived structures, and rebuilding keeps
  the format independent of index-internals).

All integers are little-endian; streams are length-prefixed.
"""

from __future__ import annotations

import io
import pathlib
import struct
from typing import BinaryIO, List, Union

from repro.bits.bitio import BitReader, BitWriter
from repro.bits.codes import read_vbyte, write_vbyte
from repro.bits.eliasfano import EliasFano
from repro.core.compressed import CompressedChronoGraph
from repro.core.config import ChronoGraphConfig
from repro.graph.model import GraphKind

MAGIC = b"CHRG"
VERSION = 1

_KIND_CODES = {GraphKind.POINT: 0, GraphKind.INTERVAL: 1, GraphKind.INCREMENTAL: 2}
_KIND_FROM_CODE = {v: k for k, v in _KIND_CODES.items()}

PathLike = Union[str, pathlib.Path]


class FormatError(ValueError):
    """Raised when a file is not a valid ChronoGraph container."""


def _read_exact(data: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`FormatError`."""
    chunk = data.read(n)
    if len(chunk) != n:
        raise FormatError(
            f"truncated container: wanted {n} bytes, got {len(chunk)}"
        )
    return chunk


def _write_offsets(out: BinaryIO, offsets: List[int]) -> None:
    writer = BitWriter()
    prev = 0
    for value in offsets:
        write_vbyte(writer, value - prev)
        prev = value
    data = writer.to_bytes()
    out.write(struct.pack("<QQ", len(offsets), len(data)))
    out.write(data)


def _read_offsets(data: BinaryIO) -> List[int]:
    count, nbytes = struct.unpack("<QQ", _read_exact(data, 16))
    reader = BitReader(_read_exact(data, nbytes))
    offsets: List[int] = []
    value = 0
    for _ in range(count):
        value += read_vbyte(reader)
        offsets.append(value)
    return offsets


def _config_tuple(config: ChronoGraphConfig) -> tuple:
    return (
        config.window,
        config.min_interval_length,
        0xFFFF if config.max_ref_chain is None else config.max_ref_chain,
        config.timestamp_zeta_k or 0,
        config.duration_zeta_k or 0,
        config.structure_zeta_k,
        config.resolution,
    )


def save_compressed(graph: CompressedChronoGraph, path: PathLike) -> int:
    """Write the compressed graph to ``path``; returns bytes written."""
    if graph.config.timestamp_zeta_k is None:  # pragma: no cover - encoder sets it
        raise ValueError("cannot serialise a graph with unresolved zeta parameters")
    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(struct.pack("<B", VERSION))
    buffer.write(struct.pack("<B", _KIND_CODES[graph.kind]))
    buffer.write(struct.pack("<QQq", graph.num_nodes, graph.num_contacts, graph.t_min))
    buffer.write(struct.pack("<7I", *_config_tuple(graph.config)))
    name_bytes = graph.name.encode("utf-8")[:255]
    buffer.write(struct.pack("<B", len(name_bytes)))
    buffer.write(name_bytes)

    for nbits, data in (
        (graph._sbits, graph._sbytes),
        (graph._tbits, graph._tbytes),
    ):
        buffer.write(struct.pack("<QQ", nbits, len(data)))
        buffer.write(data)
    _write_offsets(buffer, list(graph._soffsets))
    _write_offsets(buffer, list(graph._toffsets))

    payload = buffer.getvalue()
    pathlib.Path(path).write_bytes(payload)
    return len(payload)


def load_compressed(path: PathLike) -> CompressedChronoGraph:
    """Read a compressed graph written by :func:`save_compressed`."""
    data = io.BytesIO(pathlib.Path(path).read_bytes())
    if data.read(4) != MAGIC:
        raise FormatError(f"{path}: not a ChronoGraph file (bad magic)")
    (version,) = struct.unpack("<B", _read_exact(data, 1))
    if version != VERSION:
        raise FormatError(f"{path}: unsupported version {version}")
    (kind_code,) = struct.unpack("<B", _read_exact(data, 1))
    try:
        kind = _KIND_FROM_CODE[kind_code]
    except KeyError:
        raise FormatError(f"{path}: unknown graph kind code {kind_code}") from None
    num_nodes, num_contacts, t_min = struct.unpack("<QQq", _read_exact(data, 24))
    (window, min_interval, max_ref, ts_k, dur_k, struct_k, resolution) = (
        struct.unpack("<7I", _read_exact(data, 28))
    )
    (name_len,) = struct.unpack("<B", _read_exact(data, 1))
    name = _read_exact(data, name_len).decode("utf-8")
    config = ChronoGraphConfig(
        window=window,
        min_interval_length=min_interval,
        max_ref_chain=None if max_ref == 0xFFFF else max_ref,
        timestamp_zeta_k=ts_k or None,
        duration_zeta_k=dur_k or None,
        structure_zeta_k=struct_k,
        resolution=resolution,
    )

    sbits, snbytes = struct.unpack("<QQ", _read_exact(data, 16))
    sbytes = _read_exact(data, snbytes)
    tbits, tnbytes = struct.unpack("<QQ", _read_exact(data, 16))
    tbytes = _read_exact(data, tnbytes)
    soffsets = _read_offsets(data)
    toffsets = _read_offsets(data)

    return CompressedChronoGraph(
        kind=kind,
        num_nodes=num_nodes,
        num_contacts=num_contacts,
        t_min=t_min,
        config=config,
        structure_bytes=sbytes,
        structure_bits=sbits,
        timestamp_bytes=tbytes,
        timestamp_bits=tbits,
        structure_offsets=EliasFano(soffsets, universe=sbits + 1),
        timestamp_offsets=EliasFano(toffsets, universe=tbits + 1),
        name=name,
    )
