"""Binary on-disk format for compressed ChronoGraphs (VERSION 2).

A compressed graph is an in-memory artefact in the paper; persisting it
makes the compression reusable across processes (compress once with the
CLI, query from anywhere).  VERSION 2 hardens the container for crossing
disk and network boundaries:

* a fixed preamble (magic, version, flags) followed by a length-prefixed
  **header section** (kind, counts, t_min, config, name) with a CRC32
  footer,
* four length-prefixed, CRC32-guarded **payload sections** in fixed order:
  structure stream, timestamp stream, structure offsets, timestamp offsets
  (offsets are VByte-coded deltas; the Elias-Fano indexes are rebuilt on
  load -- they are derived structures, and rebuilding keeps the format
  independent of index internals),
* **decode limits**: every declared count and size is cross-checked against
  the actual file size *before* any proportional allocation, so a flipped
  header byte can never trigger a multi-gigabyte allocation or an unbounded
  loop.

All integers are little-endian.  Every failure mode raises an exception
from the :class:`repro.errors.FormatError` hierarchy.  VERSION 1 containers
(no checksums) continue to load read-only; saving always writes VERSION 2.

``load_compressed(path, salvage=True)`` switches to best-effort decoding:
instead of raising, it returns a :class:`repro.core.validate.SalvageReport`
describing the longest valid prefix of nodes that could be recovered.

Buffer discipline
-----------------

The read path is zero-copy end to end: :class:`_Cursor` wraps whatever
buffer it is given in a ``memoryview`` and every section it hands out is a
*view* into that buffer, never a slice copy.  ``load_compressed`` therefore
has two modes that differ only in who owns the underlying pages:

* heap (default): the file is read once into a ``bytes`` blob and the
  graph's streams are views into it;
* ``mmap=True``: the file is memory-mapped read-only and the views walk the
  mapped pages directly, so N processes opening the same container share
  one copy in the OS page cache.  Stream-section CRCs are deferred to first
  decode (:class:`_LazySectionCheck`) so merely opening a container faults
  in only the header and offset pages.
"""

from __future__ import annotations

import dataclasses
import io
import mmap
import pathlib
import struct
import zlib
from typing import BinaryIO, List, Optional, Tuple, Union

from repro.bits.bitio import BitReader, BitWriter, Buffer
from repro.bits.codes import read_vbyte, write_vbyte
from repro.bits.eliasfano import EliasFano
from repro.core.compressed import CompressedChronoGraph
from repro.core.config import ChronoGraphConfig
from repro.core.validate import SalvageReport, salvage_scan
from repro.errors import (
    ChecksumMismatchError,
    CorruptStreamError,
    FormatError,
    GraphDomainError,
    LimitExceededError,
    TruncatedContainerError,
    UnsupportedVersionError,
)
from repro.graph.model import GraphKind

__all__ = [
    "FormatError",
    "DecodeLimits",
    "DEFAULT_LIMITS",
    "VERSION",
    "save_compressed",
    "dumps_compressed",
    "load_compressed",
    "load_compressed_bytes",
]

MAGIC = b"CHRG"
VERSION = 2

#: Section tags, in the exact order they must appear in the container.
_SECTION_STRUCTURE = 1
_SECTION_TIMESTAMPS = 2
_SECTION_SOFFSETS = 3
_SECTION_TOFFSETS = 4
_SECTION_NAMES = {
    _SECTION_STRUCTURE: "structure stream",
    _SECTION_TIMESTAMPS: "timestamp stream",
    _SECTION_SOFFSETS: "structure offsets",
    _SECTION_TOFFSETS: "timestamp offsets",
}
_SECTION_ORDER = (
    _SECTION_STRUCTURE,
    _SECTION_TIMESTAMPS,
    _SECTION_SOFFSETS,
    _SECTION_TOFFSETS,
)

_KIND_CODES = {GraphKind.POINT: 0, GraphKind.INTERVAL: 1, GraphKind.INCREMENTAL: 2}
_KIND_FROM_CODE = {v: k for k, v in _KIND_CODES.items()}

#: Minimum encoded size of one node's structure record, in bits: four
#: gamma codes of zero (dedup count, reference gap, interval count, extra
#: count) take one bit each.  Used to reject impossible node counts.
_MIN_STRUCTURE_BITS_PER_NODE = 4

PathLike = Union[str, pathlib.Path]


@dataclasses.dataclass(frozen=True)
class DecodeLimits:
    """Hard ceilings applied while parsing an untrusted container.

    These are sanity bounds, not tuning knobs: a legitimate container never
    comes near them, and breaching one raises
    :class:`repro.errors.LimitExceededError` before any allocation sized by
    the offending field.
    """

    #: Largest accepted node count.
    max_nodes: int = 1 << 40
    #: Largest accepted contact count.
    max_contacts: int = 1 << 48
    #: Largest accepted single-section payload, in bytes.
    max_section_bytes: int = 1 << 40


#: Limits used when the caller does not supply their own.
DEFAULT_LIMITS = DecodeLimits()


class _Cursor:
    """Bounded reader over an in-memory container with typed failures.

    The buffer is wrapped in a ``memoryview`` once, so every
    :meth:`read_exact` returns a zero-copy view into the container --
    multi-megabyte stream sections are never duplicated, whether the
    container lives on the heap or in a memory-mapped file.
    """

    def __init__(self, data: Buffer, source: str) -> None:
        self._data = data if isinstance(data, memoryview) else memoryview(data)
        self._pos = 0
        self.source = source

    @property
    def remaining(self) -> int:
        """Bytes left between the cursor and the end of the container."""
        return len(self._data) - self._pos

    def read_exact(self, n: int, what: str) -> memoryview:
        """Read exactly ``n`` bytes or raise :class:`TruncatedContainerError`."""
        if n < 0 or n > self.remaining:
            raise TruncatedContainerError(
                f"{self.source}: truncated container: {what} wants {n} bytes, "
                f"only {self.remaining} remain"
            )
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def unpack(self, fmt: str, what: str) -> tuple:
        """Read and unpack a fixed-width little-endian struct."""
        return struct.unpack(fmt, self.read_exact(struct.calcsize(fmt), what))


# --------------------------------------------------------------------------
# Writing
# --------------------------------------------------------------------------

def _config_tuple(config: ChronoGraphConfig) -> tuple:
    return (
        config.window,
        config.min_interval_length,
        0xFFFF if config.max_ref_chain is None else config.max_ref_chain,
        config.timestamp_zeta_k or 0,
        config.duration_zeta_k or 0,
        config.structure_zeta_k,
        config.resolution,
    )


def _offsets_payload(offsets: List[int]) -> bytes:
    writer = BitWriter()
    prev = 0
    for value in offsets:
        write_vbyte(writer, value - prev)
        prev = value
    data = writer.to_bytes()
    return struct.pack("<Q", len(offsets)) + data


def _write_section(out: BinaryIO, tag: int, *parts: Buffer) -> None:
    """Frame one section from payload ``parts`` without concatenating them.

    The payload is written (and its CRC32 chained) part by part so a
    stream body that is a ``memoryview`` -- e.g. a graph loaded with
    ``mmap=True`` being re-serialised -- is streamed straight from its
    source buffer.
    """
    out.write(struct.pack("<BQ", tag, sum(len(p) for p in parts)))
    crc = 0
    for part in parts:
        out.write(part)
        crc = zlib.crc32(part, crc)
    out.write(struct.pack("<I", crc))


def _header_payload(graph: CompressedChronoGraph) -> bytes:
    buffer = io.BytesIO()
    buffer.write(struct.pack("<B", _KIND_CODES[graph.kind]))
    buffer.write(
        struct.pack("<QQq", graph.num_nodes, graph.num_contacts, graph.t_min)
    )
    buffer.write(struct.pack("<7I", *_config_tuple(graph.config)))
    name_bytes = graph.name.encode("utf-8")[:255]
    buffer.write(struct.pack("<B", len(name_bytes)))
    buffer.write(name_bytes)
    return buffer.getvalue()


def dumps_compressed(graph: CompressedChronoGraph) -> bytes:
    """Serialise the compressed graph to VERSION 2 container bytes.

    The graph must not carry an uncompacted WAL overlay: the container
    format stores only the base streams, so serialising after
    ``apply_contacts`` would write a header whose node/contact counts
    disagree with the streams and produce an unloadable file.  Run
    :func:`repro.storage.recovery.compact` (or re-compress
    ``to_temporal_graph()``) first.
    """
    if graph.config.timestamp_zeta_k is None:  # pragma: no cover - encoder sets it
        raise GraphDomainError("cannot serialise a graph with unresolved zeta parameters")
    if graph._state.count:
        raise GraphDomainError(
            f"cannot serialise {graph._state.count} uncompacted overlay "
            "contact(s); compact the graph first"
        )
    # A lazily-verified (mmap-loaded) graph must not be re-serialised
    # before its deferred stream checksums have been confirmed.
    graph._touch_structure()
    graph._touch_timestamps()
    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(struct.pack("<BB", VERSION, 0))
    header = _header_payload(graph)
    buffer.write(struct.pack("<I", len(header)))
    buffer.write(header)
    buffer.write(struct.pack("<I", zlib.crc32(header)))
    _write_section(
        buffer, _SECTION_STRUCTURE, struct.pack("<Q", graph._sbits), graph._sbytes
    )
    _write_section(
        buffer, _SECTION_TIMESTAMPS, struct.pack("<Q", graph._tbits), graph._tbytes
    )
    _write_section(
        buffer, _SECTION_SOFFSETS, _offsets_payload(list(graph._soffsets))
    )
    _write_section(
        buffer, _SECTION_TOFFSETS, _offsets_payload(list(graph._toffsets))
    )
    return buffer.getvalue()


def save_compressed(graph: CompressedChronoGraph, path: PathLike) -> int:
    """Write the compressed graph to ``path``; returns bytes written.

    The write is atomic and durable (:mod:`repro.storage.atomic`): a crash
    or disk error mid-save leaves the previous container intact, never a
    torn one.
    """
    from repro.storage.atomic import atomic_write_bytes

    payload = dumps_compressed(graph)
    return atomic_write_bytes(path, payload)


def _save_v1_bytes(graph: CompressedChronoGraph) -> bytes:
    """Serialise to the legacy VERSION 1 layout (testing / fixtures only).

    The v1 writer is retained so compatibility tests can fabricate genuine
    v1 containers; production code always writes VERSION 2.
    """
    buffer = io.BytesIO()
    buffer.write(MAGIC)
    buffer.write(struct.pack("<B", 1))
    buffer.write(struct.pack("<B", _KIND_CODES[graph.kind]))
    buffer.write(
        struct.pack("<QQq", graph.num_nodes, graph.num_contacts, graph.t_min)
    )
    buffer.write(struct.pack("<7I", *_config_tuple(graph.config)))
    name_bytes = graph.name.encode("utf-8")[:255]
    buffer.write(struct.pack("<B", len(name_bytes)))
    buffer.write(name_bytes)
    for nbits, data in (
        (graph._sbits, graph._sbytes),
        (graph._tbits, graph._tbytes),
    ):
        buffer.write(struct.pack("<QQ", nbits, len(data)))
        buffer.write(data)
    for offsets in (list(graph._soffsets), list(graph._toffsets)):
        payload = _offsets_payload(offsets)
        # v1 framed offsets as (count u64, nbytes u64, bytes).
        buffer.write(payload[:8] + struct.pack("<Q", len(payload) - 8))
        buffer.write(payload[8:])
    return buffer.getvalue()


# --------------------------------------------------------------------------
# Reading -- shared helpers
# --------------------------------------------------------------------------

def _decode_offset_deltas(
    data: Buffer, count: int, source: str, what: str
) -> List[int]:
    """Decode ``count`` VByte deltas into absolute offsets."""
    if count > len(data):
        # Every VByte delta occupies at least one byte.
        raise LimitExceededError(
            f"{source}: {what}: {count} offsets declared but only "
            f"{len(data)} payload bytes"
        )
    reader = BitReader(data)
    offsets: List[int] = []
    value = 0
    for _ in range(count):
        value += read_vbyte(reader)
        offsets.append(value)
    return offsets


def _check_stream_geometry(
    nbits: int, nbytes: int, source: str, what: str
) -> None:
    if nbits > 8 * nbytes or (nbits + 7) // 8 != nbytes:
        raise CorruptStreamError(
            f"{source}: {what}: declared {nbits} bits inconsistent with "
            f"{nbytes} payload bytes"
        )


def _check_counts(
    num_nodes: int,
    num_contacts: int,
    file_size: int,
    limits: DecodeLimits,
    source: str,
) -> None:
    """Reject node/contact counts no container of this size could hold."""
    if num_nodes > limits.max_nodes:
        raise LimitExceededError(
            f"{source}: {num_nodes} nodes exceeds limit {limits.max_nodes}"
        )
    if num_contacts > limits.max_contacts:
        raise LimitExceededError(
            f"{source}: {num_contacts} contacts exceeds limit "
            f"{limits.max_contacts}"
        )
    # Each node costs >= 4 structure bits plus >= 2 offset bytes; each
    # contact >= 1 timestamp bit.  A count past these bounds cannot fit.
    if num_nodes > 2 * file_size:
        raise LimitExceededError(
            f"{source}: {num_nodes} nodes impossible in a "
            f"{file_size}-byte container"
        )
    if num_contacts > 8 * file_size:
        raise LimitExceededError(
            f"{source}: {num_contacts} contacts impossible in a "
            f"{file_size}-byte container"
        )


def _parse_header_fields(
    cur: _Cursor, source: str
) -> Tuple[GraphKind, int, int, int, ChronoGraphConfig, str]:
    (kind_code,) = cur.unpack("<B", "kind")
    try:
        kind = _KIND_FROM_CODE[kind_code]
    except KeyError:
        raise CorruptStreamError(
            f"{source}: unknown graph kind code {kind_code}"
        ) from None
    num_nodes, num_contacts, t_min = cur.unpack("<QQq", "counts")
    (window, min_interval, max_ref, ts_k, dur_k, struct_k, resolution) = (
        cur.unpack("<7I", "config")
    )
    try:
        config = ChronoGraphConfig(
            window=window,
            min_interval_length=min_interval,
            max_ref_chain=None if max_ref == 0xFFFF else max_ref,
            timestamp_zeta_k=ts_k or None,
            duration_zeta_k=dur_k or None,
            structure_zeta_k=struct_k,
            resolution=resolution,
        )
    except ValueError as exc:
        raise CorruptStreamError(f"{source}: invalid config: {exc}") from exc
    (name_len,) = cur.unpack("<B", "name length")
    try:
        # The one sanctioned copy on the load path: a <=255-byte name field
        # (memoryview has no .decode).
        name = bytes(cur.read_exact(name_len, "name")).decode("utf-8")  # repro: noqa[CG006]
    except UnicodeDecodeError as exc:
        raise CorruptStreamError(f"{source}: name is not valid UTF-8") from exc
    return kind, num_nodes, num_contacts, t_min, config, name


def _assemble_graph(
    *,
    kind: GraphKind,
    num_nodes: int,
    num_contacts: int,
    t_min: int,
    config: ChronoGraphConfig,
    name: str,
    sbits: int,
    sbytes: Buffer,
    tbits: int,
    tbytes: Buffer,
    soffsets: List[int],
    toffsets: List[int],
    source: str,
) -> CompressedChronoGraph:
    for offsets, nbits, what in (
        (soffsets, sbits, "structure offsets"),
        (toffsets, tbits, "timestamp offsets"),
    ):
        if len(offsets) != num_nodes:
            raise CorruptStreamError(
                f"{source}: {what}: {len(offsets)} entries for "
                f"{num_nodes} nodes"
            )
        if offsets and offsets[-1] > nbits:
            raise CorruptStreamError(
                f"{source}: {what}: offset {offsets[-1]} beyond "
                f"{nbits}-bit stream"
            )
    if num_nodes > 0 and sbits < _MIN_STRUCTURE_BITS_PER_NODE * num_nodes:
        raise LimitExceededError(
            f"{source}: {num_nodes} nodes cannot fit in a "
            f"{sbits}-bit structure stream"
        )
    if num_contacts > 0 and tbits < num_contacts:
        raise LimitExceededError(
            f"{source}: {num_contacts} contacts cannot fit in a "
            f"{tbits}-bit timestamp stream"
        )
    try:
        structure_index = EliasFano(soffsets, universe=sbits + 1)
        timestamp_index = EliasFano(toffsets, universe=tbits + 1)
    except ValueError as exc:
        raise CorruptStreamError(
            f"{source}: offset index rebuild failed: {exc}"
        ) from exc
    return CompressedChronoGraph(
        kind=kind,
        num_nodes=num_nodes,
        num_contacts=num_contacts,
        t_min=t_min,
        config=config,
        structure_bytes=sbytes,
        structure_bits=sbits,
        timestamp_bytes=tbytes,
        timestamp_bits=tbits,
        structure_offsets=structure_index,
        timestamp_offsets=timestamp_index,
        name=name,
    )


# --------------------------------------------------------------------------
# Reading -- strict paths
# --------------------------------------------------------------------------

class _LazySectionCheck:
    """Deferred CRC32 verification of one stream section.

    ``load_compressed(mmap=True)`` defers stream-section checksums so that
    merely opening a container faults in no stream pages.  The graph runs
    the check on first decode of that stream (see
    ``CompressedChronoGraph._touch_structure``), raising exactly the
    :class:`ChecksumMismatchError` the eager path would have raised at
    load time.  The check is idempotent and reads only immutable state, so
    a benign race between two first readers is harmless.
    """

    __slots__ = ("_payload", "_crc", "_message")

    def __init__(self, payload: Buffer, crc: int, message: str) -> None:
        self._payload = payload
        self._crc = crc
        self._message = message

    def __call__(self) -> None:
        if zlib.crc32(self._payload) != self._crc:
            raise ChecksumMismatchError(self._message)


def _load_v2_body(
    cur: _Cursor, limits: DecodeLimits, source: str, *, lazy_crc: bool = False
) -> CompressedChronoGraph:
    (flags,) = cur.unpack("<B", "flags")
    if flags != 0:
        raise UnsupportedVersionError(
            f"{source}: unknown container flags 0x{flags:02x}"
        )
    (header_len,) = cur.unpack("<I", "header length")
    header = cur.read_exact(header_len, "header")
    (header_crc,) = cur.unpack("<I", "header checksum")
    if zlib.crc32(header) != header_crc:
        raise ChecksumMismatchError(f"{source}: header checksum mismatch")
    hcur = _Cursor(header, source)
    kind, num_nodes, num_contacts, t_min, config, name = _parse_header_fields(
        hcur, source
    )
    _check_counts(num_nodes, num_contacts, len(cur._data), limits, source)

    payloads = {}
    deferred: List[Tuple[int, _LazySectionCheck]] = []
    try:
        for expected_tag in _SECTION_ORDER:
            what = _SECTION_NAMES[expected_tag]
            (tag,) = cur.unpack("<B", "section tag")
            if tag != expected_tag:
                raise CorruptStreamError(
                    f"{source}: expected {what} section (tag {expected_tag}), "
                    f"found tag {tag}"
                )
            (payload_len,) = cur.unpack("<Q", f"{what} length")
            if payload_len > limits.max_section_bytes:
                raise LimitExceededError(
                    f"{source}: {what}: {payload_len} bytes exceeds section "
                    f"limit {limits.max_section_bytes}"
                )
            payload = cur.read_exact(payload_len, what)
            (crc,) = cur.unpack("<I", f"{what} checksum")
            check = _LazySectionCheck(
                payload, crc, f"{source}: {what} checksum mismatch"
            )
            if lazy_crc and expected_tag in (
                _SECTION_STRUCTURE, _SECTION_TIMESTAMPS
            ):
                # Offsets are fully decoded below (their pages are touched
                # anyway), so only the two stream sections are worth
                # deferring.
                deferred.append((expected_tag, check))
            else:
                check()
            payloads[expected_tag] = payload
        if cur.remaining:
            raise CorruptStreamError(
                f"{source}: {cur.remaining} trailing bytes after final section"
            )

        streams = {}
        for tag in (_SECTION_STRUCTURE, _SECTION_TIMESTAMPS):
            what = _SECTION_NAMES[tag]
            payload = payloads[tag]
            if len(payload) < 8:
                raise TruncatedContainerError(
                    f"{source}: {what}: payload too short"
                )
            (nbits,) = struct.unpack("<Q", payload[:8])
            data = payload[8:]
            _check_stream_geometry(nbits, len(data), source, what)
            streams[tag] = (nbits, data)

        offset_lists = {}
        for tag in (_SECTION_SOFFSETS, _SECTION_TOFFSETS):
            what = _SECTION_NAMES[tag]
            payload = payloads[tag]
            if len(payload) < 8:
                raise TruncatedContainerError(
                    f"{source}: {what}: payload too short"
                )
            (count,) = struct.unpack("<Q", payload[:8])
            if count != num_nodes:
                raise CorruptStreamError(
                    f"{source}: {what}: {count} entries for {num_nodes} nodes"
                )
            offset_lists[tag] = _decode_offset_deltas(
                payload[8:], count, source, what
            )

        sbits, sbytes = streams[_SECTION_STRUCTURE]
        tbits, tbytes = streams[_SECTION_TIMESTAMPS]
        graph = _assemble_graph(
            kind=kind,
            num_nodes=num_nodes,
            num_contacts=num_contacts,
            t_min=t_min,
            config=config,
            name=name,
            sbits=sbits,
            sbytes=sbytes,
            tbits=tbits,
            tbytes=tbytes,
            soffsets=offset_lists[_SECTION_SOFFSETS],
            toffsets=offset_lists[_SECTION_TOFFSETS],
            source=source,
        )
    except FormatError:
        # A corrupted stream section can masquerade as a geometry or
        # cross-check error before its checksum was ever read.  Verify the
        # deferred CRCs now so a lazy load fails with the same exception
        # class the eager path raises for the same mutation.
        for _, check in deferred:
            check()
        raise
    for tag, check in deferred:
        if tag == _SECTION_STRUCTURE:
            graph._sverify = check
        else:
            graph._tverify = check
    return graph


def _load_v1_body(
    cur: _Cursor, limits: DecodeLimits, source: str
) -> CompressedChronoGraph:
    kind, num_nodes, num_contacts, t_min, config, name = _parse_header_fields(
        cur, source
    )
    _check_counts(num_nodes, num_contacts, len(cur._data), limits, source)
    streams = []
    for what in ("structure stream", "timestamp stream"):
        nbits, nbytes = cur.unpack("<QQ", f"{what} lengths")
        if nbytes > cur.remaining:
            raise TruncatedContainerError(
                f"{source}: {what}: declared {nbytes} bytes but only "
                f"{cur.remaining} remain"
            )
        data = cur.read_exact(nbytes, what)
        _check_stream_geometry(nbits, nbytes, source, what)
        streams.append((nbits, data))
    offset_lists = []
    for what in ("structure offsets", "timestamp offsets"):
        count, nbytes = cur.unpack("<QQ", f"{what} lengths")
        data = cur.read_exact(nbytes, what)
        if count != num_nodes:
            raise CorruptStreamError(
                f"{source}: {what}: {count} entries for {num_nodes} nodes"
            )
        offset_lists.append(_decode_offset_deltas(data, count, source, what))
    (sbits, sbytes), (tbits, tbytes) = streams
    return _assemble_graph(
        kind=kind,
        num_nodes=num_nodes,
        num_contacts=num_contacts,
        t_min=t_min,
        config=config,
        name=name,
        sbits=sbits,
        sbytes=sbytes,
        tbits=tbits,
        tbytes=tbytes,
        soffsets=offset_lists[0],
        toffsets=offset_lists[1],
        source=source,
    )


def load_compressed_bytes(
    data: Buffer,
    *,
    limits: Optional[DecodeLimits] = None,
    source: str = "<bytes>",
    lazy_crc: bool = False,
) -> CompressedChronoGraph:
    """Parse an in-memory container produced by :func:`dumps_compressed`.

    Verifies every checksum and applies all decode limits; raises a
    :class:`repro.errors.FormatError` subclass on any integrity violation.
    The graph's streams are zero-copy views into ``data``, which must stay
    immutable for the graph's lifetime.

    With ``lazy_crc=True`` the two stream-section checksums are deferred to
    the first decode touching each stream (header, framing and offset
    checksums stay eager); the deferred check raises the same
    :class:`repro.errors.ChecksumMismatchError` the eager path would.
    Callers whose buffer integrity is already guaranteed elsewhere (e.g. a
    segment blob bound to a manifest CRC) use this to skip a redundant
    checksum pass.
    """
    limits = limits or DEFAULT_LIMITS
    cur = _Cursor(data, source)
    if cur.read_exact(4, "magic") != MAGIC:
        raise FormatError(f"{source}: not a ChronoGraph file (bad magic)")
    (version,) = cur.unpack("<B", "version")
    if version == 1:
        # v1 carries no checksums at all; there is nothing to defer.
        return _load_v1_body(cur, limits, source)
    if version == VERSION:
        return _load_v2_body(cur, limits, source, lazy_crc=lazy_crc)
    raise UnsupportedVersionError(f"{source}: unsupported version {version}")


def _map_readonly(path: PathLike) -> Buffer:
    """Map ``path`` read-only and return a zero-copy view of its bytes.

    A slice of the returned ``memoryview`` keeps the underlying ``mmap``
    alive (memoryviews hold their exporter), so callers simply let views
    propagate; the mapping closes when the last view is garbage-collected.
    Empty files cannot be mapped and unmappable filesystems do exist, so
    both fall back to a plain heap read.
    """
    target = pathlib.Path(path)
    with open(target, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Sanctioned heap fallback for unmappable inputs.
            return target.read_bytes()  # repro: noqa[CG006]
    return memoryview(mapped)


def load_compressed(
    path: PathLike,
    *,
    salvage: bool = False,
    limits: Optional[DecodeLimits] = None,
    mmap: bool = False,
):
    """Read a compressed graph written by :func:`save_compressed`.

    With ``salvage=False`` (the default) the container is verified strictly
    -- checksums, section framing and decode limits -- and a
    :class:`CompressedChronoGraph` is returned; any integrity violation
    raises a :class:`repro.errors.FormatError` subclass.

    With ``mmap=True`` the container is memory-mapped read-only instead of
    read into the heap: the graph's streams walk the mapped pages directly,
    so any number of processes opening the same file share a single copy in
    the OS page cache.  Header, framing and offset checksums are verified
    eagerly (those pages are touched anyway); the two stream-section CRCs
    are verified lazily on the first decode that touches each stream.  Use
    ``repro verify --deep`` for an eager end-to-end check.  The mapped file
    must not be rewritten in place while the graph is live -- the saver's
    atomic rename discipline guarantees this for containers it wrote.

    With ``salvage=True`` nothing raises short of an unreadable *path*:
    the longest valid prefix of nodes is decoded best-effort and a
    :class:`repro.core.validate.SalvageReport` is returned, whose ``graph``
    attribute holds the recovered prefix (or ``None`` when not even the
    header survived).  Salvage always maps the file and walks sections as
    views, so inspecting a huge or truncated container does not require
    materialising it in heap memory first.
    """
    source = str(path)
    if salvage:
        return salvage_bytes(_map_readonly(path), limits=limits, source=source)
    if mmap:
        return load_compressed_bytes(
            _map_readonly(path), limits=limits, source=source, lazy_crc=True
        )
    # The explicit heap loader: materialising is the requested behaviour.
    blob = pathlib.Path(path).read_bytes()  # repro: noqa[CG006]
    return load_compressed_bytes(blob, limits=limits, source=source)


# --------------------------------------------------------------------------
# Salvage (best-effort) reading
# --------------------------------------------------------------------------

#: A section recovered by salvage: either the raw framed payload (v2 --
#: u64 prefix still embedded) or an already-split ``(prefix, body)`` pair
#: (v1, whose prefix fields are not adjacent to the body in the file).
_SalvagePart = Union[Buffer, Tuple[int, Buffer]]


def _split_part(part: _SalvagePart) -> Optional[Tuple[int, Buffer]]:
    """Normalise a salvaged section to ``(prefix, body)`` views, or None."""
    if isinstance(part, tuple):
        return part
    if len(part) < 8:
        return None
    (value,) = struct.unpack("<Q", part[:8])
    return value, part[8:]


def _salvage_offsets(
    part: _SalvagePart, want: int, nbits: int, errors: List[str], what: str
) -> List[int]:
    """Decode as many in-range offsets as the payload yields, never raising."""
    split = _split_part(part)
    if split is None:
        errors.append(f"{what}: payload too short for a count field")
        return []
    count, data = split
    if count != want:
        errors.append(f"{what}: {count} entries declared for {want} nodes")
    count = min(count, want, len(data))
    reader = BitReader(data)
    offsets: List[int] = []
    value = 0
    for _ in range(count):
        try:
            value += read_vbyte(reader)
        except EOFError:
            errors.append(f"{what}: delta stream ended early")
            break
        if value > nbits:
            errors.append(f"{what}: offset {value} beyond {nbits}-bit stream")
            break
        offsets.append(value)
    return offsets


def _salvage_stream(
    part: _SalvagePart, errors: List[str], what: str
) -> Tuple[int, Buffer]:
    """Recover (nbits, data) from a stream payload, clipping as needed."""
    split = _split_part(part)
    if split is None:
        errors.append(f"{what}: payload too short for a length field")
        return 0, b""
    nbits, data = split
    if nbits > 8 * len(data):
        errors.append(
            f"{what}: declared {nbits} bits exceed {len(data)} payload bytes"
        )
        nbits = 8 * len(data)
    return nbits, data


def salvage_bytes(
    data: Buffer,
    *,
    limits: Optional[DecodeLimits] = None,
    source: str = "<bytes>",
) -> SalvageReport:
    """Best-effort decode of a possibly-corrupt container.

    Walks the container leniently -- checksum mismatches, truncated
    sections and out-of-range fields are recorded as report errors rather
    than raised -- then decodes nodes from the start until the first decode
    failure.  The result is the longest valid prefix, wrapped in a
    :class:`repro.core.validate.SalvageReport`.
    """
    limits = limits or DEFAULT_LIMITS
    errors: List[str] = []

    # Fast path: a pristine container needs no leniency.
    try:
        graph = load_compressed_bytes(data, limits=limits, source=source)
    except FormatError as exc:
        errors.append(str(exc))
    else:
        return salvage_scan(graph, errors=[])

    parts = _salvage_parts(data, limits, source, errors)
    if parts is None:
        return SalvageReport(
            graph=None,
            nodes_declared=0,
            nodes_recovered=0,
            contacts_declared=0,
            contacts_recovered=0,
            errors=errors,
        )
    return salvage_scan(parts, errors=errors)


def _salvage_parts(
    data: Buffer, limits: DecodeLimits, source: str, errors: List[str]
) -> Optional[CompressedChronoGraph]:
    """Lenient parse returning a best-effort graph, or None if unreadable."""
    if len(data) < 5 or data[:4] != MAGIC:
        errors.append(f"{source}: not a ChronoGraph file (bad magic)")
        return None
    version = data[4]
    if version == 1:
        body_start = 5
        framed = False
    elif version == VERSION:
        body_start = 6  # skip the flags byte; salvage tolerates any value
        framed = True
    else:
        errors.append(f"{source}: unsupported version {version}")
        return None

    cur = _Cursor(data, source)
    cur._pos = body_start
    try:
        if framed:
            (header_len,) = cur.unpack("<I", "header length")
            header = cur.read_exact(
                min(header_len, cur.remaining), "header"
            )
            if cur.remaining >= 4:
                (header_crc,) = cur.unpack("<I", "header checksum")
                if zlib.crc32(header) != header_crc:
                    errors.append("header checksum mismatch")
            else:
                errors.append("header checksum missing")
            hcur = _Cursor(header, source)
        else:
            hcur = cur
        kind, num_nodes, num_contacts, t_min, config, name = (
            _parse_header_fields(hcur, source)
        )
    except FormatError as exc:
        errors.append(f"header unreadable: {exc}")
        return None
    try:
        _check_counts(num_nodes, num_contacts, len(data), limits, source)
    except FormatError as exc:
        errors.append(str(exc))
        return None

    # Section errors carry the section's starting byte offset so a report
    # pinpoints *where* in the container the damage lies -- operators (and
    # the fault-matrix tests) can correlate entries with hexdump offsets.
    payloads = {}
    if framed:
        for expected_tag in _SECTION_ORDER:
            what = _SECTION_NAMES[expected_tag]
            section_start = cur._pos
            at = f"at byte {section_start}"
            if cur.remaining < 9:
                errors.append(f"{what}: section header missing ({at})")
                break
            (tag,) = cur.unpack("<B", "section tag")
            (payload_len,) = cur.unpack("<Q", f"{what} length")
            if tag != expected_tag:
                errors.append(f"{what}: unexpected section tag {tag} ({at})")
            take = min(payload_len, cur.remaining, limits.max_section_bytes)
            if take != payload_len:
                errors.append(
                    f"{what}: declared {payload_len} bytes, "
                    f"clipped to {take} ({at})"
                )
            payload = cur.read_exact(take, what)
            if cur.remaining >= 4:
                (crc,) = cur.unpack("<I", f"{what} checksum")
                if zlib.crc32(payload) != crc:
                    errors.append(f"{what} checksum mismatch ({at})")
            else:
                errors.append(f"{what}: checksum missing ({at})")
                cur._pos = len(data)
            payloads[expected_tag] = payload
    else:
        try:
            for tag in (_SECTION_STRUCTURE, _SECTION_TIMESTAMPS):
                what = _SECTION_NAMES[tag]
                at = f"at byte {cur._pos}"
                nbits, nbytes = cur.unpack("<QQ", f"{what} lengths")
                take = min(nbytes, cur.remaining)
                if take != nbytes:
                    errors.append(
                        f"{what}: declared {nbytes} bytes, "
                        f"clipped to {take} ({at})"
                    )
                payloads[tag] = (nbits, cur.read_exact(take, what))
            for tag in (_SECTION_SOFFSETS, _SECTION_TOFFSETS):
                what = _SECTION_NAMES[tag]
                count, nbytes = cur.unpack("<QQ", f"{what} lengths")
                take = min(nbytes, cur.remaining)
                payloads[tag] = (count, cur.read_exact(take, what))
        except FormatError as exc:
            errors.append(str(exc))

    sbits, sbytes = _salvage_stream(
        payloads.get(_SECTION_STRUCTURE, b""), errors, "structure stream"
    )
    tbits, tbytes = _salvage_stream(
        payloads.get(_SECTION_TIMESTAMPS, b""), errors, "timestamp stream"
    )
    soffsets = _salvage_offsets(
        payloads.get(_SECTION_SOFFSETS, b""),
        num_nodes, sbits, errors, "structure offsets",
    )
    toffsets = _salvage_offsets(
        payloads.get(_SECTION_TOFFSETS, b""),
        num_nodes, tbits, errors, "timestamp offsets",
    )
    usable = min(num_nodes, len(soffsets), len(toffsets))
    if usable < num_nodes:
        errors.append(
            f"only {usable} of {num_nodes} node offsets recoverable"
        )
    try:
        graph = CompressedChronoGraph(
            kind=kind,
            num_nodes=usable,
            num_contacts=num_contacts,
            t_min=t_min,
            config=config,
            structure_bytes=sbytes,
            structure_bits=sbits,
            timestamp_bytes=tbytes,
            timestamp_bits=tbits,
            structure_offsets=EliasFano(soffsets[:usable], universe=sbits + 1),
            timestamp_offsets=EliasFano(toffsets[:usable], universe=tbits + 1),
            name=name,
        )
    except ValueError as exc:
        errors.append(f"offset index rebuild failed: {exc}")
        return None
    graph._declared_nodes = num_nodes
    return graph
