"""ChronoGraph: the paper's dual-representation temporal graph compressor.

The framework stores a temporal graph as two aligned compressed streams plus
two Elias-Fano offset indexes:

* the **network structure** (Section IV-D): per node, the label-sorted
  neighbor *multiset*, compressed with deduplication of multiple
  occurrences, WebGraph-style reference compression, intervalisation and
  zeta-coded residuals;
* the **timestamps** (Section IV-B): per node, the contact timestamps in
  (neighbor label, time) order, gap-encoded against the previous value,
  folded to naturals with Eq. (1) and zeta_k-coded.

Because both streams share the same ordering, the i-th decoded neighbor
matches the i-th decoded timestamp, which is what makes interval queries
(Algorithm 1) possible without decompressing the whole graph.
"""

from repro.core.config import ChronoGraphConfig
from repro.core.compressed import CompressedChronoGraph
from repro.core.encoder import compress, compress_parallel
from repro.core.growable import GrowableChronoGraph
from repro.core.serialize import (
    DEFAULT_LIMITS,
    DecodeLimits,
    dumps_compressed,
    load_compressed,
    load_compressed_bytes,
    save_compressed,
)
from repro.core.validate import SalvageReport, salvage_scan, validate_compressed

__all__ = [
    "ChronoGraphConfig",
    "CompressedChronoGraph",
    "GrowableChronoGraph",
    "DecodeLimits",
    "DEFAULT_LIMITS",
    "SalvageReport",
    "compress",
    "compress_parallel",
    "dumps_compressed",
    "load_compressed",
    "load_compressed_bytes",
    "save_compressed",
    "salvage_scan",
    "validate_compressed",
]
