"""Guarded numpy unfolds for decoded gap runs (the post-decode hot loops).

The bulk readers of :mod:`repro.bits.codes` hand the record decoders plain
lists of naturals; turning those into timestamps or neighbor labels is a
zigzag unfold plus a prefix sum -- a per-element Python loop that rivals
the decode itself on long runs.  The helpers here vectorise that unfold
with numpy when it is available *and provably exact*:

- every input value must fit the guarded magnitude bound
  (:data:`_MAX_ABS`) and the run must be shorter than :data:`_MAX_RUN`,
  so the int64 prefix sum cannot overflow (``2**40 * 2**20 < 2**63``);
- the base offset must stay below ``2**62`` for the same reason.

Outside those bounds -- which only corrupt or adversarial streams exceed
-- every helper returns ``None`` and the caller runs the exact
big-int-safe Python loop, so answers are identical on every stream with
or without numpy.  Like the decode tiers themselves, these helpers only
change speed, never results.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.bits import kernels

__all__ = ["unfold_timestamps", "prefix_labels"]

#: Below this run length the Python loop wins (mirrors the decode-kernel
#: planner's crossover; per-call numpy overhead is the same story).
MIN_RUN = 256

#: Magnitude bound on the inputs of a vectorised prefix sum.
_MAX_ABS = 1 << 40

#: Length bound on a vectorised prefix sum.
_MAX_RUN = 1 << 20


def _as_bounded_i64(np_mod: Any, raw: Sequence[int]) -> Optional[Any]:
    """``raw`` as an int64 array, or ``None`` when the guards fail."""
    if len(raw) >= _MAX_RUN:
        return None
    try:
        arr = np_mod.asarray(raw, dtype=np_mod.int64)
    except (OverflowError, TypeError, ValueError):
        # A corrupt stream can gamma-code values past int64; the Python
        # loop handles big ints exactly.
        return None
    if arr.size and int(np_mod.abs(arr).max()) >= _MAX_ABS:
        return None
    return arr


def unfold_timestamps(raw: Sequence[int], t_min: int) -> Optional[List[int]]:
    """Timestamps from a decoded gap run, or ``None`` (use the Python loop).

    ``raw[0]`` is the first timestamp's offset from ``t_min``; every later
    element is an Eq. (1) zigzag-folded signed gap.
    """
    if len(raw) < MIN_RUN or abs(t_min) >= (1 << 62):
        return None
    np_mod = kernels.numpy_or_none()
    if np_mod is None:
        return None
    g = _as_bounded_i64(np_mod, raw)
    if g is None:
        return None
    signed = np_mod.where(g & 1, -((g + 1) >> 1), g >> 1)
    signed[0] = g[0]  # the leading offset is stored unfolded
    out: List[int] = (t_min + np_mod.cumsum(signed)).tolist()
    return out


def prefix_labels(raw: Sequence[int], base: int, first: int) -> Optional[List[int]]:
    """Labels from a decoded gap run, or ``None`` (use the Python loop).

    ``first`` is the already-unfolded signed offset of the leading label
    from ``base``; every later element of ``raw`` is a natural gap stored
    minus one (consecutive labels differ by at least 1).
    """
    if len(raw) < MIN_RUN or abs(base) + abs(first) >= (1 << 62):
        return None
    np_mod = kernels.numpy_or_none()
    if np_mod is None:
        return None
    g = _as_bounded_i64(np_mod, raw)
    if g is None:
        return None
    steps = g + 1
    steps[0] = first
    out: List[int] = (base + np_mod.cumsum(steps)).tolist()
    return out
