"""Network-structure codec (Section IV-D of the paper).

Each node's label-sorted neighbor *multiset* is encoded as four blocks:

1. **Deduplication** (IV-D1, the paper's novel step): neighbors occurring
   more than once are pulled out as (label, count) pairs so the remainder is
   a plain set and WebGraph-style tricks apply.  Labels are gap-encoded
   (first gap relative to the node itself, Eq. (1) for the possible negative)
   and counts are stored as ``count - 2``; both in Elias gamma.
2. **Reference compression** (IV-D2): the remaining singles may be described
   as a subset of a previous node's distinct neighbor list via a copy list,
   itself stored as alternating run lengths ("blocks") with the final run
   implicit -- exactly the WebGraph layout.
3. **Intervalisation** (IV-D3): maximal runs of consecutive labels of length
   >= ``min_interval_length`` become (left extreme, length) pairs; gaps
   between intervals are reduced by 2 since maximal runs are separated by at
   least one missing label; lengths are stored relative to the minimum.
4. **Extra nodes** (IV-D4): whatever remains, gap-encoded and zeta_k-coded.

The worked example of Figure 5 is reproduced verbatim by the helper
functions (see ``tests/test_paper_examples.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bits import codes
from repro.bits.bitio import BitReader, BitWriter
from repro.bits.zigzag import to_integer
from repro.core import bulkops
from repro.core.config import ChronoGraphConfig
from repro.errors import LimitExceededError

DedupPair = Tuple[int, int]  # (label, occurrence count >= 2)
Interval = Tuple[int, int]  # (left extreme, length)


# --------------------------------------------------------------------------
# Analysis helpers (pure, also used by the Figure 5 paper-example tests)
# --------------------------------------------------------------------------

def split_duplicates(multiset: Sequence[int]) -> Tuple[List[DedupPair], List[int]]:
    """Separate a sorted neighbor multiset into dedup pairs and singles."""
    dedup: List[DedupPair] = []
    singles: List[int] = []
    i = 0
    n = len(multiset)
    while i < n:
        j = i
        while j < n and multiset[j] == multiset[i]:
            j += 1
        if j - i >= 2:
            dedup.append((multiset[i], j - i))
        else:
            singles.append(multiset[i])
        i = j
    return dedup, singles


def split_intervals(
    labels: Sequence[int], min_length: int
) -> Tuple[List[Interval], List[int]]:
    """Extract maximal runs of consecutive labels of length >= min_length."""
    intervals: List[Interval] = []
    extras: List[int] = []
    i = 0
    n = len(labels)
    while i < n:
        j = i
        while j + 1 < n and labels[j + 1] == labels[j] + 1:
            j += 1
        run = j - i + 1
        if run >= min_length:
            intervals.append((labels[i], run))
        else:
            extras.extend(labels[i : j + 1])
        i = j + 1
    return intervals, extras


def dedup_gap_pairs(node: int, dedup: Sequence[DedupPair]) -> List[Tuple[int, int]]:
    """The (gap, count - 2) pairs of Figure 5(b), before Eq. (1) mapping."""
    out: List[Tuple[int, int]] = []
    prev: Optional[int] = None
    for label, count in dedup:
        gap = label - node if prev is None else label - prev - 1
        out.append((gap, count - 2))
        prev = label
    return out


def interval_gap_pairs(
    node: int, intervals: Sequence[Interval], min_length: int
) -> List[Tuple[int, int]]:
    """The (gap, length - min) pairs of Figure 5(c), before Eq. (1) mapping."""
    out: List[Tuple[int, int]] = []
    prev_end: Optional[int] = None
    for left, length in intervals:
        if prev_end is None:
            gap = left - node
        else:
            gap = left - prev_end - 2
        out.append((gap, length - min_length))
        prev_end = left + length - 1
    return out


def extra_gaps(node: int, extras: Sequence[int]) -> List[int]:
    """The residual gaps of Figure 5(d), before Eq. (1) mapping."""
    out: List[int] = []
    prev: Optional[int] = None
    for label in extras:
        out.append(label - node if prev is None else label - prev - 1)
        prev = label
    return out


def copy_blocks(reference_list: Sequence[int], copied: Sequence[int]) -> List[int]:
    """Split the copy bitmap into alternating run lengths, first run of 1s.

    The returned list omits the final run (it is implied by the reference
    list length); the first entry may be 0 when the bitmap starts with a 0.
    """
    copied_set = set(copied)
    bits = [1 if x in copied_set else 0 for x in reference_list]
    runs: List[int] = []
    if bits:
        if bits[0] == 0:
            runs.append(0)  # empty leading run of 1s keeps the alternation
        i = 0
        n = len(bits)
        while i < n:
            j = i
            while j < n and bits[j] == bits[i]:
                j += 1
            runs.append(j - i)
            i = j
        runs.pop()  # final run is implicit
    return runs


def expand_copy_blocks(
    reference_list: Sequence[int], runs: Sequence[int]
) -> List[int]:
    """Inverse of :func:`copy_blocks`: recover the copied labels."""
    out: List[int] = []
    pos = 0
    value = 1
    for run in runs:
        if value:
            out.extend(reference_list[pos : pos + run])
        pos += run
        value ^= 1
    if value:
        out.extend(reference_list[pos:])
    return out


# --------------------------------------------------------------------------
# Encoding
# --------------------------------------------------------------------------

def encode_node_structure(
    writer: BitWriter,
    node: int,
    multiset: Sequence[int],
    previous_distinct: Dict[int, List[int]],
    ref_depth: Dict[int, int],
    config: ChronoGraphConfig,
) -> None:
    """Append node's structure record; updates the reference bookkeeping.

    ``previous_distinct`` maps already-encoded nodes to their distinct
    neighbor lists (the reference targets); ``ref_depth`` tracks chain
    depths so ``max_ref_chain`` can be enforced at compression time.
    """
    dedup, singles = split_duplicates(multiset)

    best_ref = 0
    best_writer = _encode_singles(node, singles, None, config)
    best_depth = 0
    for r in range(1, config.window + 1):
        v = node - r
        if v < 0:
            break
        reference_list = previous_distinct.get(v)
        if not reference_list:
            continue
        depth = ref_depth.get(v, 0) + 1
        if config.max_ref_chain is not None and depth > config.max_ref_chain:
            continue
        if not set(singles) & set(reference_list):
            continue  # nothing to copy; the no-reference encoding wins
        candidate = _encode_singles(node, singles, (r, reference_list), config)
        if len(candidate) < len(best_writer):
            best_writer = candidate
            best_ref = r
            best_depth = depth

    _encode_dedup(writer, node, dedup)
    writer.extend(best_writer)

    distinct = sorted({*(label for label, _ in dedup), *singles})
    previous_distinct[node] = distinct
    ref_depth[node] = best_depth if best_ref else 0


def _encode_dedup(writer: BitWriter, node: int, dedup: Sequence[DedupPair]) -> None:
    codes.write_gamma_natural(writer, len(dedup))
    first = True
    for gap, extra_count in dedup_gap_pairs(node, dedup):
        if first:
            codes.write_gamma_integer(writer, gap)
            first = False
        else:
            codes.write_gamma_natural(writer, gap)
        codes.write_gamma_natural(writer, extra_count)


def _encode_singles(
    node: int,
    singles: Sequence[int],
    reference: Optional[Tuple[int, Sequence[int]]],
    config: ChronoGraphConfig,
) -> BitWriter:
    """Encode the reference + interval + extra blocks into a fresh writer."""
    writer = BitWriter()
    if reference is None:
        codes.write_gamma_natural(writer, 0)
        rest = list(singles)
    else:
        r, reference_list = reference
        ref_set = set(reference_list)
        copied = [x for x in singles if x in ref_set]
        rest = [x for x in singles if x not in ref_set]
        codes.write_gamma_natural(writer, r)
        runs = copy_blocks(reference_list, copied)
        codes.write_gamma_natural(writer, len(runs))
        for i, run in enumerate(runs):
            if i == 0:
                codes.write_gamma_natural(writer, run)
            else:
                codes.write_gamma_natural(writer, run - 1)
    intervals, extras = split_intervals(rest, config.min_interval_length)
    codes.write_gamma_natural(writer, len(intervals))
    first = True
    for gap, extra_len in interval_gap_pairs(node, intervals, config.min_interval_length):
        if first:
            codes.write_gamma_integer(writer, gap)
            first = False
        else:
            codes.write_gamma_natural(writer, gap)
        codes.write_gamma_natural(writer, extra_len)
    codes.write_gamma_natural(writer, len(extras))
    first = True
    for gap in extra_gaps(node, extras):
        if first:
            codes.write_zeta_integer(writer, gap, config.structure_zeta_k)
            first = False
        else:
            codes.write_zeta_natural(writer, gap, config.structure_zeta_k)
    return writer


# --------------------------------------------------------------------------
# Decoding
# --------------------------------------------------------------------------

def decode_node_structure(
    reader: BitReader,
    node: int,
    resolve_distinct,
    config: ChronoGraphConfig,
    limit: Optional[int] = None,
) -> Tuple[List[DedupPair], List[int]]:
    """Decode one structure record positioned at the reader's cursor.

    ``resolve_distinct(v)`` must return the distinct neighbor list of the
    (already encoded, hence decodable) node ``v``; it is called when the
    record carries a reference.  Returns ``(dedup_pairs, singles)``.

    ``limit`` bounds the total number of neighbor labels the record may
    expand to (a valid record never exceeds the graph's contact count); a
    corrupt count or interval length that would breach it raises
    :class:`repro.errors.LimitExceededError` *before* any proportional
    allocation, so a flipped bit cannot trigger a multi-gigabyte list.

    Each block is a homogeneous run of codes, so the body is built on the
    ``read_many_*`` bulk readers: the block's count is read first, its
    guaranteed minimum expansion is charged against ``limit`` (bounding the
    bulk allocation), then the whole run is table-decoded at once and the
    remainder of each element's expansion charged exactly as before.
    """
    budget = limit

    def charge(n: int) -> None:
        nonlocal budget
        if budget is None:
            return
        budget -= n
        if budget < 0:
            raise LimitExceededError(
                f"node {node}: structure record expands past {limit} labels"
            )

    dedup: List[DedupPair] = []
    dedup_count = codes.read_gamma_natural(reader)
    if dedup_count:
        charge(2 * dedup_count)  # every dedup pair expands to >= 2 labels
        raw = codes.read_many_gamma_natural(reader, 2 * dedup_count)
        label = node + to_integer(raw[0])
        count = raw[1] + 2
        charge(count - 2)
        dedup.append((label, count))
        prev = label
        # Trip count was charged against the decode-limit budget above.
        for i in range(1, dedup_count):  # repro: noqa[CG007]
            label = prev + raw[2 * i] + 1
            count = raw[2 * i + 1] + 2
            charge(count - 2)
            dedup.append((label, count))
            prev = label

    r = codes.read_gamma_natural(reader)
    copied: List[int] = []
    if r:
        run_count = codes.read_gamma_natural(reader)
        reference_list = resolve_distinct(node - r)
        # A valid copy-block list never has more runs than the reference
        # has distinct neighbors; checking before the bulk read keeps the
        # allocation proportional to the reference, not to a corrupt count.
        if run_count > len(reference_list) + 1:
            raise LimitExceededError(
                f"node {node}: {run_count} copy runs against a reference "
                f"with {len(reference_list)} distinct neighbors"
            )
        raw = codes.read_many_gamma_natural(reader, run_count)
        runs = raw[:1] + [run + 1 for run in raw[1:]]
        copied = expand_copy_blocks(reference_list, runs)
        charge(len(copied))

    intervals: List[int] = []
    interval_count = codes.read_gamma_natural(reader)
    if interval_count:
        min_length = config.min_interval_length
        charge(interval_count * min_length)
        raw = codes.read_many_gamma_natural(reader, 2 * interval_count)
        left = node + to_integer(raw[0])
        length = raw[1] + min_length
        charge(length - min_length)
        intervals.extend(range(left, left + length))
        prev_end = left + length - 1
        # Trip count was charged against the decode-limit budget above.
        for i in range(1, interval_count):  # repro: noqa[CG007]
            left = prev_end + raw[2 * i] + 2
            length = raw[2 * i + 1] + min_length
            charge(length - min_length)
            intervals.extend(range(left, left + length))
            prev_end = left + length - 1

    extras: List[int] = []
    extra_count = codes.read_gamma_natural(reader)
    charge(extra_count)
    if extra_count:
        raw = codes.read_many_zeta_natural(
            reader, extra_count, config.structure_zeta_k
        )
        unfolded = bulkops.prefix_labels(raw, node, to_integer(raw[0]))
        if unfolded is not None:
            extras = unfolded
        else:
            label = node + to_integer(raw[0])
            extras.append(label)
            prev = label
            for gap in raw[1:]:
                label = prev + gap + 1
                extras.append(label)
                prev = label

    singles = sorted(copied + intervals + extras)
    return dedup, singles


def multiset_from_parts(dedup: Sequence[DedupPair], singles: Sequence[int]) -> List[int]:
    """Rebuild the label-sorted neighbor multiset from decoded parts."""
    expanded = list(singles)
    for label, count in dedup:
        expanded.extend([label] * count)
    expanded.sort()
    return expanded
