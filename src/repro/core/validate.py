"""Integrity validation and salvage of compressed graphs.

``validate_compressed`` decodes every node of a compressed graph and checks
the structural invariants the codec guarantees; with a reference graph it
additionally verifies exact round-trip equality.  Exposed through the CLI's
``verify`` command so shipped ``.chrono`` artefacts can be health-checked.

``salvage_scan`` is the graceful-degradation half: it decodes nodes from
the start of a (possibly corrupt) graph until the first failure and wraps
the longest valid prefix in a :class:`SalvageReport`, which is what
``load_compressed(path, salvage=True)`` returns.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.bits.eliasfano import EliasFano
from repro.core.compressed import CompressedChronoGraph
from repro.errors import FormatError
from repro.graph.model import TemporalGraph


@dataclasses.dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    nodes_checked: int
    contacts_checked: int
    errors: List[str]

    @property
    def ok(self) -> bool:
        """Whether no violation was found."""
        return not self.errors


def validate_compressed(
    compressed: CompressedChronoGraph,
    reference: Optional[TemporalGraph] = None,
    *,
    max_errors: int = 20,
) -> ValidationReport:
    """Decode everything and check invariants; optionally diff a reference.

    Invariants checked per node: the multiset decodes and is label-sorted;
    the timestamp record aligns one-to-one with it; interval durations are
    non-negative.  Global: decoded contact count equals the recorded one.
    With ``reference``: per-node contacts match exactly.
    """
    errors: List[str] = []
    contacts_checked = 0

    def record(message: str) -> bool:
        errors.append(message)
        return len(errors) >= max_errors

    for u in range(compressed.num_nodes):
        try:
            multiset = compressed.decode_multiset(u)
        except Exception as exc:  # noqa: BLE001 - reporting, not handling
            if record(f"node {u}: structure decode failed: {exc!r}"):
                break
            continue
        if any(a > b for a, b in zip(multiset, multiset[1:])):
            if record(f"node {u}: neighbor multiset not label-sorted"):
                break
        try:
            contacts = compressed.contacts_of(u)
        except Exception as exc:  # noqa: BLE001
            if record(f"node {u}: timestamp decode failed: {exc!r}"):
                break
            continue
        if len(contacts) != len(multiset):
            if record(
                f"node {u}: {len(multiset)} neighbors but "
                f"{len(contacts)} timestamps"
            ):
                break
        if any(c.duration < 0 for c in contacts):
            if record(f"node {u}: negative duration decoded"):
                break
        contacts_checked += len(contacts)
        if reference is not None and len(errors) < max_errors:
            expected = reference.contacts_of(u)
            if contacts != expected:
                record(
                    f"node {u}: decoded contacts differ from reference "
                    f"({len(contacts)} vs {len(expected)} entries)"
                )

    if len(errors) < max_errors and contacts_checked != compressed.num_contacts:
        record(
            f"decoded {contacts_checked} contacts but header records "
            f"{compressed.num_contacts}"
        )
    return ValidationReport(
        nodes_checked=compressed.num_nodes,
        contacts_checked=contacts_checked,
        errors=errors,
    )


# --------------------------------------------------------------------------
# Salvage (graceful degradation)
# --------------------------------------------------------------------------

@dataclasses.dataclass
class SalvageReport:
    """Outcome of a best-effort decode of a possibly-corrupt container.

    ``graph`` holds the longest valid prefix of nodes that decoded cleanly
    (its ``num_nodes``/``num_contacts`` describe the prefix, not the
    original container), or ``None`` when not even the header survived.
    """

    graph: Optional[CompressedChronoGraph]
    nodes_declared: int
    nodes_recovered: int
    contacts_declared: int
    contacts_recovered: int
    errors: List[str]

    @property
    def ok(self) -> bool:
        """Whether the container was fully intact — nothing was lost."""
        return (
            self.graph is not None
            and not self.errors
            and self.nodes_recovered == self.nodes_declared
        )

    @property
    def partial(self) -> bool:
        """Whether something, but not everything, was recovered."""
        return self.graph is not None and not self.ok and self.nodes_recovered > 0

    def summary(self) -> str:
        """Human-readable multi-line account of the salvage outcome."""
        lines = [
            f"recovered {self.nodes_recovered}/{self.nodes_declared} nodes, "
            f"{self.contacts_recovered}/{self.contacts_declared} contacts"
        ]
        if self.ok:
            lines.append("container intact")
        elif self.graph is None:
            lines.append("container unreadable; nothing recovered")
        for error in self.errors:
            lines.append(f"  - {error}")
        return "\n".join(lines)


def _prefix_graph(
    graph: CompressedChronoGraph, nodes: int, contacts: int
) -> CompressedChronoGraph:
    """Restrict ``graph`` to its first ``nodes`` nodes (offsets rebuilt)."""
    return CompressedChronoGraph(
        kind=graph.kind,
        num_nodes=nodes,
        num_contacts=contacts,
        t_min=graph.t_min,
        config=graph.config,
        structure_bytes=graph._sbytes,
        structure_bits=graph._sbits,
        timestamp_bytes=graph._tbytes,
        timestamp_bits=graph._tbits,
        structure_offsets=EliasFano(
            [graph._soffsets.access(i) for i in range(nodes)],
            universe=graph._sbits + 1,
        ),
        timestamp_offsets=EliasFano(
            [graph._toffsets.access(i) for i in range(nodes)],
            universe=graph._tbits + 1,
        ),
        name=graph.name,
    )


def salvage_scan(
    graph: CompressedChronoGraph, *, errors: Optional[List[str]] = None
) -> SalvageReport:
    """Decode the longest valid prefix of ``graph`` into a report.

    Nodes are decoded in storage order; the scan stops at the first node
    whose structure or timestamp record fails to decode or violates a
    codec invariant (unsorted multiset, out-of-range neighbor label).  The
    function never raises on corrupt data -- that is its contract.

    A lenient loader may attach ``_declared_nodes`` to ``graph`` when it
    already had to clip the offset indexes; the report counts losses
    against that original figure.
    """
    errors = list(errors) if errors else []
    nodes_declared = getattr(graph, "_declared_nodes", graph.num_nodes)
    label_bound = max(nodes_declared, graph.num_nodes)
    contacts_declared = graph.num_contacts
    good_nodes = 0
    good_contacts = 0
    for u in range(graph.num_nodes):
        try:
            multiset = graph.decode_multiset(u)
            contacts = graph.contacts_of(u)
        except FormatError as exc:
            errors.append(f"node {u}: {exc}")
            break
        except Exception as exc:  # noqa: BLE001 - salvage must never raise
            errors.append(f"node {u}: unexpected failure: {exc!r}")
            break
        if any(a > b for a, b in zip(multiset, multiset[1:])):
            errors.append(f"node {u}: neighbor multiset not label-sorted")
            break
        if multiset and not (0 <= multiset[0] and multiset[-1] < label_bound):
            errors.append(f"node {u}: neighbor label outside [0, {label_bound})")
            break
        good_nodes += 1
        good_contacts += len(contacts)
    if (
        good_nodes == graph.num_nodes
        and nodes_declared == graph.num_nodes
        and good_contacts != contacts_declared
    ):
        errors.append(
            f"decoded {good_contacts} contacts but header records "
            f"{contacts_declared}"
        )
    if good_nodes == graph.num_nodes and good_contacts == graph.num_contacts:
        prefix = graph
    else:
        prefix = _prefix_graph(graph, good_nodes, good_contacts)
    return SalvageReport(
        graph=prefix,
        nodes_declared=nodes_declared,
        nodes_recovered=good_nodes,
        contacts_declared=contacts_declared,
        contacts_recovered=good_contacts,
        errors=errors,
    )
