"""Integrity validation of compressed graphs.

``validate_compressed`` decodes every node of a compressed graph and checks
the structural invariants the codec guarantees; with a reference graph it
additionally verifies exact round-trip equality.  Exposed through the CLI's
``verify`` command so shipped ``.chrono`` artefacts can be health-checked.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.compressed import CompressedChronoGraph
from repro.graph.model import TemporalGraph


@dataclasses.dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    nodes_checked: int
    contacts_checked: int
    errors: List[str]

    @property
    def ok(self) -> bool:
        """Whether no violation was found."""
        return not self.errors


def validate_compressed(
    compressed: CompressedChronoGraph,
    reference: Optional[TemporalGraph] = None,
    *,
    max_errors: int = 20,
) -> ValidationReport:
    """Decode everything and check invariants; optionally diff a reference.

    Invariants checked per node: the multiset decodes and is label-sorted;
    the timestamp record aligns one-to-one with it; interval durations are
    non-negative.  Global: decoded contact count equals the recorded one.
    With ``reference``: per-node contacts match exactly.
    """
    errors: List[str] = []
    contacts_checked = 0

    def record(message: str) -> bool:
        errors.append(message)
        return len(errors) >= max_errors

    for u in range(compressed.num_nodes):
        try:
            multiset = compressed.decode_multiset(u)
        except Exception as exc:  # noqa: BLE001 - reporting, not handling
            if record(f"node {u}: structure decode failed: {exc!r}"):
                break
            continue
        if any(a > b for a, b in zip(multiset, multiset[1:])):
            if record(f"node {u}: neighbor multiset not label-sorted"):
                break
        try:
            contacts = compressed.contacts_of(u)
        except Exception as exc:  # noqa: BLE001
            if record(f"node {u}: timestamp decode failed: {exc!r}"):
                break
            continue
        if len(contacts) != len(multiset):
            if record(
                f"node {u}: {len(multiset)} neighbors but "
                f"{len(contacts)} timestamps"
            ):
                break
        if any(c.duration < 0 for c in contacts):
            if record(f"node {u}: negative duration decoded"):
                break
        contacts_checked += len(contacts)
        if reference is not None and len(errors) < max_errors:
            expected = reference.contacts_of(u)
            if contacts != expected:
                record(
                    f"node {u}: decoded contacts differ from reference "
                    f"({len(contacts)} vs {len(expected)} entries)"
                )

    if len(errors) < max_errors and contacts_checked != compressed.num_contacts:
        record(
            f"decoded {contacts_checked} contacts but header records "
            f"{compressed.num_contacts}"
        )
    return ValidationReport(
        nodes_checked=compressed.num_nodes,
        contacts_checked=contacts_checked,
        errors=errors,
    )
