"""Top-level ChronoGraph compression entry points.

:func:`compress` is the reference single-process encoder.
:func:`compress_parallel` produces **bit-identical** output from multiple
worker processes.  Reference selection is path-dependent (``max_ref_chain``
bounds the chain depth through previously *chosen* references), so a naive
range split would diverge from the serial encoder; instead the parallel
encoder runs three phases:

1. **Size** (parallel): every node sizes its no-reference encoding and every
   window candidate that passes the path-independent filters (non-empty
   distinct list, overlap with the singles).  Candidate sizes depend only on
   the input graph, never on earlier choices.
2. **Select** (serial, cheap): replay the serial encoder's selection loop
   over the precomputed sizes -- identical tie-breaking (strict ``<``,
   ascending ``r``) and identical ``ref_depth`` bookkeeping -- yielding the
   exact reference the serial encoder would pick for every node.
3. **Encode** (parallel): workers encode contiguous node ranges with the
   chosen references and the stitcher splices the chunks with
   :meth:`repro.bits.bitio.BitWriter.extend`, shifting offsets by the
   cumulative base.  Bit concatenation is associative, so the spliced
   streams equal the serial ones bit for bit.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bits.bitio import BitWriter
from repro.bits.eliasfano import EliasFano
from repro.core.compressed import CompressedChronoGraph
from repro.core.config import ChronoGraphConfig
from repro.bits.codes import zeta_length
from repro.core.structure import (
    _encode_dedup,
    _encode_singles,
    encode_node_structure,
    split_duplicates,
)
from repro.core.timestamps import encode_node_timestamps, encoded_timestamp_bits
from repro.graph.aggregate import aggregate
from repro.graph.model import GraphKind, TemporalGraph

#: Candidate zeta parameters for auto-selection, the Figure 7 sweep range.
_ZETA_CANDIDATES = range(2, 8)


def select_timestamp_zeta_k(graph: TemporalGraph) -> tuple[int, int]:
    """The (gap, duration) zeta parameters minimising the timestamp stream.

    This reproduces how the paper picks per-dataset codes: Figure 7 sizes
    each k and Section V-F recommends the winner per lifetime/granularity
    class.  The two streams are sized independently via the closed-form
    code lengths, so the scan is cheap relative to the encode itself.
    """
    t_min = graph.t_min
    with_durations = graph.kind is GraphKind.INTERVAL
    gap_totals = {k: 0 for k in _ZETA_CANDIDATES}
    dur_totals = {k: 0 for k in _ZETA_CANDIDATES}
    for u in graph.active_nodes():
        contacts = graph.contacts_of(u)
        times = [c.time for c in contacts]
        for k in _ZETA_CANDIDATES:
            gap_totals[k] += encoded_timestamp_bits(times, None, t_min, k)
        if with_durations:
            for c in contacts:
                natural = c.duration + 1
                for k in _ZETA_CANDIDATES:
                    dur_totals[k] += zeta_length(natural, k)
    best_gap = min(gap_totals, key=lambda k: (gap_totals[k], k))
    best_dur = min(dur_totals, key=lambda k: (dur_totals[k], k))
    return best_gap, best_dur


def _prepare(
    graph: TemporalGraph, config: Optional[ChronoGraphConfig]
) -> Tuple[TemporalGraph, ChronoGraphConfig]:
    """Aggregate to the target resolution and resolve the zeta parameters.

    Shared by the serial and parallel encoders so both work from the same
    fully-resolved configuration (a prerequisite for bit-identity).
    """
    if config is None:
        config = ChronoGraphConfig()
    if config.resolution > 1:
        graph = aggregate(graph, config.resolution)
    if config.timestamp_zeta_k is None or (
        config.duration_zeta_k is None and graph.kind is GraphKind.INTERVAL
    ):
        best_gap, best_dur = select_timestamp_zeta_k(graph)
        config = dataclasses.replace(
            config,
            timestamp_zeta_k=config.timestamp_zeta_k or best_gap,
            duration_zeta_k=config.duration_zeta_k or best_dur,
        )
    return graph, config


def _build(
    graph: TemporalGraph,
    config: ChronoGraphConfig,
    structure: BitWriter,
    timestamps: BitWriter,
    structure_offsets: List[int],
    timestamp_offsets: List[int],
) -> CompressedChronoGraph:
    """Wrap finished streams and offsets into the queryable container."""
    return CompressedChronoGraph(
        kind=graph.kind,
        num_nodes=graph.num_nodes,
        num_contacts=graph.num_contacts,
        t_min=graph.t_min,
        config=config,
        structure_bytes=structure.to_bytes(),
        structure_bits=len(structure),
        timestamp_bytes=timestamps.to_bytes(),
        timestamp_bits=len(timestamps),
        structure_offsets=EliasFano(structure_offsets, universe=len(structure) + 1),
        timestamp_offsets=EliasFano(timestamp_offsets, universe=len(timestamps) + 1),
        name=graph.name,
    )


def _encode_prepared(
    graph: TemporalGraph, config: ChronoGraphConfig
) -> CompressedChronoGraph:
    """The serial per-node encode loop over a prepared (graph, config)."""
    t_min = graph.t_min
    with_durations = graph.kind is GraphKind.INTERVAL
    structure = BitWriter()
    timestamps = BitWriter()
    structure_offsets: List[int] = []
    timestamp_offsets: List[int] = []
    window_distinct: dict = {}
    ref_depth: dict = {}

    for u in range(graph.num_nodes):
        structure_offsets.append(len(structure))
        timestamp_offsets.append(len(timestamps))
        contacts = graph.contacts_of(u)
        multiset = [c.v for c in contacts]
        encode_node_structure(
            structure, u, multiset, window_distinct, ref_depth, config
        )
        times = [c.time for c in contacts]
        durations = [c.duration for c in contacts] if with_durations else None
        encode_node_timestamps(
            timestamps,
            times,
            durations,
            t_min,
            config.timestamp_zeta_k,
            config.duration_zeta_k,
        )
        evicted = u - config.window
        if evicted >= 0:
            window_distinct.pop(evicted, None)
            ref_depth.pop(evicted, None)

    return _build(
        graph, config, structure, timestamps,
        structure_offsets, timestamp_offsets,
    )


def compress(
    graph: TemporalGraph,
    config: Optional[ChronoGraphConfig] = None,
) -> CompressedChronoGraph:
    """Compress a temporal graph into a :class:`CompressedChronoGraph`.

    When ``config.resolution > 1`` the timestamps are first aggregated to
    that granularity (Section IV-C), trading temporal precision for space.

    Compression streams through the nodes once; only the distinct neighbor
    lists of the last ``window`` nodes are retained for reference selection,
    so peak memory stays proportional to the window, matching the paper's
    remark that ChronoGraph's compression-time memory use is dominated by
    the offset indexes.
    """
    graph, config = _prepare(graph, config)
    return _encode_prepared(graph, config)


# --------------------------------------------------------------------------
# Parallel encoder (multiprocessing, bit-identical to ``compress``)
# --------------------------------------------------------------------------

#: Below this many nodes the fork/pickle overhead dwarfs the encode itself.
_PARALLEL_MIN_NODES = 16

#: Per-node sizing record: (no-reference length, [(r, candidate length)]).
_NodeSizes = Tuple[int, List[Tuple[int, int]]]

#: Per-process worker state, set once by :func:`_init_worker` when the pool
#: starts.  Shipping the graph through initargs pickles it once per worker
#: instead of once per task (the sizing and encoding phases would otherwise
#: each send a full-graph copy with every range).
_worker_graph: Optional[TemporalGraph] = None
_worker_config: Optional[ChronoGraphConfig] = None


def _init_worker(graph: TemporalGraph, config: ChronoGraphConfig) -> None:
    """Pool initializer: stash the shared (graph, config) in the worker."""
    global _worker_graph, _worker_config
    _worker_graph = graph
    _worker_config = config


def _distinct_of(graph: TemporalGraph, v: int) -> List[int]:
    """Sorted distinct neighbor labels of ``v`` straight from the contacts.

    This is exactly the ``previous_distinct`` value the serial encoder
    records after encoding ``v`` -- it depends only on the input graph,
    never on reference choices, which is what makes phase 1 parallelisable.
    """
    return sorted({c.v for c in graph.contacts_of(v)})


def _size_candidates(args) -> List[_NodeSizes]:
    """Phase 1 worker: size every encoding candidate of a node range."""
    lo, hi = args
    graph, config = _worker_graph, _worker_config
    out: List[_NodeSizes] = []
    for u in range(lo, hi):
        multiset = [c.v for c in graph.contacts_of(u)]
        _, singles = split_duplicates(multiset)
        no_ref = len(_encode_singles(u, singles, None, config))
        cands: List[Tuple[int, int]] = []
        single_set = set(singles)
        for r in range(1, config.window + 1):
            v = u - r
            if v < 0:
                break
            reference_list = _distinct_of(graph, v)
            if not reference_list:
                continue
            if not single_set & set(reference_list):
                continue  # nothing to copy; the no-reference encoding wins
            cands.append(
                (r, len(_encode_singles(u, singles, (r, reference_list), config)))
            )
        out.append((no_ref, cands))
    return out


def _select_references(
    num_nodes: int,
    window: int,
    max_ref_chain: Optional[int],
    sizes: Sequence[_NodeSizes],
) -> List[int]:
    """Phase 2: replay the serial selection loop over precomputed sizes.

    Identical semantics to :func:`repro.core.structure.encode_node_structure`:
    candidates are considered in ascending ``r``, replace the incumbent only
    when strictly smaller, and chain depth is checked against the *chosen*
    depth of the target -- the path-dependent part that forces this phase
    to be sequential (it is O(n * window) integer work, not encoding).
    """
    ref_depth: Dict[int, int] = {}
    chosen = [0] * num_nodes
    for u in range(num_nodes):
        no_ref, cands = sizes[u]
        best_len = no_ref
        best_ref = 0
        best_depth = 0
        for r, cand_len in cands:
            depth = ref_depth.get(u - r, 0) + 1
            if max_ref_chain is not None and depth > max_ref_chain:
                continue
            if cand_len < best_len:
                best_len = cand_len
                best_ref = r
                best_depth = depth
        chosen[u] = best_ref
        ref_depth[u] = best_depth if best_ref else 0
        evicted = u - window
        if evicted >= 0:
            ref_depth.pop(evicted, None)
    return chosen


def _encode_range(args):
    """Phase 3 worker: encode ``[lo, hi)`` with pre-selected references.

    Returns ``(structure bytes, structure bits, structure offsets,
    timestamp bytes, timestamp bits, timestamp offsets)`` with offsets
    relative to the chunk start.
    """
    chosen, lo, hi = args
    graph, config = _worker_graph, _worker_config
    t_min = graph.t_min
    with_durations = graph.kind is GraphKind.INTERVAL
    structure = BitWriter()
    timestamps = BitWriter()
    soffsets: List[int] = []
    toffsets: List[int] = []
    for u in range(lo, hi):
        soffsets.append(len(structure))
        toffsets.append(len(timestamps))
        contacts = graph.contacts_of(u)
        multiset = [c.v for c in contacts]
        dedup, singles = split_duplicates(multiset)
        _encode_dedup(structure, u, dedup)
        r = chosen[u - lo]
        if r:
            reference = (r, _distinct_of(graph, u - r))
            structure.extend(_encode_singles(u, singles, reference, config))
        else:
            structure.extend(_encode_singles(u, singles, None, config))
        times = [c.time for c in contacts]
        durations = [c.duration for c in contacts] if with_durations else None
        encode_node_timestamps(
            timestamps,
            times,
            durations,
            t_min,
            config.timestamp_zeta_k,
            config.duration_zeta_k,
        )
    return (
        structure.to_bytes(), len(structure), soffsets,
        timestamps.to_bytes(), len(timestamps), toffsets,
    )


def compress_parallel(
    graph: TemporalGraph,
    config: Optional[ChronoGraphConfig] = None,
    *,
    workers: Optional[int] = None,
) -> CompressedChronoGraph:
    """Compress with worker processes; output is bit-identical to :func:`compress`.

    ``workers`` defaults to ``os.cpu_count()``; with one worker (or a graph
    too small to amortise process start-up) this simply calls the serial
    path.  The graph and config ship to each worker once, through the pool
    initializer, so per-task payloads are just node ranges.  Pool failures
    -- start-up errors in restricted environments without
    ``fork``/semaphores, workers dying mid-run (``BrokenProcessPool``) and
    unpicklable graph or config fields -- all fall back to the serial
    encoder rather than erroring: the result is defined to be the same
    bytes either way.
    """
    graph, config = _prepare(graph, config)
    n = graph.num_nodes
    w = int(workers) if workers is not None else (os.cpu_count() or 1)
    if w <= 1 or n < _PARALLEL_MIN_NODES:
        return _encode_prepared(graph, config)
    w = min(w, n)
    bounds = [(n * i) // w for i in range(w + 1)]
    ranges = [
        (bounds[i], bounds[i + 1])
        for i in range(w)
        if bounds[i] < bounds[i + 1]
    ]
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # stripped-down stdlib: serial fallback
        return _encode_prepared(graph, config)
    try:
        with ProcessPoolExecutor(
            max_workers=len(ranges),
            initializer=_init_worker,
            initargs=(graph, config),
        ) as pool:
            sized = list(pool.map(_size_candidates, ranges))
            sizes = [entry for part in sized for entry in part]
            chosen = _select_references(
                n, config.window, config.max_ref_chain, sizes
            )
            chunks = list(
                pool.map(
                    _encode_range,
                    [(chosen[lo:hi], lo, hi) for lo, hi in ranges],
                )
            )
    except (OSError, ImportError, BrokenProcessPool, pickle.PicklingError):
        # No fork/semaphores, a worker died mid-run, or the graph/config
        # cannot cross the process boundary: serial fallback, same bytes.
        return _encode_prepared(graph, config)
    structure = BitWriter()
    timestamps = BitWriter()
    structure_offsets: List[int] = []
    timestamp_offsets: List[int] = []
    for sbytes, sbits, soffs, tbytes, tbits, toffs in chunks:
        sbase = len(structure)
        tbase = len(timestamps)
        structure_offsets.extend(sbase + off for off in soffs)
        timestamp_offsets.extend(tbase + off for off in toffs)
        structure.extend(BitWriter.from_bits(sbytes, sbits))
        timestamps.extend(BitWriter.from_bits(tbytes, tbits))
    return _build(
        graph, config, structure, timestamps,
        structure_offsets, timestamp_offsets,
    )
