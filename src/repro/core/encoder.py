"""Top-level ChronoGraph compression entry point."""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.bits.bitio import BitWriter
from repro.bits.eliasfano import EliasFano
from repro.core.compressed import CompressedChronoGraph
from repro.core.config import ChronoGraphConfig
from repro.bits.codes import zeta_length
from repro.core.structure import encode_node_structure
from repro.core.timestamps import encode_node_timestamps, encoded_timestamp_bits
from repro.graph.aggregate import aggregate
from repro.graph.model import GraphKind, TemporalGraph

#: Candidate zeta parameters for auto-selection, the Figure 7 sweep range.
_ZETA_CANDIDATES = range(2, 8)


def select_timestamp_zeta_k(graph: TemporalGraph) -> tuple[int, int]:
    """The (gap, duration) zeta parameters minimising the timestamp stream.

    This reproduces how the paper picks per-dataset codes: Figure 7 sizes
    each k and Section V-F recommends the winner per lifetime/granularity
    class.  The two streams are sized independently via the closed-form
    code lengths, so the scan is cheap relative to the encode itself.
    """
    t_min = graph.t_min
    with_durations = graph.kind is GraphKind.INTERVAL
    gap_totals = {k: 0 for k in _ZETA_CANDIDATES}
    dur_totals = {k: 0 for k in _ZETA_CANDIDATES}
    for u in graph.active_nodes():
        contacts = graph.contacts_of(u)
        times = [c.time for c in contacts]
        for k in _ZETA_CANDIDATES:
            gap_totals[k] += encoded_timestamp_bits(times, None, t_min, k)
        if with_durations:
            for c in contacts:
                natural = c.duration + 1
                for k in _ZETA_CANDIDATES:
                    dur_totals[k] += zeta_length(natural, k)
    best_gap = min(gap_totals, key=lambda k: (gap_totals[k], k))
    best_dur = min(dur_totals, key=lambda k: (dur_totals[k], k))
    return best_gap, best_dur


def compress(
    graph: TemporalGraph,
    config: Optional[ChronoGraphConfig] = None,
) -> CompressedChronoGraph:
    """Compress a temporal graph into a :class:`CompressedChronoGraph`.

    When ``config.resolution > 1`` the timestamps are first aggregated to
    that granularity (Section IV-C), trading temporal precision for space.

    Compression streams through the nodes once; only the distinct neighbor
    lists of the last ``window`` nodes are retained for reference selection,
    so peak memory stays proportional to the window, matching the paper's
    remark that ChronoGraph's compression-time memory use is dominated by
    the offset indexes.
    """
    if config is None:
        config = ChronoGraphConfig()
    if config.resolution > 1:
        graph = aggregate(graph, config.resolution)
    if config.timestamp_zeta_k is None or (
        config.duration_zeta_k is None and graph.kind is GraphKind.INTERVAL
    ):
        best_gap, best_dur = select_timestamp_zeta_k(graph)
        config = dataclasses.replace(
            config,
            timestamp_zeta_k=config.timestamp_zeta_k or best_gap,
            duration_zeta_k=config.duration_zeta_k or best_dur,
        )

    t_min = graph.t_min
    with_durations = graph.kind is GraphKind.INTERVAL
    structure = BitWriter()
    timestamps = BitWriter()
    structure_offsets: List[int] = []
    timestamp_offsets: List[int] = []
    window_distinct: dict = {}
    ref_depth: dict = {}

    for u in range(graph.num_nodes):
        structure_offsets.append(len(structure))
        timestamp_offsets.append(len(timestamps))
        contacts = graph.contacts_of(u)
        multiset = [c.v for c in contacts]
        encode_node_structure(
            structure, u, multiset, window_distinct, ref_depth, config
        )
        times = [c.time for c in contacts]
        durations = [c.duration for c in contacts] if with_durations else None
        encode_node_timestamps(
            timestamps,
            times,
            durations,
            t_min,
            config.timestamp_zeta_k,
            config.duration_zeta_k,
        )
        evicted = u - config.window
        if evicted >= 0:
            window_distinct.pop(evicted, None)
            ref_depth.pop(evicted, None)

    return CompressedChronoGraph(
        kind=graph.kind,
        num_nodes=graph.num_nodes,
        num_contacts=graph.num_contacts,
        t_min=t_min,
        config=config,
        structure_bytes=structure.to_bytes(),
        structure_bits=len(structure),
        timestamp_bytes=timestamps.to_bytes(),
        timestamp_bits=len(timestamps),
        structure_offsets=EliasFano(structure_offsets, universe=len(structure) + 1),
        timestamp_offsets=EliasFano(timestamp_offsets, universe=len(timestamps) + 1),
        name=graph.name,
    )
