"""Table II: the worked gap-encoding example, with and without aggregation.

Reproduces the exact rows of the paper's Table II from its seven example
timestamps, and benchmarks the full encode of the resulting gap sequence.
"""

from repro.bits.bitio import BitReader, BitWriter
from repro.bits.zigzag import to_natural
from repro.bench.harness import format_table, save_results
from repro.core.timestamps import (
    decode_node_timestamps,
    encode_node_timestamps,
    timestamp_gaps,
)
from repro.graph.aggregate import aggregate_timestamps

TIMESTAMPS = [
    1209479772, 1209479933, 1209479965, 1209479822,
    1209479825, 1209483450, 1209483446,
]
T_MIN = 1209479772 - 34637  # implied by Table II's first gap


def _naturals(gaps):
    return [gaps[0]] + [to_natural(g) for g in gaps[1:]]


def _encode(timestamps, t_min, k=4):
    writer = BitWriter()
    encode_node_timestamps(writer, timestamps, None, t_min, k)
    return writer


def test_table2_rows_and_encoding(benchmark):
    raw_gaps = timestamp_gaps(TIMESTAMPS, T_MIN)
    assert raw_gaps == [34637, 161, 32, -143, 3, 3625, -4]
    assert _naturals(raw_gaps) == [34637, 322, 64, 285, 6, 7250, 7]

    hourly = aggregate_timestamps(TIMESTAMPS, 3600)
    hourly_gaps = timestamp_gaps(hourly, T_MIN // 3600)
    assert hourly == [335966] * 5 + [335967] * 2
    assert hourly_gaps == [10, 0, 0, 0, 0, 1, 0]
    assert _naturals(hourly_gaps) == [10, 0, 0, 0, 0, 2, 0]

    writer = benchmark(_encode, TIMESTAMPS, T_MIN)
    reader = BitReader(writer.to_bytes(), len(writer))
    decoded, _ = decode_node_timestamps(reader, len(TIMESTAMPS), False, T_MIN, 4)
    assert decoded == TIMESTAMPS

    hourly_writer = _encode(hourly, T_MIN // 3600, k=2)
    assert len(hourly_writer) < len(writer)  # aggregation compresses better

    print(format_table(
        ["Row", "Values"],
        [
            ["timestamps", " ".join(map(str, TIMESTAMPS))],
            ["gaps (integers)", " ".join(map(str, raw_gaps))],
            ["gaps (natural)", " ".join(map(str, _naturals(raw_gaps)))],
            ["hourly timestamps", " ".join(map(str, hourly))],
            ["hourly gaps (integers)", " ".join(map(str, hourly_gaps))],
            ["hourly gaps (natural)", " ".join(map(str, _naturals(hourly_gaps)))],
            ["encoded bits (zeta4, raw)", str(len(writer))],
            ["encoded bits (zeta2, hourly)", str(len(hourly_writer))],
        ],
        title="\nTable II -- gap encoding of the paper's example timestamps",
    ))
    save_results("table2_gap_encoding", {
        "gaps_integers": raw_gaps,
        "gaps_natural": _naturals(raw_gaps),
        "hourly_gaps_integers": hourly_gaps,
        "hourly_gaps_natural": _naturals(hourly_gaps),
        "bits_raw_zeta4": len(writer),
        "bits_hourly_zeta2": len(hourly_writer),
    })
