"""Table III: the dataset roster.

Not a measurement in the paper but a table nonetheless: the eight graphs
with their kinds, sizes, time steps, lifetimes and granularities.  This
bench prints the same row layout for the stand-in datasets and asserts the
structural facts the substitution promised to preserve (DESIGN.md §4).
"""

from repro.bench.harness import format_table, save_results
from repro.graph.model import GraphKind
from repro.graph.stats import TABLE3_HEADERS, summarize

EXPECTED_KINDS = {
    "flickr": GraphKind.INCREMENTAL,
    "wiki-edit": GraphKind.POINT,
    "wiki-links-sub": GraphKind.INTERVAL,
    "wiki-links-full": GraphKind.INTERVAL,
    "yahoo-sub": GraphKind.POINT,
    "yahoo-full": GraphKind.POINT,
    "comm-net": GraphKind.INTERVAL,
    "powerlaw": GraphKind.INTERVAL,
}


def test_table3_dataset_roster(benchmark, datasets):
    summaries = {name: summarize(g) for name, g in datasets.items()}
    benchmark(lambda: summarize(datasets["flickr"]))

    for name, kind in EXPECTED_KINDS.items():
        assert datasets[name].kind is kind, name
    # Sub/full pairs keep the paper's relative sizes (~3x).
    assert (summaries["wiki-links-full"].num_contacts
            > 2 * summaries["wiki-links-sub"].num_contacts)
    assert (summaries["yahoo-full"].num_contacts
            > 2 * summaries["yahoo-sub"].num_contacts)
    # Comm.Net keeps its "unreal" density: by far the densest graph.
    densities = {n: s.contacts_per_node for n, s in summaries.items()}
    assert densities["comm-net"] == max(densities.values())
    # Granularities per Table III.
    assert datasets["flickr"].granularity == "day"
    for name in ("wiki-edit", "wiki-links-sub", "yahoo-sub"):
        assert datasets[name].granularity == "second"

    print(format_table(
        TABLE3_HEADERS,
        [summaries[name].as_row() for name in EXPECTED_KINDS],
        title="\nTable III -- datasets (scaled stand-ins, see DESIGN.md)",
    ))
    save_results("table3_datasets", {
        name: {
            "kind": s.kind,
            "nodes": s.num_nodes,
            "edges": s.num_edges,
            "contacts": s.num_contacts,
            "time_steps": s.time_steps,
            "lifetime": s.lifetime,
            "contacts_per_node": s.contacts_per_node,
        }
        for name, s in summaries.items()
    })
